//! A tree-walking interpreter: the ablation baseline for the bytecode VM.
//!
//! The paper's Translator *compiles* delegated programs on receipt; the
//! obvious cheaper-to-build alternative is to interpret the AST directly.
//! This module implements that alternative with identical semantics (same
//! values, same host interface, same fuel accounting granularity) so the
//! `dpi_compiled_vs_interpreted` bench can quantify the design choice.
//!
//! It is intentionally *not* used by the elastic process runtime.

use crate::ast::{BinOp, Expr, ExprKind, FnDef, ProgramAst, Stmt, StmtKind, UnOp};
use crate::host::HostRegistry;
use crate::value::ops;
use crate::{Budget, DplError, RuntimeError, Value};
use std::collections::HashMap;

/// A delegated program held as a checked AST plus its persistent globals.
#[derive(Debug, Clone)]
pub struct AstInstance {
    ast: ProgramAst,
    globals: HashMap<String, Value>,
    initialized: bool,
}

impl AstInstance {
    /// Parses and checks `source` against `registry`, like
    /// [`compile_program`](crate::compile_program) but without compiling.
    ///
    /// # Errors
    ///
    /// The same translation errors as the compiling path.
    pub fn new<C>(source: &str, registry: &HostRegistry<C>) -> Result<AstInstance, DplError> {
        let ast = crate::parser::parse(source)?;
        crate::check::check(&ast, &registry.signatures())?;
        Ok(AstInstance { ast, globals: HashMap::new(), initialized: false })
    }

    /// Invokes `entry` with `args`, interpreting the AST directly.
    ///
    /// # Errors
    ///
    /// The same runtime errors as the VM.
    pub fn invoke<C>(
        &mut self,
        entry: &str,
        args: &[Value],
        ctx: &mut C,
        registry: &HostRegistry<C>,
        budget: Budget,
    ) -> Result<Value, RuntimeError> {
        // `ast` and `globals` are disjoint fields, so the interpreter can
        // borrow the AST in place — no per-invocation deep clone.
        let mut interp = Interp {
            ast: &self.ast,
            registry,
            globals: &mut self.globals,
            fuel_left: budget.fuel,
            depth_left: budget.call_depth,
        };
        if !self.initialized {
            for g in &self.ast.globals {
                let mut locals = HashMap::new();
                let v = interp.expr(&g.init, &mut locals, ctx)?;
                interp.globals.insert(g.name.clone(), v);
            }
            self.initialized = true;
        }
        let f = self
            .ast
            .functions
            .iter()
            .find(|f| f.name == entry)
            .ok_or_else(|| RuntimeError::NoSuchFunction { name: entry.to_string() })?;
        if f.params.len() != args.len() {
            return Err(RuntimeError::BadInvocation {
                expected: f.params.len(),
                found: args.len(),
            });
        }
        interp.call(f, args.to_vec(), ctx)
    }

    /// Reads a persistent global.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

struct Interp<'a, C> {
    ast: &'a ProgramAst,
    registry: &'a HostRegistry<C>,
    globals: &'a mut HashMap<String, Value>,
    fuel_left: u64,
    depth_left: u32,
}

impl<'a, C> Interp<'a, C> {
    fn burn(&mut self) -> Result<(), RuntimeError> {
        match self.fuel_left.checked_sub(1) {
            Some(left) => {
                self.fuel_left = left;
                Ok(())
            }
            None => Err(RuntimeError::OutOfFuel),
        }
    }

    fn call(&mut self, f: &'a FnDef, args: Vec<Value>, ctx: &mut C) -> Result<Value, RuntimeError> {
        self.depth_left = self.depth_left.checked_sub(1).ok_or(RuntimeError::StackOverflow)?;
        let mut locals: HashMap<String, Value> = f.params.iter().cloned().zip(args).collect();
        let flow = self.block(&f.body, &mut locals, ctx)?;
        self.depth_left += 1;
        Ok(match flow {
            Flow::Return(v) => v,
            _ => Value::Nil,
        })
    }

    fn block(
        &mut self,
        stmts: &'a [Stmt],
        locals: &mut HashMap<String, Value>,
        ctx: &mut C,
    ) -> Result<Flow, RuntimeError> {
        for s in stmts {
            match self.stmt(s, locals, ctx)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(
        &mut self,
        s: &'a Stmt,
        locals: &mut HashMap<String, Value>,
        ctx: &mut C,
    ) -> Result<Flow, RuntimeError> {
        self.burn()?;
        match &s.kind {
            StmtKind::VarDecl { name, init } => {
                let v = self.expr(init, locals, ctx)?;
                locals.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { name, value } => {
                let v = self.expr(value, locals, ctx)?;
                if let Some(slot) = locals.get_mut(name) {
                    *slot = v;
                } else {
                    self.globals.insert(name.clone(), v);
                }
                Ok(Flow::Normal)
            }
            StmtKind::IndexAssign { base, index, value } => {
                // Collect the index path down to the root variable.
                let mut indices = Vec::new();
                let mut cur = base;
                loop {
                    match &cur.kind {
                        ExprKind::Index { base: b, index: i } => {
                            indices.push(i.as_ref());
                            cur = b;
                        }
                        ExprKind::Var(_) => break,
                        other => panic!("unchecked place {other:?}"),
                    }
                }
                indices.reverse();
                indices.push(index);
                let mut idx_values = Vec::with_capacity(indices.len());
                for i in indices {
                    idx_values.push(self.expr(i, locals, ctx)?);
                }
                let v = self.expr(value, locals, ctx)?;
                let root_name = match &cur.kind {
                    ExprKind::Var(n) => n,
                    _ => unreachable!(),
                };
                let root = match locals.get_mut(root_name) {
                    Some(r) => r,
                    None => self.globals.get_mut(root_name).expect("checked name"),
                };
                let (last, path) = idx_values.split_last().expect("depth >= 1");
                let mut cursor = root;
                for i in path {
                    cursor = index_get_mut(cursor, i)?;
                }
                ops::index_set(cursor, last.clone(), v)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_block, else_block } => {
                if self.expr(cond, locals, ctx)?.as_condition()? {
                    self.block(then_block, locals, ctx)
                } else {
                    self.block(else_block, locals, ctx)
                }
            }
            StmtKind::While { cond, body } => {
                loop {
                    self.burn()?;
                    if !self.expr(cond, locals, ctx)?.as_condition()? {
                        break;
                    }
                    match self.block(body, locals, ctx)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::ForIn { name, iterable, body } => {
                let iter = self.expr(iterable, locals, ctx)?;
                let items: Vec<Value> = match iter {
                    Value::List(v) => v.as_ref().clone(),
                    Value::Map(m) => m.keys().cloned().map(Value::Str).collect(),
                    Value::Str(s) => s.chars().map(|c| Value::Str(c.to_string())).collect(),
                    other => {
                        return Err(RuntimeError::TypeError {
                            message: format!("cannot iterate over {}", other.type_name()),
                        })
                    }
                };
                for item in items {
                    self.burn()?;
                    locals.insert(name.clone(), item);
                    match self.block(body, locals, ctx)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                locals.remove(name);
                Ok(Flow::Normal)
            }
            StmtKind::Return { value } => {
                let v = match value {
                    Some(e) => self.expr(e, locals, ctx)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Expr(e) => {
                self.expr(e, locals, ctx)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn expr(
        &mut self,
        e: &'a Expr,
        locals: &mut HashMap<String, Value>,
        ctx: &mut C,
    ) -> Result<Value, RuntimeError> {
        self.burn()?;
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Nil => Ok(Value::Nil),
            ExprKind::Var(name) => Ok(locals
                .get(name)
                .or_else(|| self.globals.get(name))
                .cloned()
                .unwrap_or(Value::Nil)),
            ExprKind::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(self.expr(i, locals, ctx)?);
                }
                Ok(Value::list(out))
            }
            ExprKind::Map(pairs) => {
                let mut map = std::collections::BTreeMap::new();
                for (k, v) in pairs {
                    let key = match self.expr(k, locals, ctx)? {
                        Value::Str(s) => s,
                        other => {
                            return Err(RuntimeError::TypeError {
                                message: format!("map keys must be str, got {}", other.type_name()),
                            })
                        }
                    };
                    let value = self.expr(v, locals, ctx)?;
                    map.insert(key, value);
                }
                Ok(Value::map(map))
            }
            ExprKind::Index { base, index } => {
                let b = self.expr(base, locals, ctx)?;
                let i = self.expr(index, locals, ctx)?;
                ops::index(&b, &i)
            }
            ExprKind::Unary { op, operand } => {
                let v = self.expr(operand, locals, ctx)?;
                match op {
                    UnOp::Neg => ops::neg(v),
                    UnOp::Not => ops::not(v),
                }
            }
            ExprKind::Binary { op: BinOp::And, lhs, rhs } => {
                if self.expr(lhs, locals, ctx)?.as_condition()? {
                    self.expr(rhs, locals, ctx)
                } else {
                    Ok(Value::Bool(false))
                }
            }
            ExprKind::Binary { op: BinOp::Or, lhs, rhs } => {
                if self.expr(lhs, locals, ctx)?.as_condition()? {
                    Ok(Value::Bool(true))
                } else {
                    self.expr(rhs, locals, ctx)
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs, locals, ctx)?;
                let r = self.expr(rhs, locals, ctx)?;
                match op {
                    BinOp::Add => ops::add(l, r),
                    BinOp::Sub => ops::sub(l, r),
                    BinOp::Mul => ops::mul(l, r),
                    BinOp::Div => ops::div(l, r),
                    BinOp::Mod => ops::rem(l, r),
                    BinOp::Eq => Ok(Value::Bool(ops::eq(&l, &r))),
                    BinOp::Ne => Ok(Value::Bool(!ops::eq(&l, &r))),
                    BinOp::Lt => Ok(Value::Bool(ops::cmp(&l, &r)? == std::cmp::Ordering::Less)),
                    BinOp::Le => Ok(Value::Bool(ops::cmp(&l, &r)? != std::cmp::Ordering::Greater)),
                    BinOp::Gt => Ok(Value::Bool(ops::cmp(&l, &r)? == std::cmp::Ordering::Greater)),
                    BinOp::Ge => Ok(Value::Bool(ops::cmp(&l, &r)? != std::cmp::Ordering::Less)),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            ExprKind::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals, ctx)?);
                }
                if let Some(f) = self.ast.functions.iter().find(|f| &f.name == name) {
                    self.call(f, vals, ctx)
                } else {
                    let idx = self.registry.index_of(name).ok_or_else(|| RuntimeError::Host {
                        name: name.clone(),
                        message: "not registered on this server".to_string(),
                    })?;
                    self.registry.call(idx, ctx, &vals)
                }
            }
        }
    }
}

fn index_get_mut<'v>(base: &'v mut Value, index: &Value) -> Result<&'v mut Value, RuntimeError> {
    match (base, index) {
        (Value::List(items), Value::Int(i)) => {
            let len = items.len();
            let idx = usize::try_from(*i).map_err(|_| RuntimeError::BadIndex {
                message: format!("negative list index {i}"),
            })?;
            std::sync::Arc::make_mut(items).get_mut(idx).ok_or(RuntimeError::BadIndex {
                message: format!("list index {i} out of bounds (len {len})"),
            })
        }
        (Value::Map(map), Value::Str(k)) => {
            std::sync::Arc::make_mut(map).get_mut(k).ok_or_else(|| RuntimeError::BadIndex {
                message: format!("no key {k:?} on assignment path"),
            })
        }
        (b, i) => Err(RuntimeError::TypeError {
            message: format!("cannot index {} with {}", b.type_name(), i.type_name()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;

    fn run_both(src: &str, entry: &str, args: &[Value]) -> (Value, Value) {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = crate::compile_program(src, &reg).expect("compiles");
        let mut vm = Instance::new(std::sync::Arc::new(program));
        let vm_result = vm.invoke(entry, args, &mut (), &reg, Budget::default()).expect("vm runs");
        let mut tree = AstInstance::new(src, &reg).expect("parses");
        let tree_result =
            tree.invoke(entry, args, &mut (), &reg, Budget::default()).expect("interp runs");
        (vm_result, tree_result)
    }

    #[test]
    fn interpreter_agrees_with_vm_on_programs() {
        let cases: Vec<(&str, &str, Vec<Value>)> = vec![
            ("fn main() { return 2 + 3 * 4; }", "main", vec![]),
            (
                "fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); } \
                 fn main() { return fact(10); }",
                "main",
                vec![],
            ),
            (
                "fn main() { var t = 0; for (x in [1,2,3,4,5]) { if (x == 3) { continue; } \
                 if (x == 5) { break; } t = t + x; } return t; }",
                "main",
                vec![],
            ),
            (
                "fn main() { var m = {\"a\": [1,2]}; m[\"a\"][1] = 9; return m[\"a\"][1]; }",
                "main",
                vec![],
            ),
            (
                "fn main(s) { return join(sort(split(s, \",\")), \"-\"); }",
                "main",
                vec![Value::from("c,a,b")],
            ),
            ("var g = 10; fn main() { g = g + 5; return g; }", "main", vec![]),
            ("fn main() { return false && (1 / 0 == 1) || true; }", "main", vec![]),
        ];
        for (src, entry, args) in cases {
            let (vm, tree) = run_both(src, entry, &args);
            assert_eq!(vm, tree, "mismatch on {src}");
        }
    }

    #[test]
    fn interpreter_enforces_fuel() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let mut inst = AstInstance::new("fn main() { while (true) { } return 0; }", &reg).unwrap();
        let budget = Budget { fuel: 10_000, ..Budget::default() };
        let err = inst.invoke("main", &[], &mut (), &reg, budget).unwrap_err();
        assert_eq!(err, RuntimeError::OutOfFuel);
    }

    #[test]
    fn interpreter_enforces_call_depth() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let mut inst =
            AstInstance::new("fn f(n) { return f(n + 1); } fn main() { return f(0); }", &reg)
                .unwrap();
        let err = inst.invoke("main", &[], &mut (), &reg, Budget::default()).unwrap_err();
        assert_eq!(err, RuntimeError::StackOverflow);
    }

    #[test]
    fn interpreter_state_persists() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let mut inst =
            AstInstance::new("var n = 0; fn bump() { n = n + 1; return n; }", &reg).unwrap();
        inst.invoke("bump", &[], &mut (), &reg, Budget::default()).unwrap();
        let v = inst.invoke("bump", &[], &mut (), &reg, Budget::default()).unwrap();
        assert_eq!(v, Value::Int(2));
        assert_eq!(inst.global("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn interpreter_rejects_bad_programs_like_the_translator() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        assert!(AstInstance::new("fn main() { return evil(); }", &reg).is_err());
        assert!(AstInstance::new("fn main() { return x; }", &reg).is_err());
    }

    #[test]
    fn vm_is_faster_than_tree_walking_on_hot_loops() {
        // Not a benchmark, just a sanity check of the ablation's premise:
        // on a compute-heavy loop the VM should never lose.
        let src = "fn main(n) { var t = 0; var i = 0; while (i < n) { t = t + i; i = i + 1; } \
                   return t; }";
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = crate::compile_program(src, &reg).unwrap();
        let mut vm = Instance::new(std::sync::Arc::new(program));
        let mut tree = AstInstance::new(src, &reg).unwrap();
        let big = Budget { fuel: u64::MAX / 2, memory: u64::MAX / 2, call_depth: 64 };

        let n = Value::Int(50_000);
        let t0 = std::time::Instant::now();
        let vm_v = vm.invoke("main", std::slice::from_ref(&n), &mut (), &reg, big).unwrap();
        let vm_t = t0.elapsed();
        let t0 = std::time::Instant::now();
        let tree_v = tree.invoke("main", std::slice::from_ref(&n), &mut (), &reg, big).unwrap();
        let tree_t = t0.elapsed();
        assert_eq!(vm_v, tree_v);
        assert!(
            vm_t <= tree_t * 2,
            "vm {vm_t:?} should not be dramatically slower than tree {tree_t:?}"
        );
    }
}
