use std::error::Error;
use std::fmt;

/// A lexical error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Line the error occurred on.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}
impl Error for LexError {}

/// A syntax error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}
impl Error for ParseError {}

/// A violation of the translator's static rules (the paper's grounds for
/// rejecting a delegated program).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// Call to a function that is neither defined in the program nor in
    /// the server's allowed host-function set.
    UnknownFunction {
        /// The offending name.
        name: String,
        /// Line of the call.
        line: u32,
    },
    /// Call with the wrong number of arguments.
    WrongArity {
        /// The function called.
        name: String,
        /// Arity it declares.
        expected: usize,
        /// Arity at the call site.
        found: usize,
        /// Line of the call.
        line: u32,
    },
    /// Use of a variable that is not in scope.
    UndefinedVariable {
        /// The offending name.
        name: String,
        /// Line of the use.
        line: u32,
    },
    /// Two functions (or a function and a host function) share a name.
    DuplicateFunction {
        /// The duplicated name.
        name: String,
    },
    /// Two parameters or locals in one scope share a name.
    DuplicateVariable {
        /// The duplicated name.
        name: String,
        /// Line of the redefinition.
        line: u32,
    },
    /// `break`/`continue` outside any loop.
    StrayLoopControl {
        /// Line of the statement.
        line: u32,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownFunction { name, line } => {
                write!(f, "line {line}: call to unknown function `{name}` (not in the allowed set)")
            }
            CheckError::WrongArity { name, expected, found, line } => {
                write!(f, "line {line}: `{name}` expects {expected} argument(s), got {found}")
            }
            CheckError::UndefinedVariable { name, line } => {
                write!(f, "line {line}: undefined variable `{name}`")
            }
            CheckError::DuplicateFunction { name } => {
                write!(f, "duplicate function `{name}`")
            }
            CheckError::DuplicateVariable { name, line } => {
                write!(f, "line {line}: duplicate variable `{name}`")
            }
            CheckError::StrayLoopControl { line } => {
                write!(f, "line {line}: break/continue outside a loop")
            }
        }
    }
}
impl Error for CheckError {}

/// A runtime fault inside a delegated program instance. The instance is
/// terminated; the elastic process is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// The memory budget was exhausted.
    OutOfMemory,
    /// The call stack exceeded its depth budget.
    StackOverflow,
    /// A binary/unary operation was applied to unsupported operand types.
    TypeError {
        /// Human-readable description of the misuse.
        message: String,
    },
    /// Integer or float division by zero.
    DivisionByZero,
    /// An index was out of bounds or a map key was absent.
    BadIndex {
        /// Description of the failed access.
        message: String,
    },
    /// A host function reported an error.
    Host {
        /// The host function's name.
        name: String,
        /// Its error text.
        message: String,
    },
    /// Invocation of a function name the program does not define.
    NoSuchFunction {
        /// The requested entry point.
        name: String,
    },
    /// The entry point was invoked with the wrong number of arguments.
    BadInvocation {
        /// Expected arity.
        expected: usize,
        /// Provided arity.
        found: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfFuel => write!(f, "instruction budget exhausted"),
            RuntimeError::OutOfMemory => write!(f, "memory budget exhausted"),
            RuntimeError::StackOverflow => write!(f, "call depth budget exhausted"),
            RuntimeError::TypeError { message } => write!(f, "type error: {message}"),
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::BadIndex { message } => write!(f, "bad index: {message}"),
            RuntimeError::Host { name, message } => write!(f, "host `{name}`: {message}"),
            RuntimeError::NoSuchFunction { name } => write!(f, "no such function `{name}`"),
            RuntimeError::BadInvocation { expected, found } => {
                write!(f, "entry point expects {expected} argument(s), got {found}")
            }
        }
    }
}
impl Error for RuntimeError {}

/// Any error from the DPL pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DplError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Translator rejection.
    Check(CheckError),
    /// Runtime fault.
    Runtime(RuntimeError),
}

impl fmt::Display for DplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DplError::Lex(e) => e.fmt(f),
            DplError::Parse(e) => e.fmt(f),
            DplError::Check(e) => e.fmt(f),
            DplError::Runtime(e) => e.fmt(f),
        }
    }
}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for DplError {
            fn from(e: $ty) -> DplError {
                DplError::$variant(e)
            }
        }
    };
}
impl_from!(Lex, LexError);
impl_from!(Parse, ParseError);
impl_from!(Check, CheckError);
impl_from!(Runtime, RuntimeError);

impl Error for DplError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DplError::Lex(e) => Some(e),
            DplError::Parse(e) => Some(e),
            DplError::Check(e) => Some(e),
            DplError::Runtime(e) => Some(e),
        }
    }
}
