//! The sandboxed stack VM that executes delegated-program instances.
//!
//! Every invocation runs under a [`Budget`]: an instruction (fuel) limit,
//! a cumulative allocation limit, and a call-depth limit. Exceeding any of
//! them aborts the invocation with a [`RuntimeError`] — the embedding
//! elastic process terminates the offending dpi and keeps running, which
//! is the MbD safety property that lets a server accept code from
//! less-than-fully-trusted managers.

use crate::bytecode::{Op, Program};
use crate::host::HostRegistry;
use crate::profile::{BlockProfile, Profile};
use crate::value::ops;
use crate::{RuntimeError, Value};
use std::sync::Arc;

/// Resource limits for one invocation.
///
/// # Examples
///
/// ```
/// use dpl::Budget;
/// let tight = Budget { fuel: 1_000, ..Budget::default() };
/// assert!(tight.fuel < Budget::default().fuel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum instructions executed (host calls cost extra).
    pub fuel: u64,
    /// Maximum cumulative allocation, in value cells (see
    /// [`Value::cost`]).
    pub memory: u64,
    /// Maximum call-stack depth.
    pub call_depth: u32,
}

impl Default for Budget {
    /// 1M instructions, 1M cells, depth 64 — generous for management
    /// agents, tiny for runaways.
    fn default() -> Budget {
        Budget { fuel: 1_000_000, memory: 1_000_000, call_depth: 64 }
    }
}

/// Execution counters from the most recent invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Instructions executed.
    pub fuel_used: u64,
    /// Cells allocated.
    pub memory_used: u64,
    /// Deepest call stack reached.
    pub max_depth: u32,
    /// Host functions invoked.
    pub host_calls: u64,
}

/// A pre-resolved entry point: the function's index and arity, looked up
/// once (via [`Instance::entry`]) and reusable across invocations without
/// any per-call string hashing.
///
/// A handle is tied to the [`Program`] it was resolved against; instances
/// sharing one `Arc<Program>` can share handles. [`Instance::invoke_entry`]
/// re-validates the index bounds, but a handle resolved against an
/// unrelated program of the same shape is the caller's bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    index: u32,
    arity: u32,
}

/// A delegated program *instance* (dpi): shared compiled code plus
/// persistent private global state.
///
/// Instances of the same [`Program`] share one code object (the `Arc`
/// passed to [`Instance::new`]) but have independent state, exactly like
/// the paper's dpis instantiated from one dp. Global initializers run
/// lazily on the first invocation (they may call host functions, which
/// need a context).
///
/// Name resolution is cached per instance: the program's host-function
/// table is mapped to registry indices once and re-validated only when
/// the registry's generation changes, and the most recent entry-point
/// lookup is memoized ([`Instance::entry`] /
/// [`Instance::invoke_entry`] skip the string lookup entirely).
#[derive(Debug, Clone)]
pub struct Instance {
    program: Arc<Program>,
    globals: Vec<Value>,
    initialized: bool,
    last_stats: VmStats,
    /// Program host-table index → registry index, valid while the
    /// registry generation equals `host_map_generation`.
    host_map: Vec<usize>,
    host_map_generation: Option<u64>,
    /// Memo of the most recent string entry-point resolution.
    last_entry: Option<(Box<str>, Entry)>,
    /// Sampling profiler state, if enabled for this instance.
    profile: Option<Box<Profile>>,
}

impl Instance {
    /// Creates a fresh instance sharing `program`'s compiled code.
    ///
    /// N instances of one dp hold N `Arc` references to a single code
    /// object; instantiation allocates only the per-dpi global slots.
    pub fn new(program: Arc<Program>) -> Instance {
        let globals = vec![Value::Nil; program.global_names.len()];
        Instance {
            program,
            globals,
            initialized: false,
            last_stats: VmStats::default(),
            host_map: Vec::new(),
            host_map_generation: None,
            last_entry: None,
            profile: None,
        }
    }

    /// The program this instance runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The shared compiled-code object. Two instances of the same dp
    /// satisfy `Arc::ptr_eq(a.program_shared(), b.program_shared())`.
    pub fn program_shared(&self) -> &Arc<Program> {
        &self.program
    }

    /// Counters from the most recent invocation.
    pub fn last_stats(&self) -> VmStats {
        self.last_stats
    }

    /// Turns on (or re-arms, discarding prior samples) the sampling
    /// profiler at one sample per `sample_every` basic-block entries;
    /// `0` turns profiling off.
    pub fn enable_profiling(&mut self, sample_every: u32) {
        self.profile =
            if sample_every == 0 { None } else { Some(Box::new(Profile::new(sample_every))) };
    }

    /// Whether this instance is being profiled.
    pub fn profiling_enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// Total profile samples recorded (0 when profiling is off).
    pub fn profile_samples(&self) -> u64 {
        self.profile.as_ref().map(|p| p.samples()).unwrap_or(0)
    }

    /// The aggregated profile, hottest block first (empty when
    /// profiling is off).
    pub fn profile_rows(&self) -> Vec<BlockProfile> {
        self.profile.as_ref().map(|p| p.rows(&self.program)).unwrap_or_default()
    }

    /// The profile as folded-stack lines for flamegraph tooling.
    pub fn profile_folded(&self) -> Vec<String> {
        self.profile.as_ref().map(|p| p.folded(&self.program)).unwrap_or_default()
    }

    /// Reads a persistent global by name (dpi state inspection).
    pub fn global(&self, name: &str) -> Option<&Value> {
        let idx = self.program.global_names.iter().position(|n| n == name)?;
        self.globals.get(idx)
    }

    /// Resolves `name` to a reusable [`Entry`] handle, or `None` if the
    /// program does not define it.
    pub fn entry(&self, name: &str) -> Option<Entry> {
        let &idx = self.program.fn_by_name.get(name)?;
        Some(Entry { index: idx as u32, arity: self.program.functions[idx].arity as u32 })
    }

    /// A copy of every persistent global, in declaration order
    /// (matching [`Program::global_names`]). Together with
    /// [`Instance::initialized`] this is the instance's complete
    /// serializable state: DPL values hold no foreign pointers, so a
    /// checkpoint of `(globals, initialized)` plus the program source
    /// reconstructs the dpi exactly.
    pub fn globals_snapshot(&self) -> Vec<Value> {
        self.globals.clone()
    }

    /// Whether the lazy global initializers have already run. Part of
    /// the serializable state: a restored instance must not re-run its
    /// initializers and clobber the restored globals.
    pub fn initialized(&self) -> bool {
        self.initialized
    }

    /// Replaces this instance's persistent state with a previously
    /// captured `(globals, initialized)` pair — the restore half of
    /// checkpoint/migration and of crash recovery.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadInvocation`] if `globals` does not match the
    /// program's global count (the checkpoint came from a different
    /// program shape).
    pub fn restore_state(
        &mut self,
        globals: Vec<Value>,
        initialized: bool,
    ) -> Result<(), RuntimeError> {
        let expected = self.program.global_names.len();
        if globals.len() != expected {
            return Err(RuntimeError::BadInvocation { expected, found: globals.len() });
        }
        self.globals = globals;
        self.initialized = initialized;
        Ok(())
    }

    /// Drops the cached host map and entry memo so the next invocation
    /// re-resolves everything from scratch. Exists for the `e10_vm`
    /// bench, which uses it to reconstruct the pre-cache per-invocation
    /// cost as a baseline series; correctness never requires calling it
    /// (generation tracking invalidates the cache automatically).
    pub fn clear_resolution_caches(&mut self) {
        self.host_map = Vec::new();
        self.host_map_generation = None;
        self.last_entry = None;
    }

    /// Invokes `entry` with `args` under `budget`, using `registry` for
    /// host calls with context `ctx`.
    ///
    /// # Errors
    ///
    /// - [`RuntimeError::NoSuchFunction`] / [`RuntimeError::BadInvocation`]
    ///   for a bad entry point;
    /// - any fault or budget exhaustion during execution. A failed
    ///   invocation leaves global state as the failure left it (the paper's
    ///   dpis are likewise not transactional).
    pub fn invoke<C>(
        &mut self,
        entry: &str,
        args: &[Value],
        ctx: &mut C,
        registry: &HostRegistry<C>,
        budget: Budget,
    ) -> Result<Value, RuntimeError> {
        let handle = match &self.last_entry {
            Some((name, h)) if &**name == entry => *h,
            _ => {
                let h = self
                    .entry(entry)
                    .ok_or_else(|| RuntimeError::NoSuchFunction { name: entry.to_string() })?;
                self.last_entry = Some((entry.into(), h));
                h
            }
        };
        self.invoke_entry(handle, args, ctx, registry, budget)
    }

    /// Invokes a pre-resolved entry point, skipping the name lookup. This
    /// is the hot path for callers that invoke the same function
    /// repeatedly (the RDS `Invoke` verb, the health observer).
    ///
    /// Entry resolution and arity validation happen before the lazy
    /// global-initializer run, so a bad invocation fails without
    /// executing any program code.
    pub fn invoke_entry<C>(
        &mut self,
        entry: Entry,
        args: &[Value],
        ctx: &mut C,
        registry: &HostRegistry<C>,
        budget: Budget,
    ) -> Result<Value, RuntimeError> {
        let fn_idx = entry.index as usize;
        let arity = match self.program.functions.get(fn_idx) {
            Some(f) => f.arity,
            None => return Err(RuntimeError::NoSuchFunction { name: format!("#fn{fn_idx}") }),
        };
        if arity != args.len() {
            return Err(RuntimeError::BadInvocation { expected: arity, found: args.len() });
        }
        self.ensure_host_map(registry)?;
        if let Some(p) = self.profile.as_deref_mut() {
            p.begin_invocation();
        }
        let program = Arc::clone(&self.program);
        // The sampling countdown lives in a plain Vm field while the VM
        // runs (one memory decrement per block, profiled or not) and
        // syncs back to the profiler at invocation boundaries so the
        // 1-in-N phase carries across invocations.
        let sample_countdown = self.profile.as_deref().map(|p| p.countdown()).unwrap_or(u32::MAX);
        let mut vm = Vm {
            program: &program,
            globals: &mut self.globals,
            registry,
            host_map: &self.host_map,
            budget,
            stats: VmStats::default(),
            profiler: self.profile.as_deref_mut(),
            sample_countdown,
        };
        let result = (|| {
            if !self.initialized {
                vm.run(program.init_fn, Vec::new(), ctx)?;
                self.initialized = true;
            }
            vm.run(fn_idx, args.to_vec(), ctx)
        })();
        self.last_stats = vm.stats;
        let sample_countdown = vm.sample_countdown;
        if let Some(p) = self.profile.as_deref_mut() {
            p.set_countdown(sample_countdown);
        }
        result
    }

    /// Maps the program's host-function table to registry indices,
    /// reusing the cached map while the registry generation is unchanged.
    fn ensure_host_map<C>(&mut self, registry: &HostRegistry<C>) -> Result<(), RuntimeError> {
        if self.host_map_generation == Some(registry.generation()) {
            return Ok(());
        }
        self.host_map.clear();
        self.host_map.reserve(self.program.host_names.len());
        for name in &self.program.host_names {
            match registry.index_of(name) {
                Some(i) => self.host_map.push(i),
                None => {
                    self.host_map_generation = None;
                    return Err(RuntimeError::Host {
                        name: name.clone(),
                        message: "not registered on this server".to_string(),
                    });
                }
            }
        }
        self.host_map_generation = Some(registry.generation());
        Ok(())
    }
}

/// Caller-saved state parked while a callee runs: the caller's function
/// index, resume ip, and locals. The *current* frame lives in `run`'s
/// locals, not in this vector.
struct Frame {
    func: usize,
    ret_ip: usize,
    locals: Vec<Value>,
}

struct Vm<'a, C> {
    program: &'a Program,
    globals: &'a mut Vec<Value>,
    registry: &'a HostRegistry<C>,
    host_map: &'a [usize],
    budget: Budget,
    stats: VmStats,
    /// Sampling profiler hook, consulted only when `sample_countdown`
    /// fires.
    profiler: Option<&'a mut Profile>,
    /// Blocks until the next profile sample; `u32::MAX` when profiling
    /// is off, so the per-block cost is one decrement either way.
    sample_countdown: u32,
}

impl<'a, C> Vm<'a, C> {
    /// The sampled-block slow path: reloads the countdown and, when a
    /// profiler is attached, records the sample. (Without one, this
    /// fires at most once per ~4 billion blocks — the `u32::MAX`
    /// sentinel wrapping around — and just re-arms the sentinel.)
    #[cold]
    fn record_sample(&mut self, stack: Vec<u32>, leader_ip: u32) {
        match self.profiler.as_deref_mut() {
            Some(p) => {
                self.sample_countdown = p.sample_every();
                p.record(stack, leader_ip, self.stats.fuel_used);
            }
            None => self.sample_countdown = u32::MAX,
        }
    }

    fn charge_fuel(&mut self, amount: u64) -> Result<(), RuntimeError> {
        self.stats.fuel_used += amount;
        if self.stats.fuel_used > self.budget.fuel {
            Err(RuntimeError::OutOfFuel)
        } else {
            Ok(())
        }
    }

    /// Charges the full (deep) cost of a freshly built value.
    fn charge_alloc(&mut self, v: &Value) -> Result<(), RuntimeError> {
        self.charge_cells(v.cost().saturating_sub(1))
    }

    /// Charges only what a clone of `v` actually allocates (containers
    /// are `Arc`-shared, so loads of large tables are O(1)).
    fn charge_clone(&mut self, v: &Value) -> Result<(), RuntimeError> {
        self.charge_cells(v.clone_cost().saturating_sub(1))
    }

    fn charge_cells(&mut self, cost: u64) -> Result<(), RuntimeError> {
        if cost > 0 {
            self.stats.memory_used += cost;
            if self.stats.memory_used > self.budget.memory {
                return Err(RuntimeError::OutOfMemory);
            }
        }
        Ok(())
    }

    /// Executes `entry` to completion.
    ///
    /// The dispatch loop keeps the current function's code, charge table,
    /// instruction cursor and locals in machine-register-friendly locals
    /// (not behind `frames.last_mut()`), fetches each `Op` by value
    /// (`Op: Copy` — no per-instruction clone), and charges fuel once per
    /// basic block from the precomputed [`Function::charge`] table: at
    /// function entry, at every branch target or fall-through, on call
    /// entry, and on return/host-call resume. Completed runs charge
    /// exactly what per-instruction accounting charged; aborts move only
    /// within one basic block (see `docs/DPL.md`).
    fn run(&mut self, entry: usize, args: Vec<Value>, ctx: &mut C) -> Result<Value, RuntimeError> {
        let program = self.program;
        let mut stack: Vec<Value> = Vec::with_capacity(32);
        let mut frames: Vec<Frame> = Vec::with_capacity(8);
        let entry_fn = &program.functions[entry];
        let mut locals = args;
        locals.resize(entry_fn.n_locals, Value::Nil);
        let mut func = entry;
        let mut code: &[Op] = &entry_fn.code;
        let mut charge: &[u32] = &entry_fn.charge;
        let mut ip = 0usize;
        self.stats.max_depth = self.stats.max_depth.max(1);
        debug_assert!(!code.is_empty(), "compiler emits an epilogue");
        self.charge_fuel(u64::from(charge[0]))?;

        macro_rules! pop {
            () => {
                stack.pop().expect("compiler guarantees stack discipline")
            };
        }

        // Profiler hook, invoked at every block-entry charge site. One
        // plain countdown decrement per block — identical whether
        // profiling is on (counts down from `sample_every`) or off
        // (counts down from `u32::MAX`, i.e. never fires in practice) —
        // with the profiler lookup, stack allocation and clock read
        // confined to the sampled 1-in-N entries.
        macro_rules! sample {
            ($leader:expr) => {
                self.sample_countdown -= 1;
                if self.sample_countdown == 0 {
                    let mut s: Vec<u32> = frames.iter().map(|f| f.func as u32).collect();
                    s.push(func as u32);
                    self.record_sample(s, $leader as u32);
                }
            };
        }
        sample!(0usize);

        loop {
            debug_assert!(ip < code.len(), "fell off function end");
            let op = code[ip];
            ip += 1;
            match op {
                Op::Const(i) => {
                    let v = program.consts[i as usize].clone();
                    self.charge_clone(&v)?;
                    stack.push(v);
                }
                Op::Nil => stack.push(Value::Nil),
                Op::Bool(b) => stack.push(Value::Bool(b)),
                Op::LoadLocal(i) => {
                    let v = locals[i as usize].clone();
                    self.charge_clone(&v)?;
                    stack.push(v);
                }
                Op::StoreLocal(i) => {
                    locals[i as usize] = pop!();
                }
                Op::LoadGlobal(i) => {
                    let v = self.globals[i as usize].clone();
                    self.charge_clone(&v)?;
                    stack.push(v);
                }
                Op::StoreGlobal(i) => {
                    self.globals[i as usize] = pop!();
                }
                Op::Add => {
                    let b = pop!();
                    let a = pop!();
                    let v = ops::add(a, b)?;
                    self.charge_alloc(&v)?;
                    stack.push(v);
                }
                Op::Sub => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(ops::sub(a, b)?);
                }
                Op::Mul => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(ops::mul(a, b)?);
                }
                Op::Div => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(ops::div(a, b)?);
                }
                Op::Mod => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(ops::rem(a, b)?);
                }
                Op::Neg => {
                    let a = pop!();
                    stack.push(ops::neg(a)?);
                }
                Op::Not => {
                    let a = pop!();
                    stack.push(ops::not(a)?);
                }
                Op::Eq => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(ops::eq(&a, &b)));
                }
                Op::Ne => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(!ops::eq(&a, &b)));
                }
                Op::Lt => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(ops::cmp(&a, &b)? == std::cmp::Ordering::Less));
                }
                Op::Le => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(ops::cmp(&a, &b)? != std::cmp::Ordering::Greater));
                }
                Op::Gt => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(ops::cmp(&a, &b)? == std::cmp::Ordering::Greater));
                }
                Op::Ge => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(ops::cmp(&a, &b)? != std::cmp::Ordering::Less));
                }
                Op::Jump(t) => {
                    ip = t as usize;
                    self.charge_fuel(u64::from(charge[ip]))?;
                    sample!(ip);
                }
                Op::JumpIfFalse(t) => {
                    let cond = pop!().as_condition()?;
                    if !cond {
                        ip = t as usize;
                    }
                    self.charge_fuel(u64::from(charge[ip]))?;
                    sample!(ip);
                }
                Op::AndJump(t) => {
                    let top = stack.last().expect("stack").clone();
                    if !top.as_condition()? {
                        ip = t as usize;
                    } else {
                        stack.pop();
                    }
                    self.charge_fuel(u64::from(charge[ip]))?;
                    sample!(ip);
                }
                Op::OrJump(t) => {
                    let top = stack.last().expect("stack").clone();
                    if top.as_condition()? {
                        ip = t as usize;
                    } else {
                        stack.pop();
                    }
                    self.charge_fuel(u64::from(charge[ip]))?;
                    sample!(ip);
                }
                Op::Call { func: callee, argc } => {
                    // The current frame is not in `frames`, so the depth
                    // about to be reached is `frames.len() + 2`; this is
                    // the same limit the seed enforced.
                    if frames.len() as u32 + 1 >= self.budget.call_depth {
                        return Err(RuntimeError::StackOverflow);
                    }
                    let f = &program.functions[callee as usize];
                    let split = stack.len() - argc as usize;
                    let mut callee_locals: Vec<Value> = stack.split_off(split);
                    callee_locals.resize(f.n_locals, Value::Nil);
                    frames.push(Frame {
                        func,
                        ret_ip: ip,
                        locals: std::mem::replace(&mut locals, callee_locals),
                    });
                    func = callee as usize;
                    code = &f.code;
                    charge = &f.charge;
                    ip = 0;
                    self.stats.max_depth = self.stats.max_depth.max(frames.len() as u32 + 1);
                    self.charge_fuel(u64::from(charge[0]))?;
                    sample!(0usize);
                }
                Op::CallHost { host, argc } => {
                    self.stats.host_calls += 1;
                    let split = stack.len() - argc as usize;
                    let args: Vec<Value> = stack.split_off(split);
                    let idx = self.host_map[host as usize];
                    let v = self.registry.call(idx, ctx, &args)?;
                    self.charge_alloc(&v)?;
                    stack.push(v);
                    // A host call ends its basic block; charge the
                    // resumption block.
                    self.charge_fuel(u64::from(charge[ip]))?;
                    sample!(ip);
                }
                Op::Return => {
                    let v = pop!();
                    match frames.pop() {
                        None => return Ok(v),
                        Some(caller) => {
                            func = caller.func;
                            ip = caller.ret_ip;
                            locals = caller.locals;
                            let f = &program.functions[func];
                            code = &f.code;
                            charge = &f.charge;
                            stack.push(v);
                            self.charge_fuel(u64::from(charge[ip]))?;
                            sample!(ip);
                        }
                    }
                }
                Op::Pop => {
                    let _ = pop!();
                }
                Op::MakeList(n) => {
                    let split = stack.len() - n as usize;
                    let items: Vec<Value> = stack.split_off(split);
                    let v = Value::list(items);
                    self.charge_alloc(&v)?;
                    stack.push(v);
                }
                Op::MakeMap(n) => {
                    let split = stack.len() - 2 * n as usize;
                    let mut items = stack.split_off(split);
                    let mut map = std::collections::BTreeMap::new();
                    // Pairs were pushed key, value, key, value, ...
                    for _ in 0..n {
                        let v = items.pop().expect("pair");
                        let k = items.pop().expect("pair");
                        let key = match k {
                            Value::Str(s) => s,
                            other => {
                                return Err(RuntimeError::TypeError {
                                    message: format!(
                                        "map keys must be str, got {}",
                                        other.type_name()
                                    ),
                                })
                            }
                        };
                        map.insert(key, v);
                    }
                    let v = Value::map(map);
                    self.charge_alloc(&v)?;
                    stack.push(v);
                }
                Op::Index => {
                    let idx = pop!();
                    let base = pop!();
                    let v = ops::index(&base, &idx)?;
                    self.charge_clone(&v)?;
                    stack.push(v);
                }
                Op::IndexSetLocal { slot, depth } => {
                    let value = pop!();
                    let split = stack.len() - depth as usize;
                    let indices: Vec<Value> = stack.split_off(split);
                    let root = &mut locals[slot as usize];
                    index_set_path(root, &indices, value)?;
                }
                Op::IndexSetGlobal { slot, depth } => {
                    let value = pop!();
                    let split = stack.len() - depth as usize;
                    let indices: Vec<Value> = stack.split_off(split);
                    let root = &mut self.globals[slot as usize];
                    index_set_path(root, &indices, value)?;
                }
                Op::IterList => {
                    let v = pop!();
                    let list = match v {
                        Value::List(items) => {
                            let v = Value::List(items);
                            self.charge_clone(&v)?;
                            v
                        }
                        Value::Map(map) => {
                            let v = Value::list(map.keys().cloned().map(Value::Str).collect());
                            self.charge_alloc(&v)?;
                            v
                        }
                        Value::Str(s) => {
                            let v =
                                Value::list(s.chars().map(|c| Value::Str(c.to_string())).collect());
                            self.charge_alloc(&v)?;
                            v
                        }
                        other => {
                            return Err(RuntimeError::TypeError {
                                message: format!("cannot iterate over {}", other.type_name()),
                            })
                        }
                    };
                    stack.push(list);
                }
                Op::Len => {
                    let v = pop!();
                    let n = match v {
                        Value::List(items) => items.len(),
                        Value::Str(s) => s.chars().count(),
                        Value::Map(m) => m.len(),
                        other => {
                            return Err(RuntimeError::TypeError {
                                message: format!("no length for {}", other.type_name()),
                            })
                        }
                    };
                    stack.push(Value::Int(n as i64));
                }
            }
        }
    }
}

/// Navigates `root` through all but the last index, then assigns at the
/// last index.
fn index_set_path(root: &mut Value, indices: &[Value], value: Value) -> Result<(), RuntimeError> {
    let (last, path) = indices.split_last().expect("depth >= 1");
    let mut cur = root;
    for idx in path {
        cur = index_get_mut(cur, idx)?;
    }
    ops::index_set(cur, last.clone(), value)
}

fn index_get_mut<'v>(base: &'v mut Value, index: &Value) -> Result<&'v mut Value, RuntimeError> {
    match (base, index) {
        (Value::List(items), Value::Int(i)) => {
            let len = items.len();
            let idx = usize::try_from(*i).map_err(|_| RuntimeError::BadIndex {
                message: format!("negative list index {i}"),
            })?;
            std::sync::Arc::make_mut(items).get_mut(idx).ok_or(RuntimeError::BadIndex {
                message: format!("list index {i} out of bounds (len {len})"),
            })
        }
        (Value::Map(map), Value::Str(k)) => {
            std::sync::Arc::make_mut(map).get_mut(k).ok_or_else(|| RuntimeError::BadIndex {
                message: format!("no key {k:?} on assignment path"),
            })
        }
        (b, i) => Err(RuntimeError::TypeError {
            message: format!("cannot index {} with {}", b.type_name(), i.type_name()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_program;

    fn run(src: &str, entry: &str, args: &[Value]) -> Result<Value, RuntimeError> {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = compile_program(src, &reg).expect("program compiles");
        let mut inst = Instance::new(Arc::new(program));
        inst.invoke(entry, args, &mut (), &reg, Budget::default())
    }

    fn run_main(src: &str) -> Result<Value, RuntimeError> {
        run(src, "main", &[])
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(run_main("fn main() { return 2 + 3 * 4; }").unwrap(), Value::Int(14));
        assert_eq!(run_main("fn main() { return (2 + 3) * 4; }").unwrap(), Value::Int(20));
        assert_eq!(run_main("fn main() { return 7.0 / 2; }").unwrap(), Value::Float(3.5));
        assert_eq!(run_main("fn main() { return -3 % 2; }").unwrap(), Value::Int(-1));
    }

    #[test]
    fn implicit_nil_return() {
        assert_eq!(run_main("fn main() { var x = 1; x = x; }").unwrap(), Value::Nil);
        assert_eq!(run_main("fn main() { return; }").unwrap(), Value::Nil);
    }

    #[test]
    fn conditionals() {
        let src = "fn main(x) { if (x > 10) { return \"big\"; } else if (x > 5) { \
                   return \"mid\"; } else { return \"small\"; } }";
        assert_eq!(run(src, "main", &[Value::Int(20)]).unwrap(), Value::from("big"));
        assert_eq!(run(src, "main", &[Value::Int(7)]).unwrap(), Value::from("mid"));
        assert_eq!(run(src, "main", &[Value::Int(1)]).unwrap(), Value::from("small"));
    }

    #[test]
    fn while_loop_with_break_continue() {
        let src = "fn main() { var t = 0; var i = 0; while (true) { i = i + 1; \
                   if (i > 10) { break; } if (i % 2 == 0) { continue; } t = t + i; } return t; }";
        assert_eq!(run_main(src).unwrap(), Value::Int(25)); // 1+3+5+7+9
    }

    #[test]
    fn for_in_over_list_map_str() {
        assert_eq!(
            run_main("fn main() { var t = 0; for (x in [1,2,3,4]) { t = t + x; } return t; }")
                .unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            run_main(
                "fn main() { var ks = \"\"; for (k in {\"b\": 1, \"a\": 2}) { ks = ks + k; } \
                 return ks; }"
            )
            .unwrap(),
            Value::from("ab") // map iteration is ordered
        );
        assert_eq!(
            run_main("fn main() { var n = 0; for (c in \"héllo\") { n = n + 1; } return n; }")
                .unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn nested_loops_with_break() {
        let src = "fn main() { var hits = 0; for (i in [1,2,3]) { for (j in [1,2,3]) { \
                   if (j == i) { break; } hits = hits + 1; } } return hits; }";
        assert_eq!(run_main(src).unwrap(), Value::Int(3)); // 0+1+2
    }

    #[test]
    fn function_calls_and_recursion() {
        assert_eq!(
            run_main(
                "fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); } \
                 fn main() { return fact(10); }"
            )
            .unwrap(),
            Value::Int(3_628_800)
        );
        assert_eq!(
            run_main(
                "fn even(n) { if (n == 0) { return true; } return odd(n - 1); } \
                 fn odd(n) { if (n == 0) { return false; } return even(n - 1); } \
                 fn main() { return even(20); }"
            )
            .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn globals_persist_across_invocations() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program =
            compile_program("var hits = 0; fn bump() { hits = hits + 1; return hits; }", &reg)
                .unwrap();
        let program = Arc::new(program);
        let mut a = Instance::new(Arc::clone(&program));
        let mut b = Instance::new(program);
        for _ in 0..3 {
            a.invoke("bump", &[], &mut (), &reg, Budget::default()).unwrap();
        }
        let vb = b.invoke("bump", &[], &mut (), &reg, Budget::default()).unwrap();
        assert_eq!(a.global("hits"), Some(&Value::Int(3)));
        assert_eq!(vb, Value::Int(1)); // instances are independent
    }

    #[test]
    fn global_initializers_can_compute() {
        let v = run(
            "var table = [1, 2, 3]; var total = sum(table); fn main() { return total; }",
            "main",
            &[],
        )
        .unwrap();
        assert_eq!(v, Value::Int(6));
    }

    #[test]
    fn short_circuit_evaluation() {
        // The RHS would divide by zero if evaluated.
        assert_eq!(
            run_main("fn main() { return false && (1 / 0 == 1); }").unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            run_main("fn main() { return true || (1 / 0 == 1); }").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(run_main("fn main() { return true && false; }").unwrap(), Value::Bool(false));
    }

    #[test]
    fn lists_and_maps() {
        assert_eq!(
            run_main("fn main() { var xs = [1,2,3]; xs[1] = 9; return xs[1] + xs[2]; }").unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            run_main("fn main() { var m = {\"a\": 1}; m[\"b\"] = 2; return m[\"a\"] + m[\"b\"]; }")
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            run_main(
                "fn main() { var m = {\"in\": {\"x\": 1}}; m[\"in\"][\"x\"] = 5; \
                 return m[\"in\"][\"x\"]; }"
            )
            .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            run_main(
                "fn main() { var g = [[1,2],[3,4]]; g[1][0] = 30; return g[1][0] + g[0][1]; }"
            )
            .unwrap(),
            Value::Int(32)
        );
    }

    #[test]
    fn runtime_faults_are_reported() {
        assert_eq!(
            run_main("fn main() { return 1 / 0; }").unwrap_err(),
            RuntimeError::DivisionByZero
        );
        assert!(matches!(
            run_main("fn main() { return [1][5]; }").unwrap_err(),
            RuntimeError::BadIndex { .. }
        ));
        assert!(matches!(
            run_main("fn main() { return 1 + \"x\"; }").unwrap_err(),
            RuntimeError::TypeError { .. }
        ));
        assert!(matches!(
            run_main("fn main() { if (1) { } return 0; }").unwrap_err(),
            RuntimeError::TypeError { .. }
        ));
    }

    #[test]
    fn fuel_budget_stops_infinite_loops() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = compile_program("fn main() { while (true) { } return 0; }", &reg).unwrap();
        let mut inst = Instance::new(Arc::new(program));
        let budget = Budget { fuel: 10_000, ..Budget::default() };
        let err = inst.invoke("main", &[], &mut (), &reg, budget).unwrap_err();
        assert_eq!(err, RuntimeError::OutOfFuel);
        assert!(inst.last_stats().fuel_used >= 10_000);
    }

    #[test]
    fn memory_budget_stops_hoarders() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = compile_program(
            "fn main() { var s = \"x\"; while (true) { s = s + s; } return 0; }",
            &reg,
        )
        .unwrap();
        let mut inst = Instance::new(Arc::new(program));
        let budget = Budget { memory: 100_000, ..Budget::default() };
        let err = inst.invoke("main", &[], &mut (), &reg, budget).unwrap_err();
        assert_eq!(err, RuntimeError::OutOfMemory);
    }

    #[test]
    fn call_depth_budget_stops_runaway_recursion() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program =
            compile_program("fn f(n) { return f(n + 1); } fn main() { return f(0); }", &reg)
                .unwrap();
        let mut inst = Instance::new(Arc::new(program));
        let err = inst.invoke("main", &[], &mut (), &reg, Budget::default()).unwrap_err();
        assert_eq!(err, RuntimeError::StackOverflow);
        assert!(inst.last_stats().max_depth <= Budget::default().call_depth);
    }

    #[test]
    fn bad_entry_points() {
        assert!(matches!(
            run("fn main() { return 0; }", "absent", &[]).unwrap_err(),
            RuntimeError::NoSuchFunction { .. }
        ));
        assert!(matches!(
            run("fn main(a) { return a; }", "main", &[]).unwrap_err(),
            RuntimeError::BadInvocation { expected: 1, found: 0 }
        ));
    }

    #[test]
    fn host_stdlib_integration() {
        assert_eq!(
            run_main("fn main() { var parts = split(\"10.0.0.1\", \".\"); return len(parts); }")
                .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            run_main("fn main() { return join(sort([3,1,2]), \"<\"); }").unwrap(),
            Value::from("1<2<3")
        );
    }

    #[test]
    fn host_context_side_effects() {
        struct Ctx {
            log: Vec<String>,
        }
        let mut reg: HostRegistry<Ctx> = HostRegistry::with_stdlib();
        reg.register("log", 1, |ctx, args| {
            ctx.log.push(args[0].to_string());
            Ok(Value::Nil)
        });
        let program = compile_program(
            "fn main() { for (i in range(3)) { log(\"tick \" + str(i)); } return 0; }",
            &reg,
        )
        .unwrap();
        let mut ctx = Ctx { log: Vec::new() };
        let mut inst = Instance::new(Arc::new(program));
        inst.invoke("main", &[], &mut ctx, &reg, Budget::default()).unwrap();
        assert_eq!(ctx.log, vec!["tick 0", "tick 1", "tick 2"]);
        assert!(inst.last_stats().host_calls >= 6); // range + str*3 + log*3
    }

    #[test]
    fn missing_host_binding_detected_at_invoke() {
        let mut reg_full: HostRegistry<()> = HostRegistry::with_stdlib();
        reg_full.register("extra", 0, |_, _| Ok(Value::Int(1)));
        let program = compile_program("fn main() { return extra(); }", &reg_full).unwrap();
        let reg_bare: HostRegistry<()> = HostRegistry::with_stdlib();
        let mut inst = Instance::new(Arc::new(program));
        let err = inst.invoke("main", &[], &mut (), &reg_bare, Budget::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::Host { name, .. } if name == "extra"));
    }

    #[test]
    fn stats_are_recorded() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = compile_program(
            "fn main() { var t = 0; for (i in range(100)) { t = t + i; } return t; }",
            &reg,
        )
        .unwrap();
        let mut inst = Instance::new(Arc::new(program));
        let v = inst.invoke("main", &[], &mut (), &reg, Budget::default()).unwrap();
        assert_eq!(v, Value::Int(4950));
        let stats = inst.last_stats();
        assert!(stats.fuel_used > 100);
        assert!(stats.memory_used > 0);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn deep_but_legal_recursion_succeeds() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = compile_program(
            "fn down(n) { if (n == 0) { return 0; } return down(n - 1); } \
             fn main() { return down(50); }",
            &reg,
        )
        .unwrap();
        let mut inst = Instance::new(Arc::new(program));
        let v = inst.invoke("main", &[], &mut (), &reg, Budget::default()).unwrap();
        assert_eq!(v, Value::Int(0));
        // main + down(50), down(49), ..., down(0) = 52 frames.
        assert_eq!(inst.last_stats().max_depth, 52);
    }
}
