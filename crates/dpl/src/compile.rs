//! AST → bytecode compiler.
//!
//! Assumes the program already passed [`check`](crate::check): name
//! resolution failures here are internal errors, not user errors. The
//! design choice of compiling to bytecode (rather than walking the tree)
//! mirrors the paper's Translator, which compiles delegated programs on
//! receipt; the `dpi_compiled_vs_interpreted` ablation bench quantifies
//! the payoff.

use crate::ast::*;
use crate::bytecode::{Function, Op, Program};
use crate::host::HostRegistry;
use crate::value::ops;
use crate::Value;
use std::collections::HashMap;

/// Compiles a checked AST against the host registry.
///
/// # Panics
///
/// Panics if the AST references unknown names (i.e. was not checked).
pub fn compile<C>(ast: &ProgramAst, registry: &HostRegistry<C>) -> Program {
    let mut fn_by_name = HashMap::new();
    for (i, f) in ast.functions.iter().enumerate() {
        fn_by_name.insert(f.name.clone(), i);
    }
    let global_slots: HashMap<&str, u16> =
        ast.globals.iter().enumerate().map(|(i, g)| (g.name.as_str(), i as u16)).collect();

    let registry_has = |name: &str| registry.signature(name).is_some();
    let mut shared = Shared {
        consts: Vec::new(),
        host_names: Vec::new(),
        host_slots: HashMap::new(),
        fn_by_name: &fn_by_name,
        global_slots: &global_slots,
        registry_has: &registry_has,
    };

    let mut functions = Vec::with_capacity(ast.functions.len() + 1);
    for f in &ast.functions {
        functions.push(compile_fn(&mut shared, f));
    }

    // Synthetic #init: evaluate global initializers in order.
    let mut init = FnCompiler::new(&mut shared, &[]);
    for (i, g) in ast.globals.iter().enumerate() {
        init.expr(&g.init);
        init.emit(Op::StoreGlobal(i as u16));
    }
    init.emit(Op::Nil);
    init.emit(Op::Return);
    let init_fn = functions.len();
    let (init_code, init_slots) = (init.code, init.max_slots);
    functions.push(Function::new("#init".to_string(), 0, init_slots, init_code));

    let Shared { consts, host_names, .. } = shared;
    Program {
        consts,
        functions,
        fn_by_name,
        global_names: ast.globals.iter().map(|g| g.name.clone()).collect(),
        host_names,
        init_fn,
    }
}

struct Shared<'a> {
    consts: Vec<Value>,
    host_names: Vec<String>,
    host_slots: HashMap<String, u16>,
    fn_by_name: &'a HashMap<String, usize>,
    global_slots: &'a HashMap<&'a str, u16>,
    registry_has: &'a dyn Fn(&str) -> bool,
}

impl Shared<'_> {
    fn const_slot(&mut self, v: Value) -> u16 {
        if let Some(i) =
            self.consts.iter().position(|c| ops::eq(c, &v) && c.type_name() == v.type_name())
        {
            return i as u16;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn host_slot(&mut self, name: &str) -> u16 {
        if let Some(&i) = self.host_slots.get(name) {
            return i;
        }
        assert!((self.registry_has)(name), "unchecked host function `{name}`");
        let i = self.host_names.len() as u16;
        self.host_names.push(name.to_string());
        self.host_slots.insert(name.to_string(), i);
        i
    }
}

fn compile_fn(shared: &mut Shared<'_>, f: &FnDef) -> Function {
    let mut c = FnCompiler::new(shared, &f.params);
    c.block(&f.body);
    // Implicit `return nil;`.
    c.emit(Op::Nil);
    c.emit(Op::Return);
    Function::new(f.name.clone(), f.params.len(), c.max_slots, c.code)
}

struct LoopCtx {
    /// Jump sites to patch to the loop's continue target.
    continue_sites: Vec<usize>,
    /// Jump sites to patch to just past the loop.
    break_sites: Vec<usize>,
}

struct FnCompiler<'a, 'b> {
    shared: &'a mut Shared<'b>,
    code: Vec<Op>,
    scopes: Vec<HashMap<String, u16>>,
    next_slot: u16,
    max_slots: usize,
    loops: Vec<LoopCtx>,
}

impl<'a, 'b> FnCompiler<'a, 'b> {
    fn new(shared: &'a mut Shared<'b>, params: &[String]) -> FnCompiler<'a, 'b> {
        let mut scope = HashMap::new();
        for (i, p) in params.iter().enumerate() {
            scope.insert(p.clone(), i as u16);
        }
        let next_slot = params.len() as u16;
        FnCompiler {
            shared,
            code: Vec::new(),
            scopes: vec![scope],
            next_slot,
            max_slots: params.len(),
            loops: Vec::new(),
        }
    }

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, site: usize, target: u32) {
        match &mut self.code[site] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::AndJump(t) | Op::OrJump(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn alloc_slot(&mut self) -> u16 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slots = self.max_slots.max(self.next_slot as usize);
        slot
    }

    fn declare(&mut self, name: &str) -> u16 {
        let slot = self.alloc_slot();
        self.scopes.last_mut().expect("scope").insert(name.to_string(), slot);
        slot
    }

    fn lookup_local(&self, name: &str) -> Option<u16> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope");
        // Slots are reusable once their scope ends.
        self.next_slot -= scope.len() as u16;
    }

    fn block(&mut self, stmts: &[Stmt]) {
        self.push_scope();
        for s in stmts {
            self.stmt(s);
        }
        self.pop_scope();
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::VarDecl { name, init } => {
                self.expr(init);
                let slot = self.declare(name);
                self.emit(Op::StoreLocal(slot));
            }
            StmtKind::Assign { name, value } => {
                self.expr(value);
                match self.lookup_local(name) {
                    Some(slot) => self.emit(Op::StoreLocal(slot)),
                    None => {
                        let slot = self.shared.global_slots[name.as_str()];
                        self.emit(Op::StoreGlobal(slot))
                    }
                };
            }
            StmtKind::IndexAssign { base, index, value } => {
                // Flatten the place chain: root variable + index path.
                let mut indices = Vec::new();
                let mut cur = base;
                loop {
                    match &cur.kind {
                        ExprKind::Index { base: b, index: i } => {
                            indices.push(i.as_ref());
                            cur = b;
                        }
                        ExprKind::Var(_) => break,
                        other => panic!("unchecked index-assign base {other:?}"),
                    }
                }
                indices.reverse();
                indices.push(index);
                let root = match &cur.kind {
                    ExprKind::Var(name) => name,
                    _ => unreachable!(),
                };
                for idx in &indices {
                    self.expr(idx);
                }
                self.expr(value);
                let depth = u8::try_from(indices.len()).expect("index chain too deep");
                match self.lookup_local(root) {
                    Some(slot) => self.emit(Op::IndexSetLocal { slot, depth }),
                    None => {
                        let slot = self.shared.global_slots[root.as_str()];
                        self.emit(Op::IndexSetGlobal { slot, depth })
                    }
                };
            }
            StmtKind::If { cond, then_block, else_block } => {
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse(0));
                self.block(then_block);
                if else_block.is_empty() {
                    let end = self.here();
                    self.patch(jf, end);
                } else {
                    let jend = self.emit(Op::Jump(0));
                    let else_start = self.here();
                    self.patch(jf, else_start);
                    self.block(else_block);
                    let end = self.here();
                    self.patch(jend, end);
                }
            }
            StmtKind::While { cond, body } => {
                let start = self.here();
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse(0));
                self.loops.push(LoopCtx { continue_sites: Vec::new(), break_sites: Vec::new() });
                self.block(body);
                self.emit(Op::Jump(start));
                let end = self.here();
                self.patch(jf, end);
                let ctx = self.loops.pop().expect("loop");
                for site in ctx.continue_sites {
                    self.patch(site, start);
                }
                for site in ctx.break_sites {
                    self.patch(site, end);
                }
            }
            StmtKind::ForIn { name, iterable, body } => {
                self.expr(iterable);
                self.emit(Op::IterList);
                self.push_scope();
                let it_slot = self.alloc_slot();
                let idx_slot = self.alloc_slot();
                self.emit(Op::StoreLocal(it_slot));
                let zero = self.shared.const_slot(Value::Int(0));
                self.emit(Op::Const(zero));
                self.emit(Op::StoreLocal(idx_slot));
                let start = self.here();
                self.emit(Op::LoadLocal(idx_slot));
                self.emit(Op::LoadLocal(it_slot));
                self.emit(Op::Len);
                self.emit(Op::Lt);
                let jf = self.emit(Op::JumpIfFalse(0));
                let var_slot = self.declare(name);
                self.emit(Op::LoadLocal(it_slot));
                self.emit(Op::LoadLocal(idx_slot));
                self.emit(Op::Index);
                self.emit(Op::StoreLocal(var_slot));
                self.loops.push(LoopCtx { continue_sites: Vec::new(), break_sites: Vec::new() });
                for st in body {
                    self.stmt(st);
                }
                let ctx = self.loops.pop().expect("loop");
                let incr = self.here();
                self.emit(Op::LoadLocal(idx_slot));
                let one = self.shared.const_slot(Value::Int(1));
                self.emit(Op::Const(one));
                self.emit(Op::Add);
                self.emit(Op::StoreLocal(idx_slot));
                self.emit(Op::Jump(start));
                let end = self.here();
                self.patch(jf, end);
                for site in ctx.continue_sites {
                    self.patch(site, incr);
                }
                for site in ctx.break_sites {
                    self.patch(site, end);
                }
                // Loop variable scope also frees the two hidden slots.
                self.pop_scope();
                self.next_slot -= 2;
            }
            StmtKind::Return { value } => {
                match value {
                    Some(e) => self.expr(e),
                    None => {
                        self.emit(Op::Nil);
                    }
                }
                self.emit(Op::Return);
            }
            StmtKind::Break => {
                let site = self.emit(Op::Jump(0));
                self.loops.last_mut().expect("checked loop depth").break_sites.push(site);
            }
            StmtKind::Continue => {
                let site = self.emit(Op::Jump(0));
                self.loops.last_mut().expect("checked loop depth").continue_sites.push(site);
            }
            StmtKind::Expr(e) => {
                self.expr(e);
                self.emit(Op::Pop);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => {
                let slot = self.shared.const_slot(Value::Int(*v));
                self.emit(Op::Const(slot));
            }
            ExprKind::Float(v) => {
                let slot = self.shared.const_slot(Value::Float(*v));
                self.emit(Op::Const(slot));
            }
            ExprKind::Str(s) => {
                let slot = self.shared.const_slot(Value::Str(s.clone()));
                self.emit(Op::Const(slot));
            }
            ExprKind::Bool(b) => {
                self.emit(Op::Bool(*b));
            }
            ExprKind::Nil => {
                self.emit(Op::Nil);
            }
            ExprKind::Var(name) => {
                match self.lookup_local(name) {
                    Some(slot) => self.emit(Op::LoadLocal(slot)),
                    None => {
                        let slot = self.shared.global_slots[name.as_str()];
                        self.emit(Op::LoadGlobal(slot))
                    }
                };
            }
            ExprKind::List(items) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Op::MakeList(items.len() as u16));
            }
            ExprKind::Map(pairs) => {
                for (k, v) in pairs {
                    self.expr(k);
                    self.expr(v);
                }
                self.emit(Op::MakeMap(pairs.len() as u16));
            }
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.expr(index);
                self.emit(Op::Index);
            }
            ExprKind::Unary { op, operand } => {
                self.expr(operand);
                self.emit(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                });
            }
            ExprKind::Binary { op: BinOp::And, lhs, rhs } => {
                self.expr(lhs);
                let site = self.emit(Op::AndJump(0));
                self.expr(rhs);
                let end = self.here();
                self.patch(site, end);
            }
            ExprKind::Binary { op: BinOp::Or, lhs, rhs } => {
                self.expr(lhs);
                let site = self.emit(Op::OrJump(0));
                self.expr(rhs);
                let end = self.here();
                self.patch(site, end);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
                self.emit(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                });
            }
            ExprKind::Call { name, args } => {
                for a in args {
                    self.expr(a);
                }
                let argc = u8::try_from(args.len()).expect("too many arguments");
                if let Some(&func) = self.shared.fn_by_name.get(name) {
                    self.emit(Op::Call { func: func as u16, argc });
                } else {
                    let host = self.shared.host_slot(name);
                    self.emit(Op::CallHost { host, argc });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Program {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let ast = parse(src).unwrap();
        crate::check::check(&ast, &reg.signatures()).unwrap();
        compile(&ast, &reg)
    }

    #[test]
    fn program_metadata() {
        let p = compile_src("var g = 1;\nfn main(a) { return a + g; }");
        assert!(p.has_function("main"));
        assert!(!p.has_function("#init")); // synthetic, not addressable
        assert_eq!(p.global_names(), &["g".to_string()]);
        let infos = p.functions();
        assert_eq!(infos[0].name, "main");
        assert_eq!(infos[0].arity, 1);
        assert!(p.code_size() > 0);
        assert!(p.to_string().contains("function"));
    }

    #[test]
    fn host_bindings_are_collected_once() {
        let p = compile_src("fn f(x) { return len(x) + len(x); }");
        assert_eq!(p.host_bindings(), &["len".to_string()]);
    }

    #[test]
    fn constants_are_deduplicated() {
        let p = compile_src("fn f() { return 5 + 5 + 5; }");
        let fives = p.consts.iter().filter(|c| **c == Value::Int(5)).count();
        assert_eq!(fives, 1);
    }

    #[test]
    fn int_and_float_constants_are_distinct() {
        let p = compile_src("fn f() { return 1 + 1.0; }");
        assert!(p.consts.contains(&Value::Int(1)));
        assert!(p.consts.contains(&Value::Float(1.0)));
    }

    #[test]
    fn scope_exit_reuses_slots() {
        let p = compile_src(
            "fn f(c) { if (c) { var a = 1; var b = 2; b = a; } \
             if (c) { var d = 3; d = d; } return 0; }",
        );
        // a/b and d share slots: max is params(1) + 2.
        assert_eq!(p.functions[0].n_locals, 3);
    }

    #[test]
    fn jumps_are_patched_in_range() {
        let p = compile_src(
            "fn f(n) { var t = 0; while (n > 0) { if (n % 2 == 0) { n = n - 1; continue; } \
             t = t + n; n = n - 1; if (t > 100) { break; } } \
             for (x in [1,2,3]) { t = t + x; } return t; }",
        );
        for func in &p.functions {
            for op in &func.code {
                if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::AndJump(t) | Op::OrJump(t) = op {
                    assert!(
                        (*t as usize) <= func.code.len(),
                        "jump to {t} beyond {} in {}",
                        func.code.len(),
                        func.name
                    );
                    assert_ne!(*t, 0, "unpatched jump in {}", func.name);
                }
            }
        }
    }
}
