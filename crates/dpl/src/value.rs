use crate::RuntimeError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A DPL runtime value.
///
/// Values have *copy semantics* at the language level: assignment and
/// argument passing never alias. Containers are `Arc`-backed and cloned
/// copy-on-write, so loading a large table into a variable and indexing
/// it in a loop is O(1) per access, while any mutation of a shared
/// container copies it first ([`Arc::make_mut`]). This keeps delegated
/// programs free of aliasing bugs without making table scans quadratic.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Ordered list (shared, copy-on-write).
    List(Arc<Vec<Value>>),
    /// String-keyed map (ordered, deterministic iteration; shared,
    /// copy-on-write).
    Map(Arc<BTreeMap<String, Value>>),
    /// The absent value.
    #[default]
    Nil,
}

impl Value {
    /// Approximate size in abstract memory cells, used against the VM's
    /// allocation budget. Scalars cost 1; containers cost 1 plus contents;
    /// strings cost 1 per 8 bytes.
    pub fn cost(&self) -> u64 {
        match self {
            Value::Int(_) | Value::Float(_) | Value::Bool(_) | Value::Nil => 1,
            Value::Str(s) => 1 + (s.len() as u64) / 8,
            Value::List(items) => 1 + items.iter().map(Value::cost).sum::<u64>(),
            Value::Map(map) => {
                1 + map.iter().map(|(k, v)| 1 + (k.len() as u64) / 8 + v.cost()).sum::<u64>()
            }
        }
    }

    /// The memory newly allocated by cloning this value: strings copy
    /// their bytes, containers only bump an `Arc` reference count, and
    /// scalars are free. Used by the VM to charge loads accurately.
    pub fn clone_cost(&self) -> u64 {
        match self {
            Value::Str(s) => 1 + (s.len() as u64) / 8,
            _ => 1,
        }
    }

    /// The value's type name, as used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Map(_) => "map",
            Value::Nil => "nil",
        }
    }

    /// Interprets this value as a boolean condition.
    ///
    /// # Errors
    ///
    /// Only `Bool` may be used as a condition; anything else is a
    /// [`RuntimeError::TypeError`] (DPL has no truthiness coercion).
    pub fn as_condition(&self) -> Result<bool, RuntimeError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(RuntimeError::TypeError {
                message: format!("condition must be bool, got {}", other.type_name()),
            }),
        }
    }

    /// Integer view, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` both convert.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// List view, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Creates a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// Creates a map value.
    pub fn map(entries: BTreeMap<String, Value>) -> Value {
        Value::Map(Arc::new(entries))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::list(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Nil => write!(f, "nil"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match item {
                        Value::Str(s) => write!(f, "{s:?}")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "]")
            }
            Value::Map(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "{k:?}: {s:?}")?,
                        other => write!(f, "{k:?}: {other}")?,
                    }
                }
                write!(f, "}}")
            }
        }
    }
}

fn type_error(op: &str, a: &Value, b: &Value) -> RuntimeError {
    RuntimeError::TypeError {
        message: format!("cannot apply `{op}` to {} and {}", a.type_name(), b.type_name()),
    }
}

/// Binary arithmetic and comparison over values. These free functions are
/// shared by the VM and by host helpers.
pub(crate) mod ops {
    use super::*;

    pub fn add(a: Value, b: Value) -> Result<Value, RuntimeError> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(y))),
            (Value::Float(x), Value::Float(y)) => Ok(Value::Float(x + y)),
            (Value::Int(x), Value::Float(y)) => Ok(Value::Float(x as f64 + y)),
            (Value::Float(x), Value::Int(y)) => Ok(Value::Float(x + y as f64)),
            (Value::Str(mut x), Value::Str(y)) => {
                x.push_str(&y);
                Ok(Value::Str(x))
            }
            (Value::List(mut x), Value::List(y)) => {
                Arc::make_mut(&mut x).extend(y.iter().cloned());
                Ok(Value::List(x))
            }
            (a, b) => Err(type_error("+", &a, &b)),
        }
    }

    pub fn sub(a: Value, b: Value) -> Result<Value, RuntimeError> {
        numeric(a, b, "-", i64::wrapping_sub, |x, y| x - y)
    }

    pub fn mul(a: Value, b: Value) -> Result<Value, RuntimeError> {
        numeric(a, b, "*", i64::wrapping_mul, |x, y| x * y)
    }

    pub fn div(a: Value, b: Value) -> Result<Value, RuntimeError> {
        match (&a, &b) {
            (Value::Int(_), Value::Int(0)) => Err(RuntimeError::DivisionByZero),
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_div(*y))),
            _ => {
                let (x, y) = both_f64(&a, &b).ok_or_else(|| type_error("/", &a, &b))?;
                if y == 0.0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Ok(Value::Float(x / y))
            }
        }
    }

    pub fn rem(a: Value, b: Value) -> Result<Value, RuntimeError> {
        match (&a, &b) {
            (Value::Int(_), Value::Int(0)) => Err(RuntimeError::DivisionByZero),
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_rem(*y))),
            _ => {
                let (x, y) = both_f64(&a, &b).ok_or_else(|| type_error("%", &a, &b))?;
                if y == 0.0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Ok(Value::Float(x % y))
            }
        }
    }

    fn numeric(
        a: Value,
        b: Value,
        op: &str,
        int_op: fn(i64, i64) -> i64,
        float_op: fn(f64, f64) -> f64,
    ) -> Result<Value, RuntimeError> {
        match (&a, &b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(int_op(*x, *y))),
            _ => match both_f64(&a, &b) {
                Some((x, y)) => Ok(Value::Float(float_op(x, y))),
                None => Err(type_error(op, &a, &b)),
            },
        }
    }

    fn both_f64(a: &Value, b: &Value) -> Option<(f64, f64)> {
        match (a, b) {
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                Some((a.as_f64().unwrap(), b.as_f64().unwrap()))
            }
            _ => None,
        }
    }

    pub fn neg(a: Value) -> Result<Value, RuntimeError> {
        match a {
            Value::Int(x) => Ok(Value::Int(x.wrapping_neg())),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(RuntimeError::TypeError {
                message: format!("cannot negate {}", other.type_name()),
            }),
        }
    }

    pub fn not(a: Value) -> Result<Value, RuntimeError> {
        match a {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(RuntimeError::TypeError {
                message: format!("cannot apply `!` to {}", other.type_name()),
            }),
        }
    }

    /// Structural equality; numbers compare across Int/Float.
    pub fn eq(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => {
                (*x as f64) == *y
            }
            _ => a == b,
        }
    }

    /// Ordering for `< <= > >=`: numbers or strings.
    pub fn cmp(a: &Value, b: &Value) -> Result<std::cmp::Ordering, RuntimeError> {
        match (a, b) {
            (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).ok_or_else(|| RuntimeError::TypeError {
                    message: "NaN is not ordered".to_string(),
                }),
                _ => Err(type_error("<", a, b)),
            },
        }
    }

    /// `base[index]` for lists (int index) and maps (string key).
    /// String indexing returns the 1-char substring.
    pub fn index(base: &Value, index: &Value) -> Result<Value, RuntimeError> {
        match (base, index) {
            (Value::List(items), Value::Int(i)) => {
                let idx = usize::try_from(*i).map_err(|_| RuntimeError::BadIndex {
                    message: format!("negative list index {i}"),
                })?;
                items.get(idx).cloned().ok_or_else(|| RuntimeError::BadIndex {
                    message: format!("list index {i} out of bounds (len {})", items.len()),
                })
            }
            (Value::Map(map), Value::Str(k)) => Ok(map.get(k).cloned().unwrap_or(Value::Nil)),
            (Value::Str(s), Value::Int(i)) => {
                let idx = usize::try_from(*i).map_err(|_| RuntimeError::BadIndex {
                    message: format!("negative string index {i}"),
                })?;
                s.chars().nth(idx).map(|c| Value::Str(c.to_string())).ok_or_else(|| {
                    RuntimeError::BadIndex { message: format!("string index {i} out of bounds") }
                })
            }
            (b, i) => Err(RuntimeError::TypeError {
                message: format!("cannot index {} with {}", b.type_name(), i.type_name()),
            }),
        }
    }

    /// `base[index] = value` in place (copy-on-write if shared).
    pub fn index_set(base: &mut Value, index: Value, value: Value) -> Result<(), RuntimeError> {
        match (base, index) {
            (Value::List(items), Value::Int(i)) => {
                let idx = usize::try_from(i).map_err(|_| RuntimeError::BadIndex {
                    message: format!("negative list index {i}"),
                })?;
                let len = items.len();
                let slot = Arc::make_mut(items).get_mut(idx).ok_or(RuntimeError::BadIndex {
                    message: format!("list index {i} out of bounds (len {len})"),
                })?;
                *slot = value;
                Ok(())
            }
            (Value::Map(map), Value::Str(k)) => {
                Arc::make_mut(map).insert(k, value);
                Ok(())
            }
            (b, i) => Err(RuntimeError::TypeError {
                message: format!("cannot index-assign {} with {}", b.type_name(), i.type_name()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ops;
    use super::*;

    #[test]
    fn arithmetic_type_rules() {
        assert_eq!(ops::add(Value::Int(2), Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(ops::add(Value::Int(2), Value::Float(0.5)).unwrap(), Value::Float(2.5));
        assert_eq!(ops::add(Value::from("a"), Value::from("b")).unwrap(), Value::from("ab"));
        assert_eq!(
            ops::add(Value::from(vec![1i64]), Value::from(vec![2i64])).unwrap(),
            Value::from(vec![1i64, 2])
        );
        assert!(ops::add(Value::from("a"), Value::Int(1)).is_err());
        assert!(ops::sub(Value::Bool(true), Value::Int(1)).is_err());
    }

    #[test]
    fn division_guards() {
        assert_eq!(ops::div(Value::Int(7), Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(ops::div(Value::Float(7.0), Value::Int(2)).unwrap(), Value::Float(3.5));
        assert_eq!(
            ops::div(Value::Int(1), Value::Int(0)).unwrap_err(),
            RuntimeError::DivisionByZero
        );
        assert_eq!(
            ops::rem(Value::Int(1), Value::Int(0)).unwrap_err(),
            RuntimeError::DivisionByZero
        );
        assert_eq!(ops::rem(Value::Int(7), Value::Int(3)).unwrap(), Value::Int(1));
    }

    #[test]
    fn integer_overflow_wraps_not_panics() {
        assert_eq!(ops::add(Value::Int(i64::MAX), Value::Int(1)).unwrap(), Value::Int(i64::MIN));
        assert_eq!(ops::mul(Value::Int(i64::MAX), Value::Int(2)).unwrap(), Value::Int(-2));
        assert_eq!(ops::neg(Value::Int(i64::MIN)).unwrap(), Value::Int(i64::MIN));
    }

    #[test]
    fn equality_across_numeric_types() {
        assert!(ops::eq(&Value::Int(2), &Value::Float(2.0)));
        assert!(!ops::eq(&Value::Int(2), &Value::Float(2.5)));
        assert!(ops::eq(&Value::from("x"), &Value::from("x")));
        assert!(!ops::eq(&Value::Nil, &Value::Int(0)));
    }

    #[test]
    fn ordering_rules() {
        use std::cmp::Ordering;
        assert_eq!(ops::cmp(&Value::Int(1), &Value::Float(1.5)).unwrap(), Ordering::Less);
        assert_eq!(ops::cmp(&Value::from("b"), &Value::from("a")).unwrap(), Ordering::Greater);
        assert!(ops::cmp(&Value::from("a"), &Value::Int(1)).is_err());
        assert!(ops::cmp(&Value::Float(f64::NAN), &Value::Float(1.0)).is_err());
    }

    #[test]
    fn indexing_rules() {
        let list = Value::from(vec![10i64, 20]);
        assert_eq!(ops::index(&list, &Value::Int(1)).unwrap(), Value::Int(20));
        assert!(matches!(ops::index(&list, &Value::Int(5)), Err(RuntimeError::BadIndex { .. })));
        assert!(matches!(ops::index(&list, &Value::Int(-1)), Err(RuntimeError::BadIndex { .. })));
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Int(9));
        let map = Value::map(m);
        assert_eq!(ops::index(&map, &Value::from("k")).unwrap(), Value::Int(9));
        assert_eq!(ops::index(&map, &Value::from("absent")).unwrap(), Value::Nil);
        let s = Value::from("héllo");
        assert_eq!(ops::index(&s, &Value::Int(1)).unwrap(), Value::from("é"));
    }

    #[test]
    fn index_set_rules() {
        let mut list = Value::from(vec![1i64, 2]);
        ops::index_set(&mut list, Value::Int(0), Value::Int(9)).unwrap();
        assert_eq!(list, Value::from(vec![9i64, 2]));
        assert!(ops::index_set(&mut list, Value::Int(9), Value::Nil).is_err());
        let mut map = Value::map(BTreeMap::new());
        ops::index_set(&mut map, Value::from("a"), Value::Int(1)).unwrap();
        assert_eq!(ops::index(&map, &Value::from("a")).unwrap(), Value::Int(1));
        let mut n = Value::Int(3);
        assert!(ops::index_set(&mut n, Value::Int(0), Value::Nil).is_err());
    }

    #[test]
    fn cost_model() {
        assert_eq!(Value::Int(1).cost(), 1);
        assert_eq!(Value::from("12345678").cost(), 2);
        assert_eq!(Value::from(vec![1i64, 2, 3]).cost(), 4);
        let mut m = BTreeMap::new();
        m.insert("key".to_string(), Value::Int(1));
        assert_eq!(Value::map(m).cost(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::list(vec![Value::from("a")]).to_string(), "[\"a\"]");
        assert_eq!(Value::Nil.to_string(), "nil");
    }

    #[test]
    fn conditions_must_be_bool() {
        assert!(Value::Bool(true).as_condition().unwrap());
        assert!(Value::Int(1).as_condition().is_err());
        assert!(Value::Nil.as_condition().is_err());
    }
}
