//! A sampling profiler for delegated-program instances.
//!
//! The VM already charges fuel once per basic-block *entry* (function
//! entry, branch target, fall-through, call entry, call/return resume —
//! see [`compute_charge_table`](crate::bytecode::compute_charge_table)).
//! A [`Profile`] piggybacks on exactly those sites: every block entry
//! decrements a countdown, and every `sample_every`-th entry records one
//! **sample** — the current call stack (function indices), the entered
//! block's leader ip, and the fuel and wall-time accrued since the
//! previous sample. Attribution is the classic sampling approximation:
//! the whole delta is credited to the block being entered, which
//! converges on the true distribution as samples accumulate.
//!
//! Sampling keeps the profiler off the dispatch hot path: the VM pays
//! one plain countdown decrement per block whether profiling is on or
//! off (off counts down from a `u32::MAX` sentinel), with the clock
//! read and stack walk confined to the sampled 1-in-N entries (the E12
//! bench gates the total at <3% of pipelined throughput).
//!
//! Aggregated samples export two ways: [`Profile::rows`] for tables
//! (the `mbdProfile` OCP subtree) and [`Profile::folded`] for
//! `flamegraph.pl`-style folded stacks (`main;worker@12 340`).

use crate::bytecode::Program;
use std::collections::BTreeMap;
use std::time::Instant;

/// Aggregate for one (call stack, basic block) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BlockStat {
    samples: u64,
    fuel: u64,
    wall_ns: u64,
}

/// One exported profile row: a resolved call stack, the sampled block's
/// leader ip, and what was attributed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    /// Function names, outermost first; the last entry owns `leader_ip`.
    pub stack: Vec<String>,
    /// Instruction index of the sampled basic block's first op.
    pub leader_ip: u32,
    /// Samples that landed on this (stack, block).
    pub samples: u64,
    /// Fuel attributed to this (stack, block).
    pub fuel: u64,
    /// Wall time attributed to this (stack, block).
    pub wall_ns: u64,
}

impl BlockProfile {
    /// This row as one folded-stack line:
    /// `outer;inner@LEADER_IP SAMPLES` (flamegraph.pl input format,
    /// with samples as the weight).
    pub fn folded_line(&self) -> String {
        format!("{}@{} {}", self.stack.join(";"), self.leader_ip, self.samples)
    }
}

/// Sampling state for one [`Instance`](crate::Instance).
#[derive(Debug, Clone)]
pub struct Profile {
    sample_every: u32,
    countdown: u32,
    total_samples: u64,
    /// Fuel counter value at the previous sample (per invocation).
    last_fuel: u64,
    /// Wall clock at the previous sample (cleared between invocations
    /// so idle time between polls is never attributed to code).
    last_instant: Option<Instant>,
    /// (stack of function indices, leader ip) → aggregate.
    blocks: BTreeMap<(Vec<u32>, u32), BlockStat>,
}

impl Profile {
    /// A profiler sampling one block entry in `sample_every` (clamped
    /// to at least 1 = every block).
    pub fn new(sample_every: u32) -> Profile {
        let sample_every = sample_every.max(1);
        Profile {
            sample_every,
            countdown: sample_every,
            total_samples: 0,
            last_fuel: 0,
            last_instant: None,
            blocks: BTreeMap::new(),
        }
    }

    /// The configured 1-in-N rate.
    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// Total samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.total_samples
    }

    /// Resets the per-invocation deltas (the fuel counter restarts at
    /// zero each invocation, and inter-invocation idle time must not be
    /// charged to the first sampled block).
    pub(crate) fn begin_invocation(&mut self) {
        self.last_fuel = 0;
        self.last_instant = None;
    }

    /// Blocks left until the next sample. The VM copies this into a
    /// plain field for the dispatch loop (one decrement per block) and
    /// writes it back via [`Profile::set_countdown`] when the
    /// invocation ends, so the 1-in-N phase spans invocations.
    pub(crate) fn countdown(&self) -> u32 {
        self.countdown
    }

    /// Restores the countdown after a VM run (clamped to a sane
    /// 1..=`sample_every` so a stale or foreign value cannot stall
    /// sampling).
    pub(crate) fn set_countdown(&mut self, countdown: u32) {
        self.countdown = countdown.clamp(1, self.sample_every);
    }

    /// Records one sample: `stack` is the live call stack as function
    /// indices (outermost first, current function last), `leader_ip`
    /// the entered block's first instruction, `fuel_used` the VM's
    /// running fuel counter.
    pub(crate) fn record(&mut self, stack: Vec<u32>, leader_ip: u32, fuel_used: u64) {
        let now = Instant::now();
        let wall_ns = match self.last_instant {
            Some(prev) => u64::try_from(now.duration_since(prev).as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        };
        let fuel = fuel_used.saturating_sub(self.last_fuel);
        self.last_instant = Some(now);
        self.last_fuel = fuel_used;
        self.total_samples += 1;
        let stat = self.blocks.entry((stack, leader_ip)).or_default();
        stat.samples += 1;
        stat.fuel += fuel;
        stat.wall_ns += wall_ns;
    }

    /// The aggregated profile with stacks resolved to function names
    /// against `program`, hottest (most samples) first.
    pub fn rows(&self, program: &Program) -> Vec<BlockProfile> {
        let name = |i: &u32| {
            program
                .functions
                .get(*i as usize)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| format!("#fn{i}"))
        };
        let mut rows: Vec<BlockProfile> = self
            .blocks
            .iter()
            .map(|((stack, leader_ip), stat)| BlockProfile {
                stack: stack.iter().map(name).collect(),
                leader_ip: *leader_ip,
                samples: stat.samples,
                fuel: stat.fuel,
                wall_ns: stat.wall_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.leader_ip.cmp(&b.leader_ip)));
        rows
    }

    /// The profile as folded-stack lines (hottest first), ready for
    /// flamegraph tooling.
    pub fn folded(&self, program: &Program) -> Vec<String> {
        self.rows(program).iter().map(BlockProfile::folded_line).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile_program, Budget, HostRegistry, Instance, Value};
    use std::sync::Arc;

    fn profiled_instance(src: &str, sample_every: u32) -> (Instance, HostRegistry<()>) {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = compile_program(src, &reg).expect("compiles");
        let mut inst = Instance::new(Arc::new(program));
        inst.enable_profiling(sample_every);
        (inst, reg)
    }

    #[test]
    fn a_looping_dp_attributes_most_samples_to_the_loop_blocks() {
        let src = "fn main(n) { var i = 0; var t = 0; \
                   while (i < n) { i = i + 1; t = t + i; } return t; }";
        let (mut inst, reg) = profiled_instance(src, 1);
        let v =
            inst.invoke("main", &[Value::Int(5_000)], &mut (), &reg, Budget::default()).unwrap();
        assert_eq!(v, Value::Int(12_502_500));
        let rows = inst.profile_rows();
        let total: u64 = rows.iter().map(|r| r.samples).sum();
        assert!(total > 5_000, "every block entry sampled at 1-in-1");
        // The loop alternates between its condition and body blocks;
        // together they dominate the one-shot entry/exit blocks.
        let loop_samples: u64 = rows.iter().take(2).map(|r| r.samples).sum();
        assert!(
            loop_samples * 10 >= total * 8,
            "loop blocks hold {loop_samples}/{total} samples, want >= 80%"
        );
        for r in rows.iter().take(2) {
            assert_eq!(r.stack, vec!["main".to_string()]);
        }
    }

    #[test]
    fn sampling_thins_by_the_configured_rate() {
        let src = "fn main(n) { var i = 0; while (i < n) { i = i + 1; } return i; }";
        let (mut dense, reg) = profiled_instance(src, 1);
        dense.invoke("main", &[Value::Int(1_000)], &mut (), &reg, Budget::default()).unwrap();
        let (mut sparse, reg2) = profiled_instance(src, 16);
        sparse.invoke("main", &[Value::Int(1_000)], &mut (), &reg2, Budget::default()).unwrap();
        let d = dense.profile_samples();
        let s = sparse.profile_samples();
        assert!(d >= 2_000, "dense saw {d}");
        assert!(s * 8 <= d, "1-in-16 sampling should record far fewer ({s} vs {d})");
        assert!(s > 0, "but still something");
    }

    #[test]
    fn sampled_fuel_accounts_for_the_whole_run() {
        let src = "fn main(n) { var i = 0; while (i < n) { i = i + 1; } return i; }";
        let (mut inst, reg) = profiled_instance(src, 1);
        inst.invoke("main", &[Value::Int(500)], &mut (), &reg, Budget::default()).unwrap();
        let rows = inst.profile_rows();
        let fuel: u64 = rows.iter().map(|r| r.fuel).sum();
        let used = inst.last_stats().fuel_used;
        // At 1-in-1 every charged block is sampled, so attributed fuel
        // equals the meter.
        assert_eq!(fuel, used);
    }

    #[test]
    fn stacks_resolve_through_calls() {
        let src = "fn leaf(n) { var i = 0; while (i < n) { i = i + 1; } return i; } \
                   fn main() { return leaf(2000); }";
        let (mut inst, reg) = profiled_instance(src, 1);
        inst.invoke("main", &[], &mut (), &reg, Budget::default()).unwrap();
        let folded = inst.profile_folded();
        assert!(!folded.is_empty());
        let hot = &folded[0];
        assert!(hot.starts_with("main;leaf@"), "hottest stack is the loop in leaf: {hot}");
        let weight: u64 = hot.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(weight >= 1_000);
    }

    #[test]
    fn profiling_disabled_records_nothing() {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = compile_program("fn main() { return 1; }", &reg).unwrap();
        let mut inst = Instance::new(Arc::new(program));
        inst.invoke("main", &[], &mut (), &reg, Budget::default()).unwrap();
        assert_eq!(inst.profile_samples(), 0);
        assert!(inst.profile_rows().is_empty());
        assert!(!inst.profiling_enabled());
    }

    #[test]
    fn idle_time_between_invocations_is_not_attributed() {
        let src = "fn main() { var i = 0; while (i < 50) { i = i + 1; } return i; }";
        let (mut inst, reg) = profiled_instance(src, 1);
        inst.invoke("main", &[], &mut (), &reg, Budget::default()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        inst.invoke("main", &[], &mut (), &reg, Budget::default()).unwrap();
        let wall: u64 = inst.profile_rows().iter().map(|r| r.wall_ns).sum();
        assert!(wall < 10_000_000, "20 ms of idle must not appear in the profile (saw {wall} ns)");
    }
}
