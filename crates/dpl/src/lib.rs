//! DPL — the Delegated Program Language.
//!
//! The MbD prototype delegated agents written in a *restricted subset of
//! ANSI C*: the server-side **Translator** compiled each delegated program
//! (dp), rejected programs that violated binding rules ("this subset
//! language restricts dps on their ability to bind to external functions —
//! the runtime maintains a predefined set of allowed functions"), and the
//! runtime executed instances (dpis) under resource control. DPL plays the
//! same role here: a small imperative language with
//!
//! - a lexer, recursive-descent [`parser`], and AST;
//! - a static [`checker`](check) enforcing the paper's translator rules:
//!   every called function must be a program function or one of the host
//!   functions the receiving server registered, with the right arity;
//!   undefined variables and duplicate definitions are rejected;
//! - a bytecode [`compiler`](compile) and a stack VM ([`Instance`]) with hard
//!   *instruction*, *memory*, and *call-depth* budgets, so a delegated
//!   agent cannot monopolize its elastic process;
//! - a [`HostRegistry`] through which the embedding server exposes its
//!   service functions (MIB access, messaging, timers) to agents.
//!
//! Program state (top-level `var`s) persists across invocations of an
//! [`Instance`], which is what lets a dpi accumulate observations between
//! management polls.
//!
//! # Examples
//!
//! ```
//! use dpl::{compile_program, HostRegistry, Instance, Budget, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry: HostRegistry<()> = HostRegistry::with_stdlib();
//! let program = compile_program(
//!     r#"
//!     var total = 0;
//!     fn add(x) { total = total + x; return total; }
//!     "#,
//!     &registry,
//! )?;
//! let mut dpi = Instance::new(std::sync::Arc::new(program));
//! dpi.invoke("add", &[Value::Int(2)], &mut (), &registry, Budget::default())?;
//! let v = dpi.invoke("add", &[Value::Int(3)], &mut (), &registry, Budget::default())?;
//! assert_eq!(v, Value::Int(5)); // state persisted across invocations
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod compile;
pub mod host;
pub mod interp;
pub mod parser;

mod ast;
mod bytecode;
mod error;
mod lexer;
mod profile;
mod value;
mod vm;

pub use bytecode::{FunctionInfo, Program};
pub use error::{CheckError, DplError, LexError, ParseError, RuntimeError};
pub use host::{HostRegistry, Signature};
pub use profile::{BlockProfile, Profile};
pub use value::Value;
pub use vm::{Budget, Entry, Instance, VmStats};

/// Front-to-back translation: parse, check against `registry`, compile.
///
/// This is the entry point the elastic process's Translator uses; a
/// rejected program never reaches the runtime.
///
/// # Errors
///
/// Returns [`DplError`] for lexical, syntactic, or binding-rule errors.
///
/// # Examples
///
/// ```
/// use dpl::{compile_program, HostRegistry};
/// let reg: HostRegistry<()> = HostRegistry::with_stdlib();
/// assert!(compile_program("fn main() { return no_such_fn(); }", &reg).is_err());
/// ```
pub fn compile_program<C>(source: &str, registry: &HostRegistry<C>) -> Result<Program, DplError> {
    let ast = parser::parse(source)?;
    check::check(&ast, &registry.signatures())?;
    Ok(compile::compile(&ast, registry))
}
