use crate::LexError;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // Keywords.
    Var,
    Fn,
    If,
    Else,
    While,
    For,
    In,
    Return,
    Break,
    Continue,
    True,
    False,
    Nil,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => {
                let s = match other {
                    Tok::Var => "var",
                    Tok::Fn => "fn",
                    Tok::If => "if",
                    Tok::Else => "else",
                    Tok::While => "while",
                    Tok::For => "for",
                    Tok::In => "in",
                    Tok::Return => "return",
                    Tok::Break => "break",
                    Tok::Continue => "continue",
                    Tok::True => "true",
                    Tok::False => "false",
                    Tok::Nil => "nil",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semicolon => ";",
                    Tok::Colon => ":",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Assign => "=",
                    Tok::Eq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Bang => "!",
                    Tok::Eof => "<eof>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token plus the 1-based line it started on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenizes DPL source. `//` line comments and `/* */` block comments are
/// skipped; strings support `\n \t \\ \"` escapes.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    macro_rules! push {
        ($tok:expr) => {
            out.push(Token { tok: $tok, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated block comment".to_string(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            ';' => {
                push!(Tok::Semicolon);
                i += 1;
            }
            ':' => {
                push!(Tok::Colon);
                i += 1;
            }
            '+' => {
                push!(Tok::Plus);
                i += 1;
            }
            '-' => {
                push!(Tok::Minus);
                i += 1;
            }
            '*' => {
                push!(Tok::Star);
                i += 1;
            }
            '/' => {
                push!(Tok::Slash);
                i += 1;
            }
            '%' => {
                push!(Tok::Percent);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Eq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ne);
                    i += 2;
                } else {
                    push!(Tok::Bang);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push!(Tok::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError { line, message: "lone `&` (use `&&`)".to_string() });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push!(Tok::OrOr);
                    i += 2;
                } else {
                    return Err(LexError { line, message: "lone `|` (use `||`)".to_string() });
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated string literal".to_string(),
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            let esc = bytes.get(i + 1).copied().ok_or_else(|| LexError {
                                line,
                                message: "dangling escape".to_string(),
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(LexError {
                                        line,
                                        message: format!("unknown escape `\\{}`", other as char),
                                    })
                                }
                            });
                            i += 2;
                        }
                        b'\n' => {
                            return Err(LexError {
                                line: start_line,
                                message: "newline in string literal".to_string(),
                            })
                        }
                        b => {
                            // Collect a full UTF-8 scalar.
                            let ch_len = utf8_len(b);
                            let chunk =
                                std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                                    LexError {
                                        line,
                                        message: "invalid UTF-8 in string".to_string(),
                                    }
                                })?;
                            s.push_str(chunk);
                            i += ch_len;
                        }
                    }
                }
                push!(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &source[start..i];
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| LexError {
                        line,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    push!(Tok::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| LexError {
                        line,
                        message: format!("integer literal `{text}` out of range"),
                    })?;
                    push!(Tok::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "var" => Tok::Var,
                    "fn" => Tok::Fn,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "in" => Tok::In,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "nil" => Tok::Nil,
                    _ => Tok::Ident(word.to_string()),
                };
                push!(tok);
            }
            other => {
                return Err(LexError { line, message: format!("unexpected character `{other}`") })
            }
        }
    }
    out.push(Token { tok: Tok::Eof, line });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first & 0xE0 == 0xC0 {
        2
    } else if first & 0xF0 == 0xE0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("var x = 1 + 2.5;"),
            vec![
                Tok::Var,
                Tok::Ident("x".to_string()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Float(2.5),
                Tok::Semicolon,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            toks("== != <= >= && || ! < > ="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""a\nb\t\"q\"\\""#),
            vec![Tok::Str("a\nb\t\"q\"\\".to_string()), Tok::Eof]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("\"héllo ✓\""), vec![Tok::Str("héllo ✓".to_string()), Tok::Eof]);
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let tokens = lex("// line one\n/* block\nspanning */ var x;").unwrap();
        assert_eq!(tokens[0].tok, Tok::Var);
        assert_eq!(tokens[0].line, 3);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("iffy for_x in_ returning"),
            vec![
                Tok::Ident("iffy".to_string()),
                Tok::Ident("for_x".to_string()),
                Tok::Ident("in_".to_string()),
                Tok::Ident("returning".to_string()),
                Tok::Eof
            ]
        );
        assert_eq!(toks("for in"), vec![Tok::For, Tok::In, Tok::Eof]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = lex("var x;\n\"unterminated").unwrap_err();
        assert_eq!(err.line, 2);
        let err = lex("@").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(lex("& x").is_err());
        assert!(lex("| x").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn trailing_dot_is_not_a_float() {
        // `1.` without a following digit is not a float literal; the bare
        // dot is rejected (DPL has no member access).
        assert!(lex("1. 5").is_err());
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5), Tok::Eof]);
    }

    #[test]
    fn huge_integer_rejected() {
        assert!(lex("99999999999999999999").is_err());
    }
}
