//! The static checker: the translator rules that get a delegated program
//! rejected before it ever runs.
//!
//! Enforced rules (paper §3.3.2, "Prototype Language and Services"):
//!
//! 1. **Binding rule** — every call resolves to a program function or to a
//!    host function in the server's allowed set; nothing else is linkable.
//! 2. **Arity rule** — every call passes exactly the declared number of
//!    arguments.
//! 3. **Definite names** — every variable is declared (`var`, parameter,
//!    or `for` binding) before use; duplicates in one scope are rejected.
//! 4. **Structured control** — `break`/`continue` appear only inside
//!    loops.

use crate::ast::*;
use crate::host::Signature;
use crate::CheckError;
use std::collections::{HashMap, HashSet};

/// Checks `ast` against the host functions in `hosts`.
///
/// # Errors
///
/// Returns the first [`CheckError`] found.
pub fn check(ast: &ProgramAst, hosts: &[Signature]) -> Result<(), CheckError> {
    let mut fn_arities: HashMap<&str, usize> = HashMap::new();
    let mut host_arities: HashMap<&str, usize> = HashMap::new();
    for sig in hosts {
        host_arities.insert(sig.name.as_str(), sig.arity);
    }
    for f in &ast.functions {
        if fn_arities.contains_key(f.name.as_str()) || host_arities.contains_key(f.name.as_str()) {
            return Err(CheckError::DuplicateFunction { name: f.name.clone() });
        }
        fn_arities.insert(&f.name, f.params.len());
    }

    let mut globals = HashSet::new();
    for g in &ast.globals {
        if !globals.insert(g.name.as_str()) {
            return Err(CheckError::DuplicateVariable { name: g.name.clone(), line: g.line });
        }
    }
    // Global initializers may reference earlier globals only, and may call
    // functions (which see all globals).
    let mut visible: HashSet<&str> = HashSet::new();
    for g in &ast.globals {
        let mut cx = Ctx {
            fn_arities: &fn_arities,
            host_arities: &host_arities,
            scopes: vec![visible.clone()],
            loop_depth: 0,
        };
        cx.expr(&g.init)?;
        visible.insert(&g.name);
    }

    for f in &ast.functions {
        let mut scope: HashSet<&str> = globals.clone();
        for p in &f.params {
            if !scope.insert(p.as_str()) {
                return Err(CheckError::DuplicateVariable { name: p.clone(), line: f.line });
            }
        }
        let mut cx = Ctx {
            fn_arities: &fn_arities,
            host_arities: &host_arities,
            scopes: vec![scope],
            loop_depth: 0,
        };
        cx.block(&f.body)?;
    }
    Ok(())
}

struct Ctx<'a> {
    fn_arities: &'a HashMap<&'a str, usize>,
    host_arities: &'a HashMap<&'a str, usize>,
    scopes: Vec<HashSet<&'a str>>,
    loop_depth: u32,
}

impl<'a> Ctx<'a> {
    fn declared(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains(name))
    }

    fn declare(&mut self, name: &'a str, line: u32) -> Result<(), CheckError> {
        let top = self.scopes.last_mut().expect("scope stack never empty");
        if top.contains(name) {
            return Err(CheckError::DuplicateVariable { name: name.to_string(), line });
        }
        top.insert(name);
        Ok(())
    }

    fn block(&mut self, stmts: &'a [Stmt]) -> Result<(), CheckError> {
        self.scopes.push(HashSet::new());
        for s in stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &'a Stmt) -> Result<(), CheckError> {
        match &s.kind {
            StmtKind::VarDecl { name, init } => {
                self.expr(init)?;
                self.declare(name, s.line)
            }
            StmtKind::Assign { name, value } => {
                if !self.declared(name) {
                    return Err(CheckError::UndefinedVariable { name: name.clone(), line: s.line });
                }
                self.expr(value)
            }
            StmtKind::IndexAssign { base, index, value } => {
                self.place(base)?;
                self.expr(index)?;
                self.expr(value)
            }
            StmtKind::If { cond, then_block, else_block } => {
                self.expr(cond)?;
                self.block(then_block)?;
                self.block(else_block)
            }
            StmtKind::While { cond, body } => {
                self.expr(cond)?;
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                r
            }
            StmtKind::ForIn { name, iterable, body } => {
                self.expr(iterable)?;
                self.loop_depth += 1;
                // The loop variable lives in the body scope.
                self.scopes.push(HashSet::new());
                self.declare(name, s.line)?;
                let mut r = Ok(());
                for st in body {
                    r = self.stmt(st);
                    if r.is_err() {
                        break;
                    }
                }
                self.scopes.pop();
                self.loop_depth -= 1;
                r
            }
            StmtKind::Return { value } => value.as_ref().map_or(Ok(()), |e| self.expr(e)),
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    Err(CheckError::StrayLoopControl { line: s.line })
                } else {
                    Ok(())
                }
            }
            StmtKind::Expr(e) => self.expr(e),
        }
    }

    /// A valid assignment place: a variable, possibly indexed.
    fn place(&mut self, e: &'a Expr) -> Result<(), CheckError> {
        match &e.kind {
            ExprKind::Var(name) => {
                if self.declared(name) {
                    Ok(())
                } else {
                    Err(CheckError::UndefinedVariable { name: name.clone(), line: e.line })
                }
            }
            ExprKind::Index { base, index } => {
                self.place(base)?;
                self.expr(index)
            }
            _ => Err(CheckError::UndefinedVariable {
                name: "<expression>".to_string(),
                line: e.line,
            }),
        }
    }

    fn expr(&mut self, e: &'a Expr) -> Result<(), CheckError> {
        match &e.kind {
            ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::Nil => Ok(()),
            ExprKind::Var(name) => {
                if self.declared(name) {
                    Ok(())
                } else {
                    Err(CheckError::UndefinedVariable { name: name.clone(), line: e.line })
                }
            }
            ExprKind::List(items) => items.iter().try_for_each(|i| self.expr(i)),
            ExprKind::Map(pairs) => pairs.iter().try_for_each(|(k, v)| {
                self.expr(k)?;
                self.expr(v)
            }),
            ExprKind::Index { base, index } => {
                self.expr(base)?;
                self.expr(index)
            }
            ExprKind::Unary { operand, .. } => self.expr(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
            ExprKind::Call { name, args } => {
                let expected = self
                    .fn_arities
                    .get(name.as_str())
                    .or_else(|| self.host_arities.get(name.as_str()))
                    .copied()
                    .ok_or_else(|| CheckError::UnknownFunction {
                        name: name.clone(),
                        line: e.line,
                    })?;
                if args.len() != expected {
                    return Err(CheckError::WrongArity {
                        name: name.clone(),
                        expected,
                        found: args.len(),
                        line: e.line,
                    });
                }
                args.iter().try_for_each(|a| self.expr(a))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn hosts() -> Vec<Signature> {
        vec![
            Signature { name: "len".to_string(), arity: 1 },
            Signature { name: "mib_get".to_string(), arity: 1 },
        ]
    }

    fn check_src(src: &str) -> Result<(), CheckError> {
        let ast = parse(src).unwrap();
        check(&ast, &hosts())
    }

    #[test]
    fn accepts_well_formed_programs() {
        check_src(
            "var state = 0;\n\
             fn helper(x) { return x * 2; }\n\
             fn main(a) { var b = helper(a) + len([1]); state = b; return state; }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_function() {
        let err = check_src("fn main() { return system(\"rm -rf\"); }").unwrap_err();
        match err {
            CheckError::UnknownFunction { name, line } => {
                assert_eq!(name, "system");
                assert_eq!(line, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_arity_for_program_and_host_functions() {
        let err = check_src("fn f(a, b) { return a; } fn main() { return f(1); }").unwrap_err();
        assert!(matches!(err, CheckError::WrongArity { expected: 2, found: 1, .. }));
        let err = check_src("fn main() { return len(); }").unwrap_err();
        assert!(matches!(err, CheckError::WrongArity { expected: 1, found: 0, .. }));
    }

    #[test]
    fn rejects_undefined_variable() {
        let err = check_src("fn main() { return ghost; }").unwrap_err();
        assert!(matches!(err, CheckError::UndefinedVariable { .. }));
        let err = check_src("fn main() { ghost = 1; }").unwrap_err();
        assert!(matches!(err, CheckError::UndefinedVariable { .. }));
    }

    #[test]
    fn block_scoping_expires_locals() {
        let err = check_src("fn main(c) { if (c) { var x = 1; } return x; }").unwrap_err();
        assert!(matches!(err, CheckError::UndefinedVariable { name, .. } if name == "x"));
    }

    #[test]
    fn for_binding_is_scoped_to_body() {
        check_src("fn main(xs) { for (x in xs) { var y = x; } return 0; }").unwrap();
        let err = check_src("fn main(xs) { for (x in xs) { } return x; }").unwrap_err();
        assert!(matches!(err, CheckError::UndefinedVariable { .. }));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let err = check_src("fn f() {} fn f() {}").unwrap_err();
        assert!(matches!(err, CheckError::DuplicateFunction { .. }));
        // Shadowing a host function is also a duplicate.
        let err = check_src("fn len(x) { return 0; }").unwrap_err();
        assert!(matches!(err, CheckError::DuplicateFunction { .. }));
        let err = check_src("fn f(a, a) {}").unwrap_err();
        assert!(matches!(err, CheckError::DuplicateVariable { .. }));
        let err = check_src("fn f() { var x = 1; var x = 2; }").unwrap_err();
        assert!(matches!(err, CheckError::DuplicateVariable { .. }));
        let err = check_src("var g = 1; var g = 2;").unwrap_err();
        assert!(matches!(err, CheckError::DuplicateVariable { .. }));
    }

    #[test]
    fn shadowing_in_inner_scope_is_allowed() {
        check_src("fn f(c) { var x = 1; if (c) { var x = 2; x = x + 1; } return x; }").unwrap();
    }

    #[test]
    fn stray_break_continue_rejected() {
        assert!(matches!(
            check_src("fn f() { break; }").unwrap_err(),
            CheckError::StrayLoopControl { .. }
        ));
        assert!(matches!(
            check_src("fn f() { continue; }").unwrap_err(),
            CheckError::StrayLoopControl { .. }
        ));
        check_src("fn f() { while (true) { break; } }").unwrap();
    }

    #[test]
    fn globals_see_only_earlier_globals() {
        check_src("var a = 1; var b = a + 1;").unwrap();
        let err = check_src("var a = b; var b = 1;").unwrap_err();
        assert!(matches!(err, CheckError::UndefinedVariable { .. }));
    }

    #[test]
    fn index_assign_requires_place() {
        check_src("fn f(m) { m[\"k\"] = 1; }").unwrap();
        check_src("fn f(m) { m[\"a\"][\"b\"] = 1; }").unwrap();
        let err = check_src("fn f() { [1,2][0] = 9; }").unwrap_err();
        assert!(matches!(err, CheckError::UndefinedVariable { .. }));
    }

    #[test]
    fn recursion_is_allowed() {
        check_src("fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }").unwrap();
    }

    #[test]
    fn mutual_recursion_is_allowed() {
        check_src(
            "fn even(n) { if (n == 0) { return true; } return odd(n - 1); }\n\
             fn odd(n) { if (n == 0) { return false; } return even(n - 1); }",
        )
        .unwrap();
    }
}
