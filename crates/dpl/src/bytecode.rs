use crate::Value;
use std::collections::HashMap;
use std::fmt;

/// One VM instruction. Jump targets are absolute indices within the
/// enclosing function's code.
///
/// `Op` is deliberately `Copy` (every payload is a small scalar): the
/// dispatch loop reads instructions by value, so fetching the next op is
/// a plain load instead of a `clone()` call per instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    /// Push constant `consts[i]`.
    Const(u16),
    /// Push `nil`.
    Nil,
    /// Push `true`/`false`.
    Bool(bool),
    /// Push a copy of local slot `i`.
    LoadLocal(u16),
    /// Pop into local slot `i`.
    StoreLocal(u16),
    /// Push a copy of global slot `i`.
    LoadGlobal(u16),
    /// Pop into global slot `i`.
    StoreGlobal(u16),
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    Not,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Unconditional jump.
    Jump(u32),
    /// Pop a bool; jump if false.
    JumpIfFalse(u32),
    /// Short-circuit `&&`: if top is false, leave it and jump; else pop.
    AndJump(u32),
    /// Short-circuit `||`: if top is true, leave it and jump; else pop.
    OrJump(u32),
    /// Call program function `func` with `argc` arguments on the stack.
    Call {
        func: u16,
        argc: u8,
    },
    /// Call host function `host` (program-level host table index).
    CallHost {
        host: u16,
        argc: u8,
    },
    /// Return with the top of stack as the value.
    Return,
    /// Discard the top of stack.
    Pop,
    /// Pop `n` items into a new list (first pushed = first element).
    MakeList(u16),
    /// Pop `2n` items (key/value pairs) into a new map.
    MakeMap(u16),
    /// Pop index then base; push `base[index]`.
    Index,
    /// Pop value and `depth` indices; mutate through local slot `slot`.
    IndexSetLocal {
        slot: u16,
        depth: u8,
    },
    /// As above, through global slot `slot`.
    IndexSetGlobal {
        slot: u16,
        depth: u8,
    },
    /// Pop a value; push its iteration list (list as-is, map keys,
    /// str chars).
    IterList,
    /// Pop a value; push its length as Int (lists only; used by for-in).
    Len,
}

/// Metadata about one compiled function, exposed for introspection and
/// for the RDS `listDPs` operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Function name.
    pub name: String,
    /// Number of parameters.
    pub arity: usize,
    /// Number of bytecode instructions.
    pub code_len: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Function {
    pub name: String,
    pub arity: usize,
    pub n_locals: usize,
    pub code: Vec<Op>,
    /// `charge[pc]` — total fuel cost of the straight-line run starting
    /// at `pc` and ending at (and including) the end of its basic block.
    /// The VM charges this once per block entry instead of doing a
    /// checked add + branch per instruction; see
    /// [`compute_charge_table`].
    pub charge: Vec<u32>,
}

impl Function {
    /// Builds a function, deriving the per-block fuel charge table from
    /// the code.
    pub fn new(name: String, arity: usize, n_locals: usize, code: Vec<Op>) -> Function {
        let charge = compute_charge_table(&code);
        Function { name, arity, n_locals, code, charge }
    }
}

/// The fuel price of one instruction — the unit established by the seed
/// VM (one per instruction, plus two extra for a program call and four
/// extra for a host call).
pub(crate) fn op_fuel(op: Op) -> u32 {
    match op {
        Op::Call { .. } => 3,
        Op::CallHost { .. } => 5,
        _ => 1,
    }
}

/// Computes, for every pc, the summed fuel cost of the instructions from
/// `pc` through the end of the basic block containing it.
///
/// Block boundaries are the classic leaders: the function entry, every
/// jump target, and the instruction after any control transfer (jumps,
/// branches, calls — a call resumes there, so it must start a block —
/// and returns). Because the VM only ever *enters* code at a leader
/// (function entry, taken branch, branch fall-through, call return), it
/// can charge `charge[entry_pc]` once and then execute the whole block
/// without per-instruction fuel checks; every executed instruction is
/// charged exactly once, so total fuel on a completed run is identical
/// to per-instruction charging. Abort points move only within a basic
/// block (documented in `docs/DPL.md`).
pub(crate) fn compute_charge_table(code: &[Op]) -> Vec<u32> {
    let mut leader = vec![false; code.len() + 1];
    if !code.is_empty() {
        leader[0] = true;
    }
    for (pc, op) in code.iter().enumerate() {
        match op {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::AndJump(t) | Op::OrJump(t) => {
                leader[*t as usize] = true;
                leader[pc + 1] = true;
            }
            Op::Call { .. } | Op::CallHost { .. } | Op::Return => {
                leader[pc + 1] = true;
            }
            _ => {}
        }
    }
    let mut charge = vec![0u32; code.len()];
    for pc in (0..code.len()).rev() {
        let rest = if pc + 1 < code.len() && !leader[pc + 1] { charge[pc + 1] } else { 0 };
        charge[pc] = op_fuel(code[pc]).saturating_add(rest);
    }
    charge
}

/// A compiled delegated program: constants, functions, global slots and
/// the host-function names it binds to.
///
/// Programs are immutable and cheaply cloneable; every
/// [`Instance`](crate::Instance) shares the same compiled code.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub(crate) consts: Vec<Value>,
    pub(crate) functions: Vec<Function>,
    pub(crate) fn_by_name: HashMap<String, usize>,
    pub(crate) global_names: Vec<String>,
    /// Host functions referenced by the program, by name; `CallHost`
    /// indexes into this table, which is re-resolved against the registry
    /// at invocation time.
    pub(crate) host_names: Vec<String>,
    /// Index of the synthetic `#init` function that evaluates global
    /// initializers (run once, lazily, per instance).
    pub(crate) init_fn: usize,
}

impl Program {
    /// Per-function metadata, in definition order.
    pub fn functions(&self) -> Vec<FunctionInfo> {
        self.functions
            .iter()
            .map(|f| FunctionInfo { name: f.name.clone(), arity: f.arity, code_len: f.code.len() })
            .collect()
    }

    /// Whether the program defines `name`.
    pub fn has_function(&self, name: &str) -> bool {
        self.fn_by_name.contains_key(name)
    }

    /// Names of the persistent globals (dpi state variables).
    pub fn global_names(&self) -> &[String] {
        &self.global_names
    }

    /// Host functions this program binds to.
    pub fn host_bindings(&self) -> &[String] {
        &self.host_names
    }

    /// Total instruction count across all functions (a proxy for dp size
    /// used in the delegation-cost experiments).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum::<usize>()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} function(s), {} global(s), {} instruction(s)",
            self.functions.len(),
            self.global_names.len(),
            self.code_size()
        )
    }
}
