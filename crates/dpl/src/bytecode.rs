use crate::Value;
use std::collections::HashMap;
use std::fmt;

/// One VM instruction. Jump targets are absolute indices within the
/// enclosing function's code.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// Push constant `consts[i]`.
    Const(u16),
    /// Push `nil`.
    Nil,
    /// Push `true`/`false`.
    Bool(bool),
    /// Push a copy of local slot `i`.
    LoadLocal(u16),
    /// Pop into local slot `i`.
    StoreLocal(u16),
    /// Push a copy of global slot `i`.
    LoadGlobal(u16),
    /// Pop into global slot `i`.
    StoreGlobal(u16),
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    Not,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Unconditional jump.
    Jump(u32),
    /// Pop a bool; jump if false.
    JumpIfFalse(u32),
    /// Short-circuit `&&`: if top is false, leave it and jump; else pop.
    AndJump(u32),
    /// Short-circuit `||`: if top is true, leave it and jump; else pop.
    OrJump(u32),
    /// Call program function `func` with `argc` arguments on the stack.
    Call {
        func: u16,
        argc: u8,
    },
    /// Call host function `host` (program-level host table index).
    CallHost {
        host: u16,
        argc: u8,
    },
    /// Return with the top of stack as the value.
    Return,
    /// Discard the top of stack.
    Pop,
    /// Pop `n` items into a new list (first pushed = first element).
    MakeList(u16),
    /// Pop `2n` items (key/value pairs) into a new map.
    MakeMap(u16),
    /// Pop index then base; push `base[index]`.
    Index,
    /// Pop value and `depth` indices; mutate through local slot `slot`.
    IndexSetLocal {
        slot: u16,
        depth: u8,
    },
    /// As above, through global slot `slot`.
    IndexSetGlobal {
        slot: u16,
        depth: u8,
    },
    /// Pop a value; push its iteration list (list as-is, map keys,
    /// str chars).
    IterList,
    /// Pop a value; push its length as Int (lists only; used by for-in).
    Len,
}

/// Metadata about one compiled function, exposed for introspection and
/// for the RDS `listDPs` operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Function name.
    pub name: String,
    /// Number of parameters.
    pub arity: usize,
    /// Number of bytecode instructions.
    pub code_len: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Function {
    pub name: String,
    pub arity: usize,
    pub n_locals: usize,
    pub code: Vec<Op>,
}

/// A compiled delegated program: constants, functions, global slots and
/// the host-function names it binds to.
///
/// Programs are immutable and cheaply cloneable; every
/// [`Instance`](crate::Instance) shares the same compiled code.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub(crate) consts: Vec<Value>,
    pub(crate) functions: Vec<Function>,
    pub(crate) fn_by_name: HashMap<String, usize>,
    pub(crate) global_names: Vec<String>,
    /// Host functions referenced by the program, by name; `CallHost`
    /// indexes into this table, which is re-resolved against the registry
    /// at invocation time.
    pub(crate) host_names: Vec<String>,
    /// Index of the synthetic `#init` function that evaluates global
    /// initializers (run once, lazily, per instance).
    pub(crate) init_fn: usize,
}

impl Program {
    /// Per-function metadata, in definition order.
    pub fn functions(&self) -> Vec<FunctionInfo> {
        self.functions
            .iter()
            .map(|f| FunctionInfo { name: f.name.clone(), arity: f.arity, code_len: f.code.len() })
            .collect()
    }

    /// Whether the program defines `name`.
    pub fn has_function(&self, name: &str) -> bool {
        self.fn_by_name.contains_key(name)
    }

    /// Names of the persistent globals (dpi state variables).
    pub fn global_names(&self) -> &[String] {
        &self.global_names
    }

    /// Host functions this program binds to.
    pub fn host_bindings(&self) -> &[String] {
        &self.host_names
    }

    /// Total instruction count across all functions (a proxy for dp size
    /// used in the delegation-cost experiments).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum::<usize>()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} function(s), {} global(s), {} instruction(s)",
            self.functions.len(),
            self.global_names.len(),
            self.code_size()
        )
    }
}
