//! Recursive-descent parser for DPL.
//!
//! Grammar (EBNF, `;`-terminated statements, C-like precedence):
//!
//! ```text
//! program   := (global | fndef)*
//! global    := "var" IDENT "=" expr ";"
//! fndef     := "fn" IDENT "(" params? ")" block
//! block     := "{" stmt* "}"
//! stmt      := "var" IDENT "=" expr ";"
//!            | IDENT "=" expr ";"
//!            | postfix "[" expr "]" "=" expr ";"
//!            | "if" "(" expr ")" block ("else" (block | ifstmt))?
//!            | "while" "(" expr ")" block
//!            | "for" "(" IDENT "in" expr ")" block
//!            | "return" expr? ";" | "break" ";" | "continue" ";"
//!            | expr ";"
//! expr      := or
//! or        := and ("||" and)*
//! and       := equality ("&&" equality)*
//! equality  := relational (("=="|"!=") relational)*
//! relational:= additive (("<"|"<="|">"|">=") additive)*
//! additive  := multiplicative (("+"|"-") multiplicative)*
//! multiplicative := unary (("*"|"/"|"%") unary)*
//! unary     := ("-"|"!") unary | postfix
//! postfix   := primary ("[" expr "]")*
//! primary   := INT | FLOAT | STRING | "true" | "false" | "nil"
//!            | IDENT | IDENT "(" args? ")" | "(" expr ")"
//!            | "[" args? "]" | "{" (expr ":" expr),* "}"
//! ```

use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::{DplError, ParseError};

/// Parses DPL source into an AST.
///
/// # Errors
///
/// Returns [`DplError::Lex`] or [`DplError::Parse`] with line information.
pub fn parse(source: &str) -> Result<ProgramAst, DplError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let ast = p.program()?;
    Ok(ast)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{want}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { line: self.line(), message }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn program(&mut self) -> Result<ProgramAst, ParseError> {
        let mut ast = ProgramAst::default();
        loop {
            match self.peek() {
                Tok::Eof => return Ok(ast),
                Tok::Var => {
                    let line = self.line();
                    self.bump();
                    let name = self.ident()?;
                    self.eat(&Tok::Assign)?;
                    let init = self.expr()?;
                    self.eat(&Tok::Semicolon)?;
                    ast.globals.push(GlobalDef { name, init, line });
                }
                Tok::Fn => {
                    let line = self.line();
                    self.bump();
                    let name = self.ident()?;
                    self.eat(&Tok::LParen)?;
                    let mut params = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            params.push(self.ident()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    let body = self.block()?;
                    ast.functions.push(FnDef { name, params, body, line });
                }
                other => {
                    return Err(
                        self.err(format!("expected `var` or `fn` at top level, found `{other}`"))
                    )
                }
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(self.err("unterminated block".to_string()));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // consume `}`
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let kind = match self.peek().clone() {
            Tok::Var => {
                self.bump();
                let name = self.ident()?;
                self.eat(&Tok::Assign)?;
                let init = self.expr()?;
                self.eat(&Tok::Semicolon)?;
                StmtKind::VarDecl { name, init }
            }
            Tok::If => {
                self.bump();
                return self.if_stmt(line);
            }
            Tok::While => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                StmtKind::While { cond, body }
            }
            Tok::For => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let name = self.ident()?;
                self.eat(&Tok::In)?;
                let iterable = self.expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                StmtKind::ForIn { name, iterable, body }
            }
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Semicolon { None } else { Some(self.expr()?) };
                self.eat(&Tok::Semicolon)?;
                StmtKind::Return { value }
            }
            Tok::Break => {
                self.bump();
                self.eat(&Tok::Semicolon)?;
                StmtKind::Break
            }
            Tok::Continue => {
                self.bump();
                self.eat(&Tok::Semicolon)?;
                StmtKind::Continue
            }
            Tok::Ident(name) if self.peek2() == &Tok::Assign => {
                self.bump();
                self.bump();
                let value = self.expr()?;
                self.eat(&Tok::Semicolon)?;
                StmtKind::Assign { name, value }
            }
            _ => {
                // Expression statement, or an index assignment
                // `postfix[expr] = value;`.
                let e = self.expr()?;
                if self.peek() == &Tok::Assign {
                    self.bump();
                    let value = self.expr()?;
                    self.eat(&Tok::Semicolon)?;
                    match e.kind {
                        ExprKind::Index { base, index } => {
                            StmtKind::IndexAssign { base: *base, index: *index, value }
                        }
                        _ => {
                            return Err(ParseError {
                                line,
                                message: "invalid assignment target".to_string(),
                            })
                        }
                    }
                } else {
                    self.eat(&Tok::Semicolon)?;
                    StmtKind::Expr(e)
                }
            }
        };
        Ok(Stmt { kind, line })
    }

    fn if_stmt(&mut self, line: u32) -> Result<Stmt, ParseError> {
        self.eat(&Tok::LParen)?;
        let cond = self.expr()?;
        self.eat(&Tok::RParen)?;
        let then_block = self.block()?;
        let else_block = if self.peek() == &Tok::Else {
            self.bump();
            if self.peek() == &Tok::If {
                let line2 = self.line();
                self.bump();
                vec![self.if_stmt(line2)?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt { kind: StmtKind::If { cond, then_block, else_block }, line })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            let line = self.line();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr {
                kind: ExprKind::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.peek() == &Tok::AndAnd {
            let line = self.line();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr {
                kind: ExprKind::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            };
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            };
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary { op: UnOp::Neg, operand: Box::new(operand) },
                    line,
                })
            }
            Tok::Bang => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary { op: UnOp::Not, operand: Box::new(operand) },
                    line,
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.peek() == &Tok::LBracket {
            let line = self.line();
            self.bump();
            let index = self.expr()?;
            self.eat(&Tok::RBracket)?;
            e = Expr { kind: ExprKind::Index { base: Box::new(e), index: Box::new(index) }, line };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let kind = match self.bump() {
            Tok::Int(v) => ExprKind::Int(v),
            Tok::Float(v) => ExprKind::Float(v),
            Tok::Str(s) => ExprKind::Str(s),
            Tok::True => ExprKind::Bool(true),
            Tok::False => ExprKind::Bool(false),
            Tok::Nil => ExprKind::Nil,
            Tok::LParen => {
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                return Ok(e);
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&Tok::RBracket)?;
                ExprKind::List(items)
            }
            Tok::LBrace => {
                let mut pairs = Vec::new();
                if self.peek() != &Tok::RBrace {
                    loop {
                        let k = self.expr()?;
                        self.eat(&Tok::Colon)?;
                        let v = self.expr()?;
                        pairs.push((k, v));
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&Tok::RBrace)?;
                ExprKind::Map(pairs)
            }
            Tok::Ident(name) => {
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    ExprKind::Call { name, args }
                } else {
                    ExprKind::Var(name)
                }
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected token `{other}` in expression"),
                })
            }
        };
        Ok(Expr { kind, line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> ProgramAst {
        parse(src).unwrap()
    }

    #[test]
    fn parses_globals_and_functions() {
        let ast = parse_ok("var n = 0;\nfn main(a, b) { return a; }");
        assert_eq!(ast.globals.len(), 1);
        assert_eq!(ast.globals[0].name, "n");
        assert_eq!(ast.functions.len(), 1);
        assert_eq!(ast.functions[0].params, vec!["a", "b"]);
    }

    #[test]
    fn precedence_is_c_like() {
        let ast = parse_ok("fn f() { return 1 + 2 * 3 < 7 && true; }");
        let body = &ast.functions[0].body[0];
        // Root should be `&&`.
        match &body.kind {
            StmtKind::Return { value: Some(e) } => match &e.kind {
                ExprKind::Binary { op: BinOp::And, lhs, .. } => match &lhs.kind {
                    ExprKind::Binary { op: BinOp::Lt, lhs, .. } => match &lhs.kind {
                        ExprKind::Binary { op: BinOp::Add, rhs, .. } => {
                            assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
                        }
                        other => panic!("expected +, got {other:?}"),
                    },
                    other => panic!("expected <, got {other:?}"),
                },
                other => panic!("expected &&, got {other:?}"),
            },
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let ast = parse_ok("fn f() { return (1 + 2) * 3; }");
        match &ast.functions[0].body[0].kind {
            StmtKind::Return { value: Some(e) } => {
                assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn if_else_if_chains() {
        let ast = parse_ok(
            "fn f(x) { if (x > 2) { return 2; } else if (x > 1) { return 1; } else { return 0; } }",
        );
        match &ast.functions[0].body[0].kind {
            StmtKind::If { else_block, .. } => {
                assert_eq!(else_block.len(), 1);
                assert!(matches!(else_block[0].kind, StmtKind::If { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn loops_and_control() {
        let ast = parse_ok(
            "fn f(xs) { var t = 0; for (x in xs) { if (x == 0) { continue; } t = t + x; } \
             while (t > 100) { t = t - 1; break; } return t; }",
        );
        assert_eq!(ast.functions[0].body.len(), 4);
    }

    #[test]
    fn list_and_map_literals() {
        let ast = parse_ok(r#"fn f() { return [1, 2.0, "x", [nil]]; }"#);
        match &ast.functions[0].body[0].kind {
            StmtKind::Return { value: Some(e) } => match &e.kind {
                ExprKind::List(items) => assert_eq!(items.len(), 4),
                _ => panic!(),
            },
            _ => panic!(),
        }
        let ast = parse_ok(r#"fn f() { return {"a": 1, "b": 2}; }"#);
        match &ast.functions[0].body[0].kind {
            StmtKind::Return { value: Some(e) } => match &e.kind {
                ExprKind::Map(pairs) => assert_eq!(pairs.len(), 2),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn index_assignment_parses() {
        let ast = parse_ok(r#"fn f(m) { m["k"] = 5; m["a"]["b"] = 1; }"#);
        assert!(matches!(ast.functions[0].body[0].kind, StmtKind::IndexAssign { .. }));
        match &ast.functions[0].body[1].kind {
            StmtKind::IndexAssign { base, .. } => {
                assert!(matches!(base.kind, ExprKind::Index { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn invalid_assignment_target_rejected() {
        let err = parse("fn f() { 1 + 2 = 3; }").unwrap_err();
        match err {
            DplError::Parse(p) => assert!(p.message.contains("assignment target")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_messages_have_lines() {
        let err = parse("fn f() {\n  var = 3;\n}").unwrap_err();
        match err {
            DplError::Parse(p) => assert_eq!(p.line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn top_level_garbage_rejected() {
        assert!(parse("return 1;").is_err());
        assert!(parse("fn f() {").is_err());
        assert!(parse("fn f(a,) {}").is_err());
    }

    #[test]
    fn nested_calls_and_indexing() {
        let ast = parse_ok("fn f(a) { return g(h(a)[0], [1,2][1]); }");
        match &ast.functions[0].body[0].kind {
            StmtKind::Return { value: Some(e) } => match &e.kind {
                ExprKind::Call { name, args } => {
                    assert_eq!(name, "g");
                    assert_eq!(args.len(), 2);
                    assert!(matches!(args[0].kind, ExprKind::Index { .. }));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn unary_chains() {
        let ast = parse_ok("fn f(x) { return --x + !!true; }");
        assert_eq!(ast.functions.len(), 1);
    }

    #[test]
    fn empty_return_is_nil() {
        let ast = parse_ok("fn f() { return; }");
        assert!(matches!(ast.functions[0].body[0].kind, StmtKind::Return { value: None }));
    }
}
