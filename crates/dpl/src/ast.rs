//! The abstract syntax tree produced by the parser.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

/// The expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Nil,
    Var(String),
    List(Vec<Expr>),
    Map(Vec<(Expr, Expr)>),
    Index { base: Box<Expr>, index: Box<Expr> },
    Unary { op: UnOp, operand: Box<Expr> },
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    Call { name: String, args: Vec<Expr> },
}

/// A statement, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: u32,
}

/// The statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `var name = init;`
    VarDecl { name: String, init: Expr },
    /// `name = value;`
    Assign { name: String, value: Expr },
    /// `base[index] = value;`
    IndexAssign { base: Expr, index: Expr, value: Expr },
    /// `if (cond) { .. } else { .. }`
    If { cond: Expr, then_block: Vec<Stmt>, else_block: Vec<Stmt> },
    /// `while (cond) { .. }`
    While { cond: Expr, body: Vec<Stmt> },
    /// `for (name in iterable) { .. }`
    ForIn { name: String, iterable: Expr, body: Vec<Stmt> },
    /// `return expr;` (`expr` defaults to `nil`)
    Return { value: Option<Expr> },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A bare expression evaluated for effect.
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A top-level persistent variable (dpi state).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    pub name: String,
    pub init: Expr,
    pub line: u32,
}

/// A whole delegated program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramAst {
    pub globals: Vec<GlobalDef>,
    pub functions: Vec<FnDef>,
}
