//! Differential property tests: the bytecode VM and the tree-walking
//! interpreter must agree on every program, and the front end must never
//! panic on arbitrary input.

use dpl::{interp::AstInstance, Budget, HostRegistry, Instance, Value};
use proptest::prelude::*;

/// Renders a random arithmetic/logic expression over variables a, b, c.
fn arb_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(|v| v.to_string()),
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), prop_oneof![Just("+"), Just("-"), Just("*")], inner)
            .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
    })
}

/// A small family of random-but-valid statement programs.
fn arb_program() -> impl Strategy<Value = String> {
    (arb_expr(), arb_expr(), 0i64..20, any::<bool>()).prop_map(|(e1, e2, bound, flip)| {
        let cmp = if flip { "<" } else { ">" };
        format!(
            "fn main(a, b, c) {{\n\
               var acc = {e1};\n\
               var i = 0;\n\
               while (i < {bound}) {{\n\
                 if (acc {cmp} i * 7) {{ acc = acc + {e2}; }} else {{ acc = acc - i; }}\n\
                 i = i + 1;\n\
               }}\n\
               var xs = [acc, {e1}, {e2}];\n\
               var total = 0;\n\
               for (x in xs) {{ total = total + x; }}\n\
               return [acc, total, len(xs)];\n\
             }}"
        )
    })
}

fn run_vm(src: &str, args: &[Value]) -> Result<Value, dpl::RuntimeError> {
    let reg: HostRegistry<()> = HostRegistry::with_stdlib();
    let program = dpl::compile_program(src, &reg).expect("generated programs compile");
    let mut inst = Instance::new(std::sync::Arc::new(program));
    inst.invoke("main", args, &mut (), &reg, Budget::default())
}

fn run_tree(src: &str, args: &[Value]) -> Result<Value, dpl::RuntimeError> {
    let reg: HostRegistry<()> = HostRegistry::with_stdlib();
    let mut inst = AstInstance::new(src, &reg).expect("generated programs check");
    inst.invoke("main", args, &mut (), &reg, Budget::default())
}

proptest! {
    #[test]
    fn vm_and_interpreter_agree_on_expressions(
        e in arb_expr(),
        a in -50i64..50,
        b in -50i64..50,
        c in -50i64..50,
    ) {
        let src = format!("fn main(a, b, c) {{ return {e}; }}");
        let args = [Value::Int(a), Value::Int(b), Value::Int(c)];
        let vm = run_vm(&src, &args).expect("pure arithmetic cannot fault");
        let tree = run_tree(&src, &args).expect("pure arithmetic cannot fault");
        prop_assert_eq!(vm, tree);
    }

    #[test]
    fn vm_and_interpreter_agree_on_programs(
        src in arb_program(),
        a in -20i64..20,
        b in -20i64..20,
        c in -20i64..20,
    ) {
        let args = [Value::Int(a), Value::Int(b), Value::Int(c)];
        let vm = run_vm(&src, &args);
        let tree = run_tree(&src, &args);
        match (vm, tree) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "program:\n{}", src),
            (Err(_), Err(_)) => {} // both fault (e.g. both hit a budget)
            (x, y) => prop_assert!(false, "divergence on:\n{}\nvm={:?} tree={:?}", src, x, y),
        }
    }

    #[test]
    fn front_end_never_panics_on_arbitrary_text(s in "\\PC*") {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let _ = dpl::compile_program(&s, &reg);
    }

    #[test]
    fn front_end_never_panics_on_token_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("fn"), Just("var"), Just("if"), Just("while"), Just("return"),
                Just("("), Just(")"), Just("{"), Just("}"), Just(";"), Just(","),
                Just("+"), Just("=="), Just("="), Just("x"), Just("main"), Just("1"),
                Just("\"s\""), Just("["), Just("]"),
            ],
            0..40,
        )
    ) {
        let src = parts.join(" ");
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let _ = dpl::compile_program(&src, &reg);
    }

    #[test]
    fn compilation_is_deterministic(src in arb_program()) {
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let p1 = dpl::compile_program(&src, &reg).expect("compiles");
        let p2 = dpl::compile_program(&src, &reg).expect("compiles");
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn instances_are_isolated(src in arb_program(), a in -10i64..10) {
        // Two instances of one program, invoked with the same inputs,
        // return the same value regardless of interleaving.
        let reg: HostRegistry<()> = HostRegistry::with_stdlib();
        let program = dpl::compile_program(&src, &reg).expect("compiles");
        let args = [Value::Int(a), Value::Int(0), Value::Int(1)];
        let program = std::sync::Arc::new(program);
        let mut i1 = Instance::new(std::sync::Arc::clone(&program));
        let mut i2 = Instance::new(program);
        let r1a = i1.invoke("main", &args, &mut (), &reg, Budget::default());
        let r2 = i2.invoke("main", &args, &mut (), &reg, Budget::default());
        let r1b = i1.invoke("main", &args, &mut (), &reg, Budget::default());
        prop_assert_eq!(&r1a, &r2);
        // This program family is stateless, so reinvocation agrees too.
        prop_assert_eq!(&r1a, &r1b);
    }
}
