//! Property tests for the shared-code dp→dpi pipeline.
//!
//! Instances created from one `Arc<Program>` must share code (pointer
//! identity) but never state, resolution caches must track registry
//! generations rather than leak across registries, and the batched fuel
//! accounting must preserve the seed's abort semantics *exactly*: a
//! budget one unit below a run's full cost aborts, the exact cost
//! succeeds and reports the same `fuel_used`.

use dpl::{Budget, HostRegistry, Instance, RuntimeError, Value};
use proptest::prelude::*;
use std::sync::Arc;

const COUNTER_SRC: &str = "var n = 0; fn bump(by) { n = n + by; return n; }";

fn compile(src: &str) -> Arc<dpl::Program> {
    let reg: HostRegistry<()> = HostRegistry::with_stdlib();
    Arc::new(dpl::compile_program(src, &reg).expect("compiles"))
}

fn stdlib() -> HostRegistry<()> {
    HostRegistry::with_stdlib()
}

proptest! {
    #[test]
    fn shared_code_instances_have_independent_globals(
        bumps_a in proptest::collection::vec(1i64..100, 0..12),
        bumps_b in proptest::collection::vec(1i64..100, 0..12),
    ) {
        let reg = stdlib();
        let program = compile(COUNTER_SRC);
        let mut a = Instance::new(Arc::clone(&program));
        let mut b = Instance::new(Arc::clone(&program));
        prop_assert!(Arc::ptr_eq(a.program_shared(), b.program_shared()));

        // Interleave invocations; each instance's counter must follow its
        // own bump sequence, never the other's.
        let (mut sum_a, mut sum_b) = (0i64, 0i64);
        for i in 0..bumps_a.len().max(bumps_b.len()) {
            if let Some(&by) = bumps_a.get(i) {
                sum_a += by;
                let v = a
                    .invoke("bump", &[Value::Int(by)], &mut (), &reg, Budget::default())
                    .expect("bump runs");
                prop_assert_eq!(v, Value::Int(sum_a));
            }
            if let Some(&by) = bumps_b.get(i) {
                sum_b += by;
                let v = b
                    .invoke("bump", &[Value::Int(by)], &mut (), &reg, Budget::default())
                    .expect("bump runs");
                prop_assert_eq!(v, Value::Int(sum_b));
            }
        }
        // Globals initialize lazily, so an instance that was never
        // invoked still reads Nil.
        let expect_a = if bumps_a.is_empty() { Value::Nil } else { Value::Int(sum_a) };
        let expect_b = if bumps_b.is_empty() { Value::Nil } else { Value::Int(sum_b) };
        prop_assert_eq!(a.global("n"), Some(&expect_a));
        prop_assert_eq!(b.global("n"), Some(&expect_b));
    }

    #[test]
    fn fuel_abort_boundary_is_exact(iters in 0i64..60) {
        // The block-batched accounting must charge a completed run
        // exactly what per-instruction accounting charged: the measured
        // full cost succeeds (with identical `fuel_used`), one unit less
        // aborts with OutOfFuel.
        let src = "var base = 1; \
                   fn main(k) { var t = base; var i = 0; \
                   while (i < k) { t = t + step(i); i = i + 1; } return t; } \
                   fn step(i) { if (i % 2 == 0) { return i; } return len([i]); }";
        let reg = stdlib();
        let program = compile(src);
        let args = [Value::Int(iters)];

        let mut probe = Instance::new(Arc::clone(&program));
        probe.invoke("main", &args, &mut (), &reg, Budget::default()).expect("fits default");
        let full = probe.last_stats().fuel_used;

        // Fresh instances per probe so each run pays the same lazy-init
        // cost the measurement run paid.
        let mut exact = Instance::new(Arc::clone(&program));
        let budget = Budget { fuel: full, ..Budget::default() };
        exact.invoke("main", &args, &mut (), &reg, budget).expect("exact budget suffices");
        prop_assert_eq!(exact.last_stats().fuel_used, full);

        let mut starved = Instance::new(Arc::clone(&program));
        let budget = Budget { fuel: full - 1, ..Budget::default() };
        let err = starved.invoke("main", &args, &mut (), &reg, budget).unwrap_err();
        prop_assert_eq!(err, RuntimeError::OutOfFuel);
        prop_assert!(starved.last_stats().fuel_used > full - 1);
    }

    #[test]
    fn call_depth_boundary_is_exact(depth in 0u32..40) {
        // down(k) needs k + 2 frames (main, down(k) ... down(0)); the
        // budget admitting exactly that depth succeeds, one less aborts.
        let src = "fn down(n) { if (n == 0) { return 0; } return down(n - 1); } \
                   fn main(k) { return down(k); }";
        let reg = stdlib();
        let program = compile(src);
        let args = [Value::Int(i64::from(depth))];
        let needed = depth + 2;

        let mut inst = Instance::new(Arc::clone(&program));
        let budget = Budget { call_depth: needed, ..Budget::default() };
        inst.invoke("main", &args, &mut (), &reg, budget).expect("exact depth suffices");
        prop_assert_eq!(inst.last_stats().max_depth, needed);

        let mut inst = Instance::new(Arc::clone(&program));
        let budget = Budget { call_depth: needed - 1, ..Budget::default() };
        let err = inst.invoke("main", &args, &mut (), &reg, budget).unwrap_err();
        prop_assert_eq!(err, RuntimeError::StackOverflow);
    }

    #[test]
    fn stats_are_identical_across_shared_instances(x in -50i64..50, n in 0i64..30) {
        // Same code, same inputs → byte-identical VmStats, whichever
        // Arc-sharing instance runs it.
        let src = "fn main(x, k) { var t = 0; var i = 0; \
                   while (i < k) { t = t + x * i; i = i + 1; } return [t, str(t)]; }";
        let reg = stdlib();
        let program = compile(src);
        let args = [Value::Int(x), Value::Int(n)];
        let mut a = Instance::new(Arc::clone(&program));
        let mut b = Instance::new(Arc::clone(&program));
        let va = a.invoke("main", &args, &mut (), &reg, Budget::default()).expect("runs");
        let vb = b.invoke("main", &args, &mut (), &reg, Budget::default()).expect("runs");
        prop_assert_eq!(va, vb);
        prop_assert_eq!(a.last_stats(), b.last_stats());
    }
}

#[test]
fn entry_handles_agree_with_string_invocation() {
    let reg = stdlib();
    let program = compile(COUNTER_SRC);
    let mut by_name = Instance::new(Arc::clone(&program));
    let mut by_handle = Instance::new(Arc::clone(&program));
    assert!(by_handle.entry("absent").is_none());
    let bump = by_handle.entry("bump").expect("defined");
    for i in 1..=5 {
        let a = by_name
            .invoke("bump", &[Value::Int(i)], &mut (), &reg, Budget::default())
            .expect("runs");
        let b = by_handle
            .invoke_entry(bump, &[Value::Int(i)], &mut (), &reg, Budget::default())
            .expect("runs");
        assert_eq!(a, b);
    }
    // Handles are per-program, so sibling instances can share them.
    let mut sibling = Instance::new(program);
    let v = sibling
        .invoke_entry(bump, &[Value::Int(7)], &mut (), &reg, Budget::default())
        .expect("runs");
    assert_eq!(v, Value::Int(7));
    // Arity mismatch is still caught on the handle path.
    let err = sibling.invoke_entry(bump, &[], &mut (), &reg, Budget::default()).unwrap_err();
    assert!(matches!(err, RuntimeError::BadInvocation { expected: 1, found: 0 }));
}

#[test]
fn host_resolution_cache_tracks_registry_generation() {
    let mut reg1: HostRegistry<()> = HostRegistry::with_stdlib();
    reg1.register("probe", 0, |_, _| Ok(Value::Int(1)));
    let program = {
        let src = "fn main() { return probe(); }";
        Arc::new(dpl::compile_program(src, &reg1).expect("compiles"))
    };
    let mut inst = Instance::new(program);

    // Warm the cache against reg1.
    assert_eq!(inst.invoke("main", &[], &mut (), &reg1, Budget::default()).unwrap(), Value::Int(1));
    // A clone keeps the generation (identical contents), so the cache
    // stays warm and keeps resolving correctly.
    let reg1_alias = reg1.clone();
    assert_eq!(
        inst.invoke("main", &[], &mut (), &reg1_alias, Budget::default()).unwrap(),
        Value::Int(1)
    );
    // Extending a clone (the elastic process's clone-modify-swap path)
    // bumps the generation; the instance transparently re-resolves.
    let mut reg2 = reg1.clone();
    reg2.register("later", 0, |_, _| Ok(Value::Nil));
    assert_eq!(inst.invoke("main", &[], &mut (), &reg2, Budget::default()).unwrap(), Value::Int(1));
    // An unrelated registry binding the same name differently must not
    // get a stale cache hit: generations are globally unique.
    let mut reg3: HostRegistry<()> = HostRegistry::with_stdlib();
    reg3.register("probe", 0, |_, _| Ok(Value::Int(2)));
    assert_eq!(inst.invoke("main", &[], &mut (), &reg3, Budget::default()).unwrap(), Value::Int(2));
    // And a registry lacking the binding errors, cache or no cache.
    let bare: HostRegistry<()> = HostRegistry::with_stdlib();
    let err = inst.invoke("main", &[], &mut (), &bare, Budget::default()).unwrap_err();
    assert!(matches!(err, RuntimeError::Host { name, .. } if name == "probe"));
    // The failure left the cache invalid, not poisoned: reg1 still works.
    assert_eq!(inst.invoke("main", &[], &mut (), &reg1, Budget::default()).unwrap(), Value::Int(1));
}

#[test]
fn clearing_resolution_caches_is_transparent() {
    let reg = stdlib();
    let program = compile(COUNTER_SRC);
    let mut inst = Instance::new(program);
    inst.invoke("bump", &[Value::Int(2)], &mut (), &reg, Budget::default()).unwrap();
    inst.clear_resolution_caches();
    let v = inst.invoke("bump", &[Value::Int(3)], &mut (), &reg, Budget::default()).unwrap();
    assert_eq!(v, Value::Int(5)); // state survived; resolution re-ran
}
