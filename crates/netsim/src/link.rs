use crate::SimDuration;

/// Physical parameters of a duplex link between two nodes.
///
/// Each direction is an independent FIFO channel: a message is serialized at
/// `bandwidth_bps` (plus `overhead_bytes` of protocol headers), then
/// propagates for `latency` (one-way). `loss` drops messages with the given
/// probability, using the simulator's seeded RNG.
///
/// # Examples
///
/// ```
/// use netsim::LinkSpec;
/// let wan = LinkSpec::wan();
/// assert!(wan.latency() > LinkSpec::lan().latency());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    latency: SimDuration,
    bandwidth_bps: u64,
    overhead_bytes: u32,
    loss: f64,
}

impl LinkSpec {
    /// A link with the given one-way latency and bandwidth (bits/second).
    /// `bandwidth_bps = 0` means infinite bandwidth (no serialization term).
    pub fn new(latency: SimDuration, bandwidth_bps: u64) -> LinkSpec {
        LinkSpec { latency, bandwidth_bps, overhead_bytes: 0, loss: 0.0 }
    }

    /// 10 Mb/s Ethernet-class LAN: 0.5 ms one-way, 34 bytes of UDP/IP/MAC
    /// overhead per message (the environment of the 1991 prototype).
    pub fn lan() -> LinkSpec {
        LinkSpec::new(SimDuration::from_micros(500), 10_000_000).with_overhead(34)
    }

    /// Campus backbone: 5 ms one-way, 10 Mb/s.
    pub fn campus() -> LinkSpec {
        LinkSpec::new(SimDuration::from_millis(5), 10_000_000).with_overhead(34)
    }

    /// Continental WAN: 50 ms one-way (100 ms RTT), 1.5 Mb/s T1.
    pub fn wan() -> LinkSpec {
        LinkSpec::new(SimDuration::from_millis(50), 1_544_000).with_overhead(34)
    }

    /// The thesis's measured intercontinental path (Austin–Japan, 254 ms
    /// round trip): 127 ms one-way, 1.5 Mb/s.
    pub fn intercontinental() -> LinkSpec {
        LinkSpec::new(SimDuration::from_millis(127), 1_544_000).with_overhead(34)
    }

    /// The thesis's pathological congested path (Austin–Austin, 596 ms
    /// round trip): 298 ms one-way, 56 kb/s.
    pub fn congested() -> LinkSpec {
        LinkSpec::new(SimDuration::from_millis(298), 56_000).with_overhead(34)
    }

    /// Returns the spec with per-message protocol overhead bytes set.
    pub fn with_overhead(mut self, bytes: u32) -> LinkSpec {
        self.overhead_bytes = bytes;
        self
    }

    /// Returns the spec with an independent per-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_loss(mut self, p: f64) -> LinkSpec {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        self.loss = p;
        self
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Bandwidth in bits per second (0 = infinite).
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Per-message protocol overhead in bytes.
    pub fn overhead_bytes(&self) -> u32 {
        self.overhead_bytes
    }

    /// Per-message loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Time to serialize a `payload_len`-byte message onto the wire.
    pub fn tx_time(&self, payload_len: usize) -> SimDuration {
        if self.bandwidth_bps == 0 {
            return SimDuration::ZERO;
        }
        let bits = (payload_len as u64 + u64::from(self.overhead_bytes)) * 8;
        SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }

    /// Total bytes a `payload_len` message puts on the wire.
    pub fn wire_bytes(&self, payload_len: usize) -> u64 {
        payload_len as u64 + u64::from(self.overhead_bytes)
    }
}

impl Default for LinkSpec {
    /// The default link is [`LinkSpec::lan`].
    fn default() -> LinkSpec {
        LinkSpec::lan()
    }
}

/// Cumulative per-direction traffic statistics for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages carried (after loss).
    pub messages: u64,
    /// Wire bytes carried, including per-message overhead.
    pub wire_bytes: u64,
    /// Messages dropped by the loss process.
    pub dropped: u64,
}

/// One direction of a link: spec + FIFO busy horizon + stats.
#[derive(Debug, Clone)]
pub(crate) struct DirectedLink {
    pub spec: LinkSpec,
    pub busy_until: crate::SimTime,
    pub stats: LinkStats,
}

impl DirectedLink {
    pub fn new(spec: LinkSpec) -> DirectedLink {
        DirectedLink { spec, busy_until: crate::SimTime::ZERO, stats: LinkStats::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_scales_with_size_and_bandwidth() {
        let link = LinkSpec::new(SimDuration::ZERO, 8_000); // 1000 bytes/s
        assert_eq!(link.tx_time(100), SimDuration::from_millis(100));
        assert_eq!(link.tx_time(1000), SimDuration::from_secs(1));
        let fat = LinkSpec::new(SimDuration::ZERO, 0);
        assert_eq!(fat.tx_time(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn overhead_counts_toward_tx_and_wire_bytes() {
        let link = LinkSpec::new(SimDuration::ZERO, 8_000).with_overhead(34);
        assert_eq!(link.wire_bytes(100), 134);
        assert_eq!(link.tx_time(0), SimDuration::from_millis(34));
    }

    #[test]
    fn presets_are_ordered_by_latency() {
        assert!(LinkSpec::lan().latency() < LinkSpec::campus().latency());
        assert!(LinkSpec::campus().latency() < LinkSpec::wan().latency());
        assert!(LinkSpec::wan().latency() < LinkSpec::intercontinental().latency());
        assert!(LinkSpec::intercontinental().latency() < LinkSpec::congested().latency());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_out_of_range_panics() {
        let _ = LinkSpec::lan().with_loss(1.5);
    }
}
