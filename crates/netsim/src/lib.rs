//! A deterministic discrete-event network simulator.
//!
//! The MbD evaluation compares centralized SNMP polling against delegated
//! computation across links of very different latency and bandwidth (campus
//! LANs, WANs, the 596 ms Austin–Austin vs 254 ms Austin–Japan round trips
//! the thesis cites). This crate provides the substrate those experiments
//! run on: virtual time, nodes hosting [`Actor`]s, and duplex [`links`]
//! modeled with propagation latency, serialization bandwidth, per-message
//! overhead, and optional seeded loss.
//!
//! Everything is single-threaded and deterministic: events execute in
//! `(time, sequence)` order and all randomness comes from a seeded RNG, so
//! every experiment is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use netsim::{Actor, Context, LinkSpec, NodeId, SimDuration, Simulator, TimerToken};
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: Vec<u8>) {
//!         ctx.send(from, bytes); // bounce it back
//!     }
//!     fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
//! }
//!
//! struct Pinger { peer: NodeId, pub rtt: Option<SimDuration> }
//! impl Actor for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(self.peer, vec![0u8; 64]);
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_>, _: NodeId, _: Vec<u8>) {
//!         self.rtt = Some(ctx.now().since_start());
//!     }
//!     fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
//! }
//!
//! let mut sim = Simulator::new(42);
//! let echo = sim.add_node("echo", Echo);
//! let ping = sim.add_node("ping", Pinger { peer: echo, rtt: None });
//! sim.connect(ping, echo, LinkSpec::lan());
//! sim.run();
//! ```

mod link;
mod sim;
mod stats;
mod time;

pub use link::{LinkSpec, LinkStats};
pub use sim::{Actor, Context, NodeId, Simulator, TimerToken};
pub use stats::SimStats;
pub use time::{SimDuration, SimTime};

/// links — modeling notes.
///
/// A message of `n` bytes sent at time `t` over a link with latency `L`,
/// bandwidth `B` bytes/s and per-message overhead `o` bytes is delivered at
/// `max(t, link_busy_until) + (n + o)/B + L`; the link stays busy for the
/// serialization term, giving FIFO store-and-forward behaviour. Setting
/// `B = 0` disables the serialization term (infinite bandwidth).
pub mod links {
    pub use crate::link::LinkSpec;
}
