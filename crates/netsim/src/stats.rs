use std::fmt;

/// Global counters accumulated over a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events popped from the queue (deliveries + handles + timers).
    pub events_processed: u64,
    /// Messages accepted onto some link.
    pub messages_sent: u64,
    /// Messages handed to an actor's `on_message`.
    pub messages_delivered: u64,
    /// Messages dropped by link loss.
    pub messages_dropped: u64,
    /// Timer callbacks executed (cancelled timers excluded).
    pub timers_fired: u64,
    /// Total wire bytes across all links, including per-message overhead.
    pub wire_bytes: u64,
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events={} sent={} delivered={} dropped={} timers={} wire_bytes={}",
            self.events_processed,
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.timers_fired,
            self.wire_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_every_counter() {
        let s = SimStats { events_processed: 1, ..SimStats::default() }.to_string();
        for key in ["events", "sent", "delivered", "dropped", "timers", "wire_bytes"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
