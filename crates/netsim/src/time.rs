use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, measured in nanoseconds since simulation start.
///
/// `SimTime` and [`SimDuration`] are newtypes so wall-clock `std::time`
/// values cannot be confused with simulated ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; `run_until(SimTime::MAX)` runs to
    /// quiescence.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The elapsed duration since the epoch.
    pub fn since_start(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(t.as_nanos(), 1_000_000_000);
        assert_eq!((t + SimDuration::from_secs(2)) - t, SimDuration::from_secs(2));
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO); // saturates
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_behaviour_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!(big + big, big);
        assert_eq!(big * 2, big);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!((SimTime::ZERO + SimDuration::from_millis(1500)).to_string(), "t+1.500000s");
    }
}
