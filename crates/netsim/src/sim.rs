use crate::link::DirectedLink;
use crate::stats::SimStats;
use crate::{LinkSpec, LinkStats, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

/// Identifies a node within one [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle for a pending timer, returned by [`Context::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(u64);

/// Behaviour of a simulated node.
///
/// Implementations receive callbacks with a [`Context`] through which they
/// may send messages, set timers, and read the virtual clock. The `Any`
/// supertrait lets tests and experiment harnesses recover concrete actor
/// state after a run via [`Simulator::actor`].
pub trait Actor: Any {
    /// Called once when the simulation starts (before any event).
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: Vec<u8>);

    /// Called when a timer set by this node fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken);
}

#[derive(Debug)]
enum EventKind {
    /// Message arrival at a node (subject to the node's processing queue).
    Deliver {
        to: NodeId,
        from: NodeId,
        bytes: Vec<u8>,
    },
    /// Message handling after the processing delay has elapsed.
    Handle {
        to: NodeId,
        from: NodeId,
        bytes: Vec<u8>,
    },
    Timer {
        node: NodeId,
        token: TimerToken,
    },
}

struct Scheduled {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct SimCore {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    links: HashMap<(NodeId, NodeId), DirectedLink>,
    next_timer: u64,
    cancelled: HashSet<TimerToken>,
    rng: StdRng,
    stats: SimStats,
    node_processing: Vec<SimDuration>,
    node_busy_until: Vec<SimTime>,
}

impl SimCore {
    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { time, seq, kind });
    }

    fn send(&mut self, from: NodeId, to: NodeId, bytes: Vec<u8>) {
        if from == to {
            // Local loopback: delivered at the current instant, in order.
            self.schedule(self.now, EventKind::Deliver { to, from, bytes });
            return;
        }
        let link = self
            .links
            .get_mut(&(from, to))
            .unwrap_or_else(|| panic!("no link from {from} to {to}"));
        if link.spec.loss() > 0.0 && self.rng.gen::<f64>() < link.spec.loss() {
            link.stats.dropped += 1;
            self.stats.messages_dropped += 1;
            return;
        }
        let start = if link.busy_until > self.now { link.busy_until } else { self.now };
        let tx = link.spec.tx_time(bytes.len());
        link.busy_until = start + tx;
        let deliver_at = start + tx + link.spec.latency();
        link.stats.messages += 1;
        link.stats.wire_bytes += link.spec.wire_bytes(bytes.len());
        self.stats.messages_sent += 1;
        self.stats.wire_bytes += link.spec.wire_bytes(bytes.len());
        self.schedule(deliver_at, EventKind::Deliver { to, from, bytes });
    }
}

/// The capabilities an [`Actor`] has during a callback: read the clock,
/// send messages, manage timers, and draw deterministic randomness.
pub struct Context<'a> {
    core: &'a mut SimCore,
    node: NodeId,
}

impl<'a> Context<'a> {
    /// The virtual time of the current event.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Sends `bytes` to `to` over the connecting link.
    ///
    /// Sending to `self` is an instantaneous local loopback.
    ///
    /// # Panics
    ///
    /// Panics if no link connects this node to `to`.
    pub fn send(&mut self, to: NodeId, bytes: Vec<u8>) {
        self.core.send(self.node, to, bytes);
    }

    /// Whether a link exists from this node to `to`.
    pub fn has_link(&self, to: NodeId) -> bool {
        self.core.links.contains_key(&(self.node, to))
    }

    /// Schedules a timer to fire after `delay`; returns its token.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerToken {
        let token = TimerToken(self.core.next_timer);
        self.core.next_timer += 1;
        let at = self.core.now + delay;
        self.core.schedule(at, EventKind::Timer { node: self.node, token });
        token
    }

    /// Cancels a pending timer. Cancelling an already-fired or foreign
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.core.cancelled.insert(token);
    }

    /// A uniformly random `f64` in `[0, 1)` from the seeded simulation RNG.
    pub fn rand_f64(&mut self) -> f64 {
        self.core.rng.gen()
    }

    /// A uniformly random integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.core.rng.gen_range(lo..hi)
    }
}

struct Node {
    name: String,
    actor: Option<Box<dyn Actor>>,
}

/// A deterministic discrete-event simulator of message-passing nodes.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Simulator {
    core: SimCore,
    nodes: Vec<Node>,
    started: bool,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.core.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.core.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            core: SimCore {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                links: HashMap::new(),
                next_timer: 0,
                cancelled: HashSet::new(),
                rng: StdRng::seed_from_u64(seed),
                stats: SimStats::default(),
                node_processing: Vec::new(),
                node_busy_until: Vec::new(),
            },
            nodes: Vec::new(),
            started: false,
        }
    }

    /// Adds a node running `actor`; `name` labels it in panics and reports.
    pub fn add_node<A: Actor>(&mut self, name: impl Into<String>, actor: A) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name: name.into(), actor: Some(Box::new(actor)) });
        self.core.node_processing.push(SimDuration::ZERO);
        self.core.node_busy_until.push(SimTime::ZERO);
        id
    }

    /// Connects `a` and `b` with a symmetric duplex link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.connect_directed(a, b, spec);
        self.connect_directed(b, a, spec);
    }

    /// Connects `from` to `to` in one direction only (asymmetric paths).
    pub fn connect_directed(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.core.links.insert((from, to), DirectedLink::new(spec));
    }

    /// Sets a per-message processing delay for `node`: each delivered
    /// message occupies the node for `d` before its `on_message` runs,
    /// modeling a single-server CPU queue (the manager bottleneck in the
    /// centralized-polling experiments).
    pub fn set_processing_time(&mut self, node: NodeId, d: SimDuration) {
        self.core.node_processing[node.0 as usize] = d;
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Cumulative global statistics.
    pub fn stats(&self) -> &SimStats {
        &self.core.stats
    }

    /// Traffic statistics for the `from → to` direction of a link.
    ///
    /// Returns `None` if no such directed link exists.
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<LinkStats> {
        self.core.links.get(&(from, to)).map(|l| l.stats)
    }

    /// Borrows the concrete actor state of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node`'s actor is not a `T` or if called reentrantly from
    /// within that actor's own callback.
    pub fn actor<T: Actor>(&self, node: NodeId) -> &T {
        let n = &self.nodes[node.0 as usize];
        let actor = n.actor.as_ref().unwrap_or_else(|| panic!("actor {} is running", n.name));
        (actor.as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("actor {} has a different concrete type", n.name))
    }

    /// Mutably borrows the concrete actor state of `node`.
    ///
    /// # Panics
    ///
    /// As for [`Simulator::actor`].
    pub fn actor_mut<T: Actor>(&mut self, node: NodeId) -> &mut T {
        let n = &mut self.nodes[node.0 as usize];
        let name = n.name.clone();
        let actor = n.actor.as_mut().unwrap_or_else(|| panic!("actor {name} is running"));
        (actor.as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("actor {name} has a different concrete type"))
    }

    /// Sends a message from outside the simulation (delivered at the
    /// current time over the `from → to` link, as if `from` had sent it).
    ///
    /// # Panics
    ///
    /// Panics if no link connects `from` to `to`.
    pub fn inject(&mut self, from: NodeId, to: NodeId, bytes: Vec<u8>) {
        self.core.send(from, to, bytes);
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { to, from, bytes } => {
                let idx = to.0 as usize;
                let processing = self.core.node_processing[idx];
                if processing > SimDuration::ZERO {
                    // Single-server queue: the message is handled once the
                    // node finishes everything already queued, plus its own
                    // processing time.
                    let free_at = if self.core.node_busy_until[idx] > self.core.now {
                        self.core.node_busy_until[idx]
                    } else {
                        self.core.now
                    };
                    let handle_at = free_at + processing;
                    self.core.node_busy_until[idx] = handle_at;
                    self.core.schedule(handle_at, EventKind::Handle { to, from, bytes });
                    return;
                }
                self.handle_message(to, from, bytes);
            }
            EventKind::Handle { to, from, bytes } => {
                self.handle_message(to, from, bytes);
            }
            EventKind::Timer { node, token } => {
                if self.core.cancelled.remove(&token) {
                    return;
                }
                self.core.stats.timers_fired += 1;
                let idx = node.0 as usize;
                let mut actor = self.nodes[idx].actor.take().expect("reentrant dispatch");
                let mut ctx = Context { core: &mut self.core, node };
                actor.on_timer(&mut ctx, token);
                self.nodes[idx].actor = Some(actor);
            }
        }
    }

    fn handle_message(&mut self, to: NodeId, from: NodeId, bytes: Vec<u8>) {
        let idx = to.0 as usize;
        self.core.stats.messages_delivered += 1;
        let mut actor = self.nodes[idx].actor.take().expect("reentrant dispatch");
        let mut ctx = Context { core: &mut self.core, node: to };
        actor.on_message(&mut ctx, from, bytes);
        self.nodes[idx].actor = Some(actor);
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let mut actor = self.nodes[i].actor.take().expect("reentrant dispatch");
            let mut ctx = Context { core: &mut self.core, node: NodeId(i as u32) };
            actor.on_start(&mut ctx);
            self.nodes[i].actor = Some(actor);
        }
    }

    /// Runs until the event queue is empty (quiescence).
    pub fn run(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// Runs events with `time <= deadline`, then sets the clock to
    /// `deadline` (unless the queue drained earlier, in which case the clock
    /// stays at the last event).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_if_needed();
        while let Some(top) = self.core.queue.peek() {
            if top.time > deadline {
                self.core.now = deadline;
                return;
            }
            let ev = self.core.queue.pop().expect("peeked");
            debug_assert!(ev.time >= self.core.now, "time went backwards");
            self.core.now = ev.time;
            self.core.stats.events_processed += 1;
            self.dispatch(ev.kind);
        }
        if deadline != SimTime::MAX {
            self.core.now = deadline;
        }
    }

    /// Runs for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.core.now + d;
        self.run_until(deadline);
    }

    /// Executes exactly one event; returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        match self.core.queue.pop() {
            Some(ev) => {
                self.core.now = ev.time;
                self.core.stats.events_processed += 1;
                self.dispatch(ev.kind);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every delivery with its arrival time.
    struct Sink {
        received: Vec<(SimTime, NodeId, Vec<u8>)>,
    }
    impl Actor for Sink {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: Vec<u8>) {
            self.received.push((ctx.now(), from, bytes));
        }
        fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
    }

    struct Idle;
    impl Actor for Idle {
        fn on_message(&mut self, _: &mut Context<'_>, _: NodeId, _: Vec<u8>) {}
        fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
    }

    fn two_nodes(spec: LinkSpec) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Idle);
        let b = sim.add_node("b", Sink { received: Vec::new() });
        sim.connect(a, b, spec);
        (sim, a, b)
    }

    #[test]
    fn latency_only_delivery_time() {
        let (mut sim, a, b) = two_nodes(LinkSpec::new(SimDuration::from_millis(10), 0));
        sim.inject(a, b, vec![0; 100]);
        sim.run();
        let sink = sim.actor::<Sink>(b);
        assert_eq!(sink.received.len(), 1);
        assert_eq!(sink.received[0].0, SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn serialization_delay_added() {
        // 1000 bytes/s, 500-byte message => 500 ms tx + 10 ms latency.
        let (mut sim, a, b) = two_nodes(LinkSpec::new(SimDuration::from_millis(10), 8_000));
        sim.inject(a, b, vec![0; 500]);
        sim.run();
        let sink = sim.actor::<Sink>(b);
        assert_eq!(sink.received[0].0, SimTime::ZERO + SimDuration::from_millis(510));
    }

    #[test]
    fn link_is_fifo_under_back_to_back_sends() {
        let (mut sim, a, b) = two_nodes(LinkSpec::new(SimDuration::from_millis(10), 8_000));
        sim.inject(a, b, vec![1; 500]); // tx 500 ms
        sim.inject(a, b, vec![2; 500]); // queued behind the first
        sim.run();
        let sink = sim.actor::<Sink>(b);
        assert_eq!(sink.received.len(), 2);
        assert_eq!(sink.received[0].0, SimTime::ZERO + SimDuration::from_millis(510));
        assert_eq!(sink.received[1].0, SimTime::ZERO + SimDuration::from_millis(1010));
        assert_eq!(sink.received[0].2[0], 1);
        assert_eq!(sink.received[1].2[0], 2);
    }

    #[test]
    fn stats_account_wire_bytes_with_overhead() {
        let (mut sim, a, b) =
            two_nodes(LinkSpec::new(SimDuration::from_millis(1), 0).with_overhead(34));
        sim.inject(a, b, vec![0; 66]);
        sim.run();
        assert_eq!(sim.stats().wire_bytes, 100);
        assert_eq!(sim.link_stats(a, b).unwrap().wire_bytes, 100);
        assert_eq!(sim.link_stats(b, a).unwrap().wire_bytes, 0);
        assert_eq!(sim.link_stats(a, b).unwrap().messages, 1);
    }

    #[test]
    fn full_loss_drops_everything() {
        let (mut sim, a, b) =
            two_nodes(LinkSpec::new(SimDuration::from_millis(1), 0).with_loss(1.0));
        for _ in 0..10 {
            sim.inject(a, b, vec![0; 10]);
        }
        sim.run();
        assert_eq!(sim.actor::<Sink>(b).received.len(), 0);
        assert_eq!(sim.link_stats(a, b).unwrap().dropped, 10);
        assert_eq!(sim.stats().messages_dropped, 10);
    }

    struct Ticker {
        fired: Vec<SimTime>,
        period: SimDuration,
        remaining: u32,
    }
    impl Actor for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(self.period);
        }
        fn on_message(&mut self, _: &mut Context<'_>, _: NodeId, _: Vec<u8>) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _: TimerToken) {
            self.fired.push(ctx.now());
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(self.period);
            }
        }
    }

    #[test]
    fn periodic_timers_fire_on_schedule() {
        let mut sim = Simulator::new(7);
        let t = sim.add_node(
            "ticker",
            Ticker { fired: Vec::new(), period: SimDuration::from_secs(1), remaining: 3 },
        );
        sim.run();
        let ticker = sim.actor::<Ticker>(t);
        let secs: Vec<u64> = ticker.fired.iter().map(|t| t.as_nanos() / 1_000_000_000).collect();
        assert_eq!(secs, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers_fired, 3);
    }

    struct CancelsOwnTimer {
        fired: bool,
    }
    impl Actor for CancelsOwnTimer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let t = ctx.set_timer(SimDuration::from_secs(1));
            ctx.cancel_timer(t);
        }
        fn on_message(&mut self, _: &mut Context<'_>, _: NodeId, _: Vec<u8>) {}
        fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {
            self.fired = true;
        }
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = Simulator::new(7);
        let n = sim.add_node("c", CancelsOwnTimer { fired: false });
        sim.run();
        assert!(!sim.actor::<CancelsOwnTimer>(n).fired);
        assert_eq!(sim.stats().timers_fired, 0);
    }

    #[test]
    fn run_until_stops_the_clock_at_deadline() {
        let mut sim = Simulator::new(7);
        let t = sim.add_node(
            "ticker",
            Ticker { fired: Vec::new(), period: SimDuration::from_secs(10), remaining: 100 },
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(35));
        assert_eq!(sim.actor::<Ticker>(t).fired.len(), 3);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(35));
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.actor::<Ticker>(t).fired.len(), 4);
    }

    #[test]
    fn self_send_is_instant_loopback() {
        struct SelfSender {
            got: bool,
        }
        impl Actor for SelfSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let me = ctx.node_id();
                ctx.send(me, vec![9]);
            }
            fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: Vec<u8>) {
                assert_eq!(from, ctx.node_id());
                assert_eq!(bytes, vec![9]);
                assert_eq!(ctx.now(), SimTime::ZERO);
                self.got = true;
            }
            fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
        }
        let mut sim = Simulator::new(7);
        let n = sim.add_node("s", SelfSender { got: false });
        sim.run();
        assert!(sim.actor::<SelfSender>(n).got);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn send_without_link_panics() {
        let mut sim = Simulator::new(7);
        let a = sim.add_node("a", Idle);
        let b = sim.add_node("b", Idle);
        sim.inject(a, b, vec![]);
    }

    #[test]
    fn processing_delay_serializes_node_work() {
        // Two messages arrive at t=1ms; a 5 ms processing time means they
        // are handled at 6 ms and 11 ms.
        let (mut sim, a, b) = two_nodes(LinkSpec::new(SimDuration::from_millis(1), 0));
        sim.set_processing_time(b, SimDuration::from_millis(5));
        sim.inject(a, b, vec![1]);
        sim.inject(a, b, vec![2]);
        sim.run();
        let sink = sim.actor::<Sink>(b);
        assert_eq!(sink.received[0].0, SimTime::ZERO + SimDuration::from_millis(6));
        assert_eq!(sink.received[1].0, SimTime::ZERO + SimDuration::from_millis(11));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node("a", Idle);
            let b = sim.add_node("b", Sink { received: Vec::new() });
            sim.connect(a, b, LinkSpec::new(SimDuration::from_millis(1), 0).with_loss(0.5));
            for _ in 0..100 {
                sim.inject(a, b, vec![0; 8]);
            }
            sim.run();
            (sim.stats().messages_delivered, sim.stats().messages_dropped)
        }
        assert_eq!(run_once(99), run_once(99));
        let (delivered, dropped) = run_once(99);
        assert_eq!(delivered + dropped, 100);
        assert!(delivered > 0 && dropped > 0, "p=0.5 loss should split the stream");
    }

    #[test]
    fn debug_impl_is_informative() {
        let sim = Simulator::new(0);
        let s = format!("{sim:?}");
        assert!(s.contains("Simulator"));
        assert!(s.contains("nodes"));
    }
}
