//! Property tests: conservation, FIFO ordering and determinism of the
//! discrete-event simulator.

use netsim::{Actor, Context, LinkSpec, NodeId, SimDuration, Simulator, TimerToken};
use proptest::prelude::*;

#[derive(Default)]
struct Recorder {
    arrivals: Vec<(u64, Vec<u8>)>,
}
impl Actor for Recorder {
    fn on_message(&mut self, ctx: &mut Context<'_>, _: NodeId, bytes: Vec<u8>) {
        self.arrivals.push((ctx.now().as_nanos(), bytes));
    }
    fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
}

struct Quiet;
impl Actor for Quiet {
    fn on_message(&mut self, _: &mut Context<'_>, _: NodeId, _: Vec<u8>) {}
    fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
}

fn arb_link() -> impl Strategy<Value = LinkSpec> {
    (0u64..200, prop_oneof![Just(0u64), Just(56_000), Just(1_544_000), Just(10_000_000)])
        .prop_map(|(lat_ms, bw)| LinkSpec::new(SimDuration::from_millis(lat_ms), bw))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn messages_are_conserved(
        link in arb_link(),
        sizes in proptest::collection::vec(1usize..2000, 1..50),
    ) {
        let mut sim = Simulator::new(7);
        let src = sim.add_node("src", Quiet);
        let dst = sim.add_node("dst", Recorder::default());
        sim.connect(src, dst, link);
        for (i, &n) in sizes.iter().enumerate() {
            sim.inject(src, dst, vec![i as u8; n]);
        }
        sim.run();
        let stats = *sim.stats();
        prop_assert_eq!(stats.messages_sent, sizes.len() as u64);
        prop_assert_eq!(stats.messages_delivered, sizes.len() as u64);
        prop_assert_eq!(stats.messages_dropped, 0);
        prop_assert_eq!(
            sim.actor::<Recorder>(dst).arrivals.len(),
            sizes.len()
        );
    }

    #[test]
    fn links_are_fifo_and_arrivals_monotone(
        link in arb_link(),
        sizes in proptest::collection::vec(1usize..2000, 2..40),
    ) {
        let mut sim = Simulator::new(11);
        let src = sim.add_node("src", Quiet);
        let dst = sim.add_node("dst", Recorder::default());
        sim.connect(src, dst, link);
        for (i, &n) in sizes.iter().enumerate() {
            let mut payload = vec![0u8; n];
            payload[0] = i as u8;
            sim.inject(src, dst, payload);
        }
        sim.run();
        let arrivals = &sim.actor::<Recorder>(dst).arrivals;
        for pair in arrivals.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "arrival times must be monotone");
            prop_assert!(
                pair[0].1[0] < pair[1].1[0] || pair[0].1[0] == 255,
                "FIFO order violated"
            );
        }
    }

    #[test]
    fn loss_accounting_balances(
        p in 0.0f64..=1.0,
        count in 1u32..100,
    ) {
        let mut sim = Simulator::new(13);
        let src = sim.add_node("src", Quiet);
        let dst = sim.add_node("dst", Recorder::default());
        sim.connect(src, dst, LinkSpec::new(SimDuration::from_millis(1), 0).with_loss(p));
        for _ in 0..count {
            sim.inject(src, dst, vec![0u8; 16]);
        }
        sim.run();
        let stats = *sim.stats();
        prop_assert_eq!(
            stats.messages_sent + stats.messages_dropped,
            u64::from(count)
        );
        prop_assert_eq!(stats.messages_delivered, stats.messages_sent);
    }

    #[test]
    fn identical_seeds_produce_identical_traces(
        seed in any::<u64>(),
        sizes in proptest::collection::vec(1usize..500, 1..30),
    ) {
        fn trace(seed: u64, sizes: &[usize]) -> Vec<(u64, Vec<u8>)> {
            let mut sim = Simulator::new(seed);
            let src = sim.add_node("src", Quiet);
            let dst = sim.add_node("dst", Recorder::default());
            sim.connect(
                src,
                dst,
                LinkSpec::new(SimDuration::from_millis(3), 1_544_000).with_loss(0.3),
            );
            for &n in sizes {
                sim.inject(src, dst, vec![0xAA; n]);
            }
            sim.run();
            sim.actor::<Recorder>(dst).arrivals.clone()
        }
        prop_assert_eq!(trace(seed, &sizes), trace(seed, &sizes));
    }

    #[test]
    fn wire_bytes_account_payload_plus_overhead(
        overhead in 0u32..100,
        sizes in proptest::collection::vec(1usize..500, 1..20),
    ) {
        let mut sim = Simulator::new(17);
        let src = sim.add_node("src", Quiet);
        let dst = sim.add_node("dst", Recorder::default());
        sim.connect(
            src,
            dst,
            LinkSpec::new(SimDuration::from_millis(1), 0).with_overhead(overhead),
        );
        for &n in &sizes {
            sim.inject(src, dst, vec![0; n]);
        }
        sim.run();
        let expected: u64 = sizes
            .iter()
            .map(|&n| n as u64 + u64::from(overhead))
            .sum();
        prop_assert_eq!(sim.stats().wire_bytes, expected);
    }
}
