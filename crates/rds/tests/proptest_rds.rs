//! Property tests: the RDS codec round-trips every message, servers never
//! panic on hostile bytes, and authentication is all-or-nothing.

use ber::BerValue;
use mbd_auth::Principal;
use proptest::prelude::*;
use rds::{codec, DpiId, RdsRequest, RdsResponse, RdsServer, TraceContext};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{0,24}"
}

fn arb_request() -> impl Strategy<Value = RdsRequest> {
    prop_oneof![
        (arb_name(), proptest::collection::vec(any::<u8>(), 0..256)).prop_map(|(n, src)| {
            RdsRequest::DelegateProgram { dp_name: n, language: "dpl".to_string(), source: src }
        }),
        arb_name().prop_map(|n| RdsRequest::DeleteProgram { dp_name: n }),
        arb_name().prop_map(|n| RdsRequest::Instantiate { dp_name: n }),
        (any::<u32>(), arb_name(), proptest::collection::vec(any::<i64>(), 0..4)).prop_map(
            |(dpi, entry, args)| RdsRequest::Invoke {
                dpi: DpiId(u64::from(dpi)),
                entry,
                args: args.into_iter().map(BerValue::Integer).collect(),
            }
        ),
        any::<u32>().prop_map(|d| RdsRequest::Suspend { dpi: DpiId(u64::from(d)) }),
        any::<u32>().prop_map(|d| RdsRequest::Resume { dpi: DpiId(u64::from(d)) }),
        any::<u32>().prop_map(|d| RdsRequest::Terminate { dpi: DpiId(u64::from(d)) }),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(d, p)| {
            RdsRequest::SendMessage { dpi: DpiId(u64::from(d)), payload: p }
        }),
        Just(RdsRequest::ListPrograms),
        Just(RdsRequest::ListInstances),
    ]
}

proptest! {
    #[test]
    fn requests_round_trip(req in arb_request(), id in any::<i32>(), who in "[a-z]{1,10}") {
        let bytes = codec::encode_request(&req, &Principal::new(&who), i64::from(id), None);
        let (decoded, principal, got_id) = codec::decode_request(&bytes, None).unwrap();
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(principal.handle(), who);
        prop_assert_eq!(got_id, i64::from(id));
    }

    #[test]
    fn keyed_round_trip_and_cross_key_rejection(
        req in arb_request(),
        key_a in proptest::collection::vec(any::<u8>(), 1..24),
        key_b in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let bytes = codec::encode_request(&req, &Principal::new("p"), 1, Some(&key_a));
        prop_assert!(codec::decode_request(&bytes, Some(&key_a)).is_ok());
        if key_a != key_b {
            prop_assert!(codec::decode_request(&bytes, Some(&key_b)).is_err());
        }
    }

    #[test]
    fn trace_context_rides_any_request(
        req in arb_request(),
        trace_id in any::<u64>(),
        parent_span_id in any::<u64>(),
        keyed in any::<bool>(),
    ) {
        let trace = TraceContext { trace_id, parent_span_id };
        let key: Option<&[u8]> = if keyed { Some(b"trace-key") } else { None };
        let bytes = codec::encode_request_traced(&req, &Principal::new("t"), 7, key, trace);
        let (decoded, _, id, got) = codec::decode_request_traced(&bytes, key).unwrap();
        prop_assert_eq!(decoded, req.clone());
        prop_assert_eq!(id, 7);
        prop_assert_eq!(got, trace);
        if !trace.is_set() {
            // An unset trace produces the byte-identical legacy frame.
            let legacy = codec::encode_request(&req, &Principal::new("t"), 7, key);
            prop_assert_eq!(bytes, legacy);
        }
    }

    #[test]
    fn legacy_decoder_accepts_traced_unkeyed_frames(
        req in arb_request(),
        trace_id in 1..u64::MAX,
    ) {
        // Unkeyed traced frames stay readable through the legacy entry
        // point: the trace suffix rides the (otherwise empty) digest
        // field and is simply dropped.
        let trace = TraceContext { trace_id, parent_span_id: 0 };
        let bytes = codec::encode_request_traced(&req, &Principal::new("t"), 3, None, trace);
        let (decoded, _, id) = codec::decode_request(&bytes, None).unwrap();
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(id, 3);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = codec::decode_request(&bytes, None);
        let _ = codec::decode_request(&bytes, Some(b"k"));
        let _ = codec::decode_response(&bytes, None);
    }

    #[test]
    fn server_answers_hostile_bytes_without_panicking(
        bytes in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        let server = RdsServer::open(|_: &Principal, _: RdsRequest| RdsResponse::Ok);
        let resp = server.process(&bytes);
        // Whatever came in, a decodable response comes out.
        prop_assert!(codec::decode_response(&resp, None).is_ok());
    }

    #[test]
    fn truncation_never_decodes_as_a_different_request(
        req in arb_request(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = codec::encode_request(&req, &Principal::new("p"), 1, None);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            match codec::decode_request(&bytes[..cut], None) {
                Err(_) => {}
                Ok((decoded, _, _)) => prop_assert_eq!(decoded, req, "prefix decoded differently"),
            }
        }
    }
}
