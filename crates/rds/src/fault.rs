//! Deterministic fault injection for any [`Transport`].
//!
//! [`FaultTransport`] wraps a transport and, driven by a seeded
//! splitmix64 stream, injects the classic unreliable-channel faults:
//! dropped requests, dropped responses (the effect executed but the
//! answer is lost — the case that makes naive retry double-execute),
//! duplicated deliveries, delays, truncated responses and broken
//! connections. The schedule is a pure function of the seed, so every
//! chaos run replays bit-for-bit, and a bounded **fault budget**
//! guarantees the channel eventually heals — the property the chaos
//! proptest relies on to demand convergence for *every* seed.

use crate::retry::splitmix64;
use crate::{RdsError, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The fault kinds a [`FaultTransport`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The request never reaches the server.
    DropRequest,
    /// The server executes the request but the response is lost.
    DropResponse,
    /// The request is delivered twice (the second delivery's response is
    /// returned — with server-side dedup it is a byte-identical replay).
    Duplicate,
    /// Delivery succeeds after a short deterministic delay.
    Delay,
    /// The response arrives damaged (truncated to half its length).
    Truncate,
    /// The connection breaks: this request is lost and the next one
    /// fails too before the channel heals.
    Disconnect,
}

const FAULT_KINDS: [Fault; 6] = [
    Fault::DropRequest,
    Fault::DropResponse,
    Fault::Duplicate,
    Fault::Delay,
    Fault::Truncate,
    Fault::Disconnect,
];

/// Shape of a [`FaultTransport`]'s schedule.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability (per mille, 0..=1000) that a request draws a fault.
    pub fault_per_mille: u32,
    /// Faults injected in total before the channel heals for good. A
    /// finite budget makes convergence provable: a client retrying more
    /// than `max_faults` times must eventually see a clean exchange.
    pub max_faults: u32,
    /// Upper bound on an injected [`Fault::Delay`] (the actual delay is
    /// deterministic per seed, 1..=this in milliseconds).
    pub max_delay_ms: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig { fault_per_mille: 400, max_faults: 6, max_delay_ms: 2 }
    }
}

/// A [`Transport`] decorator injecting deterministic faults (see the
/// module docs).
pub struct FaultTransport<T> {
    inner: T,
    config: FaultConfig,
    /// Position in the seeded splitmix64 stream; advanced per decision.
    cursor: AtomicU64,
    seed: u64,
    /// Faults injected so far (stops at `config.max_faults`).
    injected: AtomicU64,
    /// Requests that must still fail because of an earlier Disconnect.
    broken: AtomicU64,
    drops: AtomicU64,
    duplicates: AtomicU64,
    delays: AtomicU64,
    truncations: AtomicU64,
    disconnects: AtomicU64,
}

impl<T> FaultTransport<T> {
    /// Wraps `inner` with the fault schedule derived from `seed`.
    pub fn new(inner: T, seed: u64, config: FaultConfig) -> FaultTransport<T> {
        FaultTransport {
            inner,
            config,
            cursor: AtomicU64::new(0),
            seed,
            injected: AtomicU64::new(0),
            broken: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            truncations: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
        }
    }

    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Requests or responses dropped (incl. truncations and the lost
    /// deliveries of disconnects).
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Requests delivered twice.
    pub fn duplicates(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed)
    }

    /// Requests delayed.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// Responses truncated.
    pub fn truncations(&self) -> u64 {
        self.truncations.load(Ordering::Relaxed)
    }

    /// Connections broken.
    pub fn disconnects(&self) -> u64 {
        self.disconnects.load(Ordering::Relaxed)
    }

    /// The next value of the seeded decision stream.
    fn draw(&self) -> u64 {
        let pos = self.cursor.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed.wrapping_add(pos.wrapping_mul(0xA076_1D64_78BD_642F)))
    }

    /// Decides the fault (if any) for the current request, consuming
    /// budget. `None` means deliver cleanly.
    fn next_fault(&self) -> Option<Fault> {
        if self.injected.load(Ordering::Relaxed) >= u64::from(self.config.max_faults) {
            return None;
        }
        let roll = self.draw() % 1000;
        if roll >= u64::from(self.config.fault_per_mille.min(1000)) {
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(FAULT_KINDS[(self.draw() % FAULT_KINDS.len() as u64) as usize])
    }

    fn lost(&self, what: &str) -> RdsError {
        self.drops.fetch_add(1, Ordering::Relaxed);
        RdsError::Transport { message: format!("fault injected: {what}") }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for FaultTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultTransport")
            .field("inner", &self.inner)
            .field("seed", &self.seed)
            .field("injected", &self.injected())
            .finish()
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
        // A broken connection fails requests until its breakage is spent
        // — but only while fault budget remains, so the channel always
        // heals once the budget is exhausted.
        if self.broken.load(Ordering::Relaxed) > 0 {
            if self.injected.load(Ordering::Relaxed) < u64::from(self.config.max_faults) {
                self.broken.fetch_sub(1, Ordering::Relaxed);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(self.lost("connection still broken"));
            }
            self.broken.store(0, Ordering::Relaxed);
        }
        match self.next_fault() {
            None => self.inner.request(bytes),
            Some(Fault::DropRequest) => Err(self.lost("request dropped")),
            Some(Fault::DropResponse) => {
                // The server-side effect happens; the answer is lost.
                let _ = self.inner.request(bytes)?;
                Err(self.lost("response dropped"))
            }
            Some(Fault::Duplicate) => {
                self.duplicates.fetch_add(1, Ordering::Relaxed);
                let _ = self.inner.request(bytes)?;
                self.inner.request(bytes)
            }
            Some(Fault::Delay) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                let ms = 1 + self.draw() % self.config.max_delay_ms.max(1);
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.request(bytes)
            }
            Some(Fault::Truncate) => {
                self.truncations.fetch_add(1, Ordering::Relaxed);
                let resp = self.inner.request(bytes)?;
                Ok(resp[..resp.len() / 2].to_vec())
            }
            Some(Fault::Disconnect) => {
                self.disconnects.fetch_add(1, Ordering::Relaxed);
                self.broken.store(1, Ordering::Relaxed);
                Err(self.lost("connection broken"))
            }
        }
    }
}

/// [`FaultDuplex`]'s analogue of [`FaultTransport`] for the pipelined
/// path: wraps a [`FrameDuplex`](crate::FrameDuplex) and injects the
/// same seeded, budgeted fault kinds at frame granularity. Because the
/// halves are decoupled, the faults map differently: a dropped request
/// is swallowed at send (the pipeline's stall probe recovers it), a
/// dropped or truncated *response* is applied to the next received
/// frame, and a disconnect breaks the channel until the pipeline
/// reconnects. The schedule is a pure function of the seed and the
/// budget is finite, so every run replays bit-for-bit and the channel
/// provably heals.
pub struct FaultDuplex<D> {
    inner: D,
    config: FaultConfig,
    cursor: u64,
    seed: u64,
    injected: u64,
    /// The channel is broken until the next `reconnect`.
    broken: bool,
    /// Responses to swallow on arrival.
    drop_recvs: u32,
    /// Responses to truncate on arrival.
    truncate_recvs: u32,
    drops: u64,
    duplicates: u64,
    delays: u64,
    truncations: u64,
    disconnects: u64,
}

impl<D> FaultDuplex<D> {
    /// Wraps `inner` with the fault schedule derived from `seed`.
    pub fn new(inner: D, seed: u64, config: FaultConfig) -> FaultDuplex<D> {
        FaultDuplex {
            inner,
            config,
            cursor: 0,
            seed,
            injected: 0,
            broken: false,
            drop_recvs: 0,
            truncate_recvs: 0,
            drops: 0,
            duplicates: 0,
            delays: 0,
            truncations: 0,
            disconnects: 0,
        }
    }

    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Frames swallowed (requests at send, responses at receive).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Request frames delivered twice.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Sends delayed.
    pub fn delays(&self) -> u64 {
        self.delays
    }

    /// Response frames damaged.
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Connections broken.
    pub fn disconnects(&self) -> u64 {
        self.disconnects
    }

    fn draw(&mut self) -> u64 {
        let pos = self.cursor;
        self.cursor += 1;
        splitmix64(self.seed.wrapping_add(pos.wrapping_mul(0xA076_1D64_78BD_642F)))
    }

    fn next_fault(&mut self) -> Option<Fault> {
        if self.injected >= u64::from(self.config.max_faults) {
            return None;
        }
        let roll = self.draw() % 1000;
        if roll >= u64::from(self.config.fault_per_mille.min(1000)) {
            return None;
        }
        self.injected += 1;
        Some(FAULT_KINDS[(self.draw() % FAULT_KINDS.len() as u64) as usize])
    }
}

impl<D: std::fmt::Debug> std::fmt::Debug for FaultDuplex<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultDuplex")
            .field("inner", &self.inner)
            .field("seed", &self.seed)
            .field("injected", &self.injected)
            .finish()
    }
}

impl<D: crate::FrameDuplex> crate::FrameDuplex for FaultDuplex<D> {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), RdsError> {
        if self.broken {
            return Err(RdsError::Transport { message: "fault injected: channel broken".into() });
        }
        match self.next_fault() {
            None => self.inner.send_frame(bytes),
            Some(Fault::DropRequest) => {
                // Swallowed silently: the pipeline's stall probe will
                // re-send it — exactly the lost-datagram shape.
                self.drops += 1;
                Ok(())
            }
            Some(Fault::DropResponse) => {
                self.inner.send_frame(bytes)?;
                self.drop_recvs += 1;
                Ok(())
            }
            Some(Fault::Duplicate) => {
                self.duplicates += 1;
                self.inner.send_frame(bytes)?;
                self.inner.send_frame(bytes)
            }
            Some(Fault::Delay) => {
                self.delays += 1;
                let ms = 1 + self.draw() % self.config.max_delay_ms.max(1);
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.send_frame(bytes)
            }
            Some(Fault::Truncate) => {
                self.inner.send_frame(bytes)?;
                self.truncate_recvs += 1;
                Ok(())
            }
            Some(Fault::Disconnect) => {
                self.disconnects += 1;
                self.broken = true;
                Err(RdsError::Transport { message: "fault injected: connection broken".into() })
            }
        }
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, RdsError> {
        if self.broken {
            return Err(RdsError::Transport { message: "fault injected: channel broken".into() });
        }
        let frame = self.inner.recv_frame(timeout)?;
        let Some(mut frame) = frame else { return Ok(None) };
        if self.drop_recvs > 0 {
            // The effect executed server-side; its answer evaporates.
            self.drop_recvs -= 1;
            self.drops += 1;
            return Ok(None);
        }
        if self.truncate_recvs > 0 {
            self.truncate_recvs -= 1;
            self.truncations += 1;
            frame.truncate(frame.len() / 2);
        }
        Ok(Some(frame))
    }

    fn reconnect(&mut self) -> Result<(), RdsError> {
        self.broken = false;
        // Pending drop/truncate markers referred to replies of the dead
        // connection.
        self.drop_recvs = 0;
        self.truncate_recvs = 0;
        self.inner.reconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopbackTransport;
    use std::sync::Arc;

    fn echo() -> LoopbackTransport {
        LoopbackTransport::new(|bytes: &[u8]| bytes.to_vec())
    }

    #[test]
    fn clean_when_probability_is_zero() {
        let t = FaultTransport::new(
            echo(),
            1,
            FaultConfig { fault_per_mille: 0, ..FaultConfig::default() },
        );
        for _ in 0..50 {
            assert_eq!(t.request(&[1, 2]).unwrap(), vec![1, 2]);
        }
        assert_eq!(t.injected(), 0);
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let t = FaultTransport::new(
                echo(),
                seed,
                FaultConfig { max_delay_ms: 1, ..FaultConfig::default() },
            );
            (0..30).map(|i| t.request(&[i]).is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn budget_exhaustion_heals_the_channel() {
        let t = FaultTransport::new(
            echo(),
            3,
            FaultConfig { fault_per_mille: 1000, max_faults: 5, max_delay_ms: 1 },
        );
        // Eventually every request succeeds — the budget is finite.
        let mut failures = 0;
        for i in 0..40u8 {
            if t.request(&[i]).is_err() {
                failures += 1;
            }
        }
        assert!(t.injected() <= 5);
        assert!(failures <= 5, "at most one failure per budgeted fault");
        assert_eq!(t.request(&[99]).unwrap(), vec![99], "healed channel is clean");
    }

    #[test]
    fn disconnect_breaks_the_next_request_too() {
        // Force Disconnect deterministically by scanning seeds.
        for seed in 0..200u64 {
            let t = FaultTransport::new(
                echo(),
                seed,
                FaultConfig { fault_per_mille: 1000, max_faults: 10, max_delay_ms: 1 },
            );
            let _ = t.request(&[1]);
            if t.disconnects() == 1 && t.injected() == 1 {
                assert!(t.request(&[2]).is_err(), "follow-on request fails while broken");
                assert_eq!(t.injected(), 2, "the follow-on failure consumes budget");
                return;
            }
        }
        panic!("no seed in 0..200 drew Disconnect first — schedule generator is broken");
    }

    #[test]
    fn duplicate_delivers_twice_to_the_inner_transport() {
        use std::sync::atomic::{AtomicU64, Ordering};
        for seed in 0..400u64 {
            let deliveries = Arc::new(AtomicU64::new(0));
            let seen = Arc::clone(&deliveries);
            let inner = LoopbackTransport::new(move |bytes: &[u8]| {
                seen.fetch_add(1, Ordering::Relaxed);
                bytes.to_vec()
            });
            let t = FaultTransport::new(
                inner,
                seed,
                FaultConfig { fault_per_mille: 1000, max_faults: 1, max_delay_ms: 1 },
            );
            let out = t.request(&[5]);
            if t.duplicates() == 1 {
                assert_eq!(deliveries.load(Ordering::Relaxed), 2);
                assert_eq!(out.unwrap(), vec![5]);
                return;
            }
        }
        panic!("no seed in 0..400 drew Duplicate first");
    }

    #[test]
    fn truncate_damages_the_response() {
        for seed in 0..400u64 {
            let t = FaultTransport::new(
                echo(),
                seed,
                FaultConfig { fault_per_mille: 1000, max_faults: 1, max_delay_ms: 1 },
            );
            let out = t.request(&[1, 2, 3, 4]);
            if t.truncations() == 1 {
                assert_eq!(out.unwrap(), vec![1, 2], "half the response survives");
                return;
            }
        }
        panic!("no seed in 0..400 drew Truncate first");
    }
}
