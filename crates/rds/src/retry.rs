//! Client-side retry policy: bounded attempts, exponential backoff with
//! seeded jitter, and a per-request deadline.
//!
//! MbD's dependability story (thesis Ch. 2–3) assumes the manager can
//! resynchronize over an unreliable WAN; this module supplies the
//! client half. A retry **re-sends the identical encoded frame** — same
//! request id, same trace id — so the server's duplicate-suppression
//! cache can recognize it and replay the original response instead of
//! re-executing the effect (see [`crate::DedupCache`]).

use crate::RdsError;
use std::time::Duration;

/// The splitmix64 finalizer — a cheap, well-mixed hash used to derive
/// trace ids, backoff jitter and fault schedules from small seeds.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How an [`RdsClient`](crate::RdsClient) reacts to delivery failures.
///
/// The policy bounds *attempts* (first try included), spaces them with
/// exponential backoff whose jitter is derived deterministically from
/// `jitter_seed` (so tests replay byte-identical schedules), and gives
/// the whole request a wall-clock deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts, first try included (min 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry thereafter.
    pub base_backoff: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub max_backoff: Duration,
    /// Wall-clock budget for the whole request, retries included
    /// (`None` = only `max_attempts` bounds the retry loop).
    pub deadline: Option<Duration>,
    /// Seed for the jitter stream (each retry draws the next value).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 10 ms base backoff capped at 1 s, 30 s deadline.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            deadline: Some(Duration::from_secs(30)),
            jitter_seed: 0x9E37_79B9,
        }
    }
}

impl RetryPolicy {
    /// The seed's behaviour before this PR: a single attempt, no
    /// backoff, no deadline.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: None,
            jitter_seed: 0,
        }
    }

    /// Whether this policy ever retries.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff before retry number `retry` (1-based): exponential from
    /// `base_backoff`, saturating at `max_backoff`, with ±50% jitter
    /// drawn deterministically from `jitter_seed` — full determinism
    /// keeps fault-injection runs replayable, while distinct seeds keep
    /// a fleet of managers from retrying in lockstep.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = retry.saturating_sub(1).min(20);
        let raw = self.base_backoff.saturating_mul(1u32 << exp).min(self.max_backoff);
        // Scale to 50%..150% of the nominal value.
        let jitter = splitmix64(self.jitter_seed ^ u64::from(retry)) % 1001;
        let scaled = raw.as_nanos() as u64 / 1000 * (500 + jitter) / 1000 * 1000;
        Duration::from_nanos(scaled.max(1))
    }

    /// Whether `err` describes a delivery failure worth retrying, as
    /// opposed to an authoritative answer. Retried frames are
    /// byte-identical, so an effect that *did* execute server-side is
    /// replayed from the dedup cache rather than re-run.
    pub fn is_retryable(err: &RdsError) -> bool {
        match err {
            // The request (or its response) may never have arrived.
            RdsError::Transport { .. } => true,
            // The response was damaged in flight; the request may or may
            // not have executed — dedup disambiguates.
            RdsError::Codec(_) => true,
            // A stale or foreign response surfaced on the stream (e.g.
            // after a reconnect); ours may still be obtainable.
            RdsError::RequestIdMismatch { .. } => true,
            // The server shed the request before doing any work.
            RdsError::Remote { code, .. } => code.is_retryable(),
            // Authoritative failures (bad digest, unknown operation, …):
            // retrying cannot change the answer.
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorCode;

    #[test]
    fn none_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.retries_enabled());
        assert_eq!(p.backoff_for(1), Duration::ZERO);
    }

    #[test]
    fn backoff_grows_and_saturates() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            deadline: None,
            jitter_seed: 7,
        };
        // Jitter is ±50%, so each nominal value stays within [0.5x, 1.5x].
        let nominal = [10u64, 20, 40, 80, 80, 80];
        for (i, nom) in nominal.iter().enumerate() {
            let b = p.backoff_for(i as u32 + 1).as_millis() as u64;
            assert!(b >= nom / 2 && b <= nom * 3 / 2, "retry {}: {b} ms vs nominal {nom}", i + 1);
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy { jitter_seed: 42, ..RetryPolicy::default() };
        let q = RetryPolicy { jitter_seed: 42, ..RetryPolicy::default() };
        let r = RetryPolicy { jitter_seed: 43, ..RetryPolicy::default() };
        assert_eq!(p.backoff_for(3), q.backoff_for(3));
        assert_ne!(p.backoff_for(3), r.backoff_for(3), "different seeds, different jitter");
    }

    #[test]
    fn retryability_classification() {
        assert!(RetryPolicy::is_retryable(&RdsError::Transport { message: "gone".into() }));
        assert!(RetryPolicy::is_retryable(&RdsError::RequestIdMismatch { expected: 1, found: 2 }));
        assert!(RetryPolicy::is_retryable(&RdsError::Remote {
            code: ErrorCode::Busy,
            message: String::new(),
        }));
        assert!(!RetryPolicy::is_retryable(&RdsError::Remote {
            code: ErrorCode::BadState,
            message: String::new(),
        }));
        assert!(!RetryPolicy::is_retryable(&RdsError::BadDigest));
    }
}
