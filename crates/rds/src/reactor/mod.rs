//! The event-driven RDS front-end.
//!
//! The 1991 prototype gave every conversation a thread; the PR-1 pool
//! bounded the threads but still pinned one per *served* connection,
//! so the concurrency ceiling was the worker count. This module
//! decouples the two, as the paper's elastic-server argument demands:
//!
//! * [`sys`] — minimal readiness-polling shims (epoll on Linux,
//!   `poll(2)` elsewhere, a self-pipe waker), declared directly
//!   against the platform libc because the workspace vendors all deps;
//! * [`conn`](self::conn) — per-connection state machines:
//!   incremental length-prefixed frame reassembly
//!   ([`FrameAssembler`]), buffered vectored writes, idle/frame
//!   deadlines without a parked thread;
//! * [`executor`](self::executor) — the old worker pool demoted to a
//!   pure execution tier behind a bounded request queue;
//! * [`server`](self::server) — the reactor event loop and the public
//!   [`TcpServer`] handle.
//!
//! The wire format is untouched: frames are byte-identical to the
//! blocking implementation, so legacy serial clients interoperate.
//! What the reactor adds is *pipelining*: a connection may carry many
//! in-flight requests, completed out of order and matched by request
//! id (see [`crate::RdsPipeline`] for the client side and `docs/RDS.md`
//! for the framing state machine).

pub mod sys;

mod conn;
mod executor;
mod server;

pub use conn::FrameAssembler;
pub use server::TcpServer;
pub use sys::raise_nofile_limit;

use mbd_telemetry::{Counter, Gauge, Telemetry, Timer};

/// Pre-resolved transport metrics, shared by the reactor thread and
/// the execution tier. Metric names are stable across the refactor —
/// dashboards and the OCP subtree keep working — though two meanings
/// sharpened: `rds.tcp.active_connections` now gauges *open* (not
/// worker-served) connections, and `rds.tcp.queue_wait` measures each
/// *request's* wait for a worker rather than each connection's.
pub(crate) struct Metrics {
    /// `rds.tcp.queue_wait` — request enqueue-to-pickup latency.
    pub queue_wait: Timer,
    /// `rds.tcp.request` — one frame's respond() latency.
    pub request: Timer,
    /// `rds.tcp.active_connections` — connections the reactor holds.
    pub active: Gauge,
    /// `rds.tcp.handler_panics` — mirrors [`TcpServer::handler_panics`].
    pub panics: Counter,
    /// `rds.tcp.connections_rejected` — mirrors
    /// [`TcpServer::connections_rejected`].
    pub rejected: Counter,
    /// `rds.shed` — requests (or over-cap connections) answered with
    /// an explicit `Busy` frame; the protocol-level name the retry
    /// layer watches.
    pub shed: Counter,
    /// `rds.tcp.health` — current [`crate::ServerHealth`] code.
    pub health: Gauge,
}

impl Metrics {
    pub(crate) fn new(telemetry: &Telemetry) -> Metrics {
        Metrics {
            queue_wait: telemetry.timer("rds.tcp.queue_wait"),
            request: telemetry.timer("rds.tcp.request"),
            active: telemetry.gauge("rds.tcp.active_connections"),
            panics: telemetry.counter("rds.tcp.handler_panics"),
            rejected: telemetry.counter("rds.tcp.connections_rejected"),
            shed: telemetry.counter("rds.shed"),
            health: telemetry.gauge("rds.tcp.health"),
        }
    }
}
