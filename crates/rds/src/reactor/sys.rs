//! Minimal readiness-polling syscall shims.
//!
//! The workspace vendors every dependency, so there is no `libc` or
//! `mio` to lean on. This module declares exactly the handful of C
//! symbols the reactor needs — `std` already links the platform libc,
//! so the declarations resolve at link time — and wraps them in a tiny
//! safe [`Poller`] / [`Waker`] pair:
//!
//! * on Linux, [`Poller`] is an `epoll` instance (level-triggered, one
//!   `u64` token per registration);
//! * on other unixes it falls back to `poll(2)` over a registration
//!   table (O(n) per wait, but the semantics are identical);
//! * [`Waker`] is the classic self-pipe: any thread writes one byte to
//!   wake the reactor out of its wait.
//!
//! Everything is level-triggered on purpose: the reactor re-computes
//! each connection's interest set after every state change, and
//! level-triggered readiness makes "stop reading while the execution
//! tier is saturated, resume later" a pure interest change with no
//! risk of a lost edge.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

#[cfg(not(unix))]
compile_error!("the RDS reactor requires a unix host (epoll or poll(2))");

extern "C" {
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

/// Re-issues `listen(2)` on an already-listening socket to widen its
/// accept queue past std's fixed 128 (the kernel clamps to
/// `somaxconn`). A 128-deep queue overflows under a connection flood,
/// and each overflow costs the connecting peer a full SYN-retransmit
/// timeout — the reactor's connection table is sized in the thousands,
/// so its accept queue must be too. Best-effort: on failure the
/// original backlog stands.
pub(crate) fn widen_listen_backlog(fd: RawFd, backlog: usize) {
    let backlog = c_int::try_from(backlog.min(65_535)).unwrap_or(c_int::MAX);
    let _ = unsafe { listen(fd, backlog) };
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4;

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

/// `struct rlimit` — `rlim_t` is 64-bit on every supported target.
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

/// Raises the soft `RLIMIT_NOFILE` toward `want` file descriptors,
/// best-effort (the hard limit, or for root whatever the kernel
/// allows, caps it). Returns the soft limit in effect afterwards, or
/// the current one when nothing could be changed. Callers that expect
/// thousands of connections (`mbd-server`, the E11 bench) invoke this
/// before binding; the library itself never changes process limits.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    // Try the straightforward raise first (may exceed the hard limit
    // when running as root), then fall back to the hard limit.
    for attempt in
        [RLimit { cur: want, max: want.max(lim.max) }, RLimit { cur: lim.max, max: lim.max }]
    {
        if unsafe { setrlimit(RLIMIT_NOFILE, &attempt) } == 0 {
            let mut now = RLimit { cur: 0, max: 0 };
            if unsafe { getrlimit(RLIMIT_NOFILE, &mut now) } == 0 {
                return now.cur;
            }
        }
    }
    lim.cur
}

/// Puts `fd` into nonblocking mode.
pub(crate) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest { readable: true, writable: false };
}

/// One readiness report from [`Poller::wait`]. Hangups and errors are
/// folded into `readable` (a read will observe the EOF/error) and also
/// flagged so the reactor can drop the connection without a read.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
}

/// Self-pipe wakeup: `wake()` may be called from any thread; the
/// reactor registers [`Waker::fd`] for readability and calls `drain()`
/// when it fires.
#[derive(Debug)]
pub(crate) struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    pub(crate) fn new() -> io::Result<Waker> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker { read_fd: fds[0], write_fd: fds[1] };
        set_nonblocking(waker.read_fd)?;
        set_nonblocking(waker.write_fd)?;
        Ok(waker)
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the reactor. A full pipe means a wake is already pending,
    /// so the short write is deliberately ignored.
    pub(crate) fn wake(&self) {
        let byte = 1u8;
        let _ = unsafe { write(self.write_fd, (&raw const byte).cast(), 1) };
    }

    /// Consumes queued wake bytes so the level-triggered poller quiets
    /// down until the next `wake()`.
    pub(crate) fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, sink.as_mut_ptr().cast(), sink.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

fn millis(timeout: Option<Duration>) -> c_int {
    match timeout {
        // Round up so a 100µs timeout does not become a busy-loop 0.
        Some(d) => d.as_nanos().div_ceil(1_000_000).min(c_int::MAX as u128) as c_int,
        None => -1,
    }
}

#[cfg(target_os = "linux")]
pub(crate) use epoll::Poller;
#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) use pollfd::Poller;

#[cfg(target_os = "linux")]
mod epoll {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // The kernel ABI packs the struct on x86-64 (12 bytes).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        // RDHUP rides with read interest only: a half-closed peer must
        // not re-trigger a level-triggered poller once the reactor has
        // seen the EOF and dropped read interest.
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An epoll instance holding every reactor registration.
    #[derive(Debug)]
    pub(crate) struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask(interest), data: token as u64 };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub(crate) fn reregister(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::default())
        }

        /// Waits for readiness, filling `out`. A signal interruption
        /// returns an empty set rather than an error.
        pub(crate) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, millis(timeout))
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &buf[..n as usize] {
                let bits = { *ev }.events;
                let token = { *ev }.data as usize;
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod pollfd {
    use super::*;
    use std::collections::HashMap;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_uint, timeout: c_int) -> c_int;
    }

    /// `poll(2)` fallback: a registration table rebuilt into a pollfd
    /// array on every wait. O(n), but behaviourally identical to the
    /// epoll backend.
    #[derive(Debug)]
    pub(crate) struct Poller {
        registered: parking_lot::Mutex<HashMap<RawFd, (usize, Interest)>>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller { registered: parking_lot::Mutex::new(HashMap::new()) })
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.registered.lock().insert(fd, (token, interest));
            Ok(())
        }

        pub(crate) fn reregister(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.registered.lock().insert(fd, (token, interest));
            Ok(())
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().remove(&fd);
            Ok(())
        }

        pub(crate) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            let (mut fds, tokens): (Vec<PollFd>, Vec<usize>) = {
                let reg = self.registered.lock();
                let mut fds = Vec::with_capacity(reg.len());
                let mut tokens = Vec::with_capacity(reg.len());
                for (&fd, &(token, interest)) in reg.iter() {
                    let mut events = 0i16;
                    if interest.readable {
                        events |= POLLIN;
                    }
                    if interest.writable {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd { fd, events, revents: 0 });
                    tokens.push(token);
                }
                (fds, tokens)
            };
            let n = unsafe {
                poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_uint, millis(timeout))
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_wakes_the_poller_across_threads() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), 7, Interest::READ).unwrap();

        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        waker.drain();
        t.join().unwrap();

        // Drained: an immediate wait reports nothing.
        poller.wait(&mut events, Some(Duration::from_millis(1))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readability_is_reported_with_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(server_side.as_raw_fd(), 42, Interest::READ).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        poller.deregister(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn interest_changes_gate_writability_reports() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        // Read-only interest: an idle writable socket must stay quiet.
        poller.register(server_side.as_raw_fd(), 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        // Adding write interest surfaces it immediately.
        poller
            .reregister(server_side.as_raw_fd(), 1, Interest { readable: true, writable: true })
            .unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }

    #[test]
    fn nofile_limit_query_is_sane() {
        let now = raise_nofile_limit(0);
        assert!(now > 0, "soft RLIMIT_NOFILE should be queryable");
    }
}
