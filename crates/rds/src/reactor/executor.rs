//! The execution tier: the bounded worker pool, demoted.
//!
//! Workers no longer own sockets. The reactor hands them complete
//! request frames through a bounded queue (the old accept backlog,
//! reinterpreted: the bound now counts *requests*, not connections);
//! each worker runs the handler under `catch_unwind` and pushes the
//! encoded response — or a panic marker — onto a completion queue,
//! then wakes the reactor to deliver it. A full queue makes
//! [`Executor::submit`] fail fast so the reactor can shed that one
//! request with an explicit `Busy` frame instead of stalling every
//! connection behind it.

use super::sys::Waker;
use super::Metrics;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Instant;

/// The server's request handler: a complete frame in, an encoded
/// response out.
pub(crate) type RespondFn = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// One request frame bound for a worker.
pub(crate) struct Job {
    /// The reactor token of the connection that sent the frame.
    pub token: usize,
    pub frame: Vec<u8>,
    /// Socket-read interval that produced the frame (from the reactor;
    /// becomes the request's `rds.conn.read` span).
    pub recv_start: Instant,
    pub recv_done: Instant,
    /// When the reactor queued it — `rds.tcp.queue_wait` measures
    /// execution-tier saturation from here.
    pub enqueued: Instant,
}

/// A finished job on its way back to the reactor.
pub(crate) struct Completion {
    pub token: usize,
    /// `None`: the handler panicked — the reactor closes the
    /// connection (panic poisons the connection, never a worker).
    pub response: Option<Vec<u8>>,
}

struct ExecShared {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
    stop: AtomicBool,
    completions: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
    metrics: Arc<Metrics>,
    handler_panics: Arc<AtomicU64>,
    on_panic: Option<Arc<dyn Fn() + Send + Sync>>,
    respond: RespondFn,
}

/// Handle owned by the reactor.
pub(crate) struct Executor {
    shared: Arc<ExecShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    pub(crate) fn spawn(
        workers: usize,
        capacity: usize,
        respond: RespondFn,
        waker: Arc<Waker>,
        metrics: Arc<Metrics>,
        handler_panics: Arc<AtomicU64>,
        on_panic: Option<Arc<dyn Fn() + Send + Sync>>,
    ) -> Executor {
        let shared = Arc::new(ExecShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            stop: AtomicBool::new(false),
            completions: Mutex::new(Vec::new()),
            waker,
            metrics,
            handler_panics,
            on_panic,
            respond,
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Executor { shared, workers }
    }

    /// Queues a job, or hands it back when the tier is saturated (the
    /// caller sheds it).
    pub(crate) fn submit(&self, job: Job) -> Result<(), Job> {
        let mut queue = self.shared.queue.lock();
        if queue.len() >= self.shared.capacity {
            return Err(job);
        }
        queue.push_back(job);
        drop(queue);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Requests queued but not yet picked up (drives the health gauge).
    pub(crate) fn queue_depth(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Moves all pending completions into `out`.
    pub(crate) fn take_completions(&self, out: &mut Vec<Completion>) {
        let mut pending = self.shared.completions.lock();
        out.append(&mut pending);
    }

    /// Stops the workers and joins them; each finishes its current job
    /// first. Queued-but-unstarted jobs are dropped (their connections
    /// are being closed anyway).
    pub(crate) fn shutdown(&mut self) {
        {
            // Flip the flag under the queue lock: a worker between its
            // stop check and its wait holds this mutex, so it either
            // sees the flag or is already parked when the notify fires.
            let _queue = self.shared.queue.lock();
            self.shared.stop.store(true, Ordering::Relaxed);
        }
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &ExecShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.ready.wait(queue).expect("queue mutex cannot be poisoned");
            }
        };
        shared.metrics.queue_wait.record_duration(job.enqueued.elapsed());
        // Hand the reactor-side timing to the RDS front-end, which
        // stitches it into the request's span tree with exact intervals.
        crate::server::set_job_timing(crate::server::JobTiming {
            recv_start: job.recv_start,
            recv_done: job.recv_done,
            enqueued: job.enqueued,
            dequeued: Instant::now(),
        });
        let span = shared.metrics.request.start();
        let outcome = catch_unwind(AssertUnwindSafe(|| (shared.respond)(&job.frame)));
        drop(span);
        let response = match outcome {
            Ok(bytes) => Some(bytes),
            Err(_) => {
                shared.handler_panics.fetch_add(1, Ordering::Relaxed);
                shared.metrics.panics.inc();
                if let Some(hook) = &shared.on_panic {
                    hook();
                }
                None
            }
        };
        shared.completions.lock().push(Completion { token: job.token, response });
        shared.waker.wake();
    }
}
