//! Per-connection state machine: incremental frame reassembly and
//! buffered, vectored writes.
//!
//! The reactor thread owns every [`Connection`]. A readiness event
//! never blocks: reads pull whatever the kernel has buffered (up to a
//! fairness budget) into the [`FrameAssembler`], writes drain the
//! response queue until the socket would block, and everything else —
//! submission to the execution tier, interest recomputation, timeout
//! sweeps — happens on the reactor's clock.

use crate::tcp::MAX_FRAME;
use crate::RdsError;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Bytes read from one connection per readiness event before the
/// reactor moves on — fairness toward the other connections. Leftover
/// kernel-buffered bytes re-trigger the (level-triggered) poller.
const READ_BUDGET: usize = 256 * 1024;

/// Read chunk size: memory grows only as payload bytes arrive, never
/// from a hostile length prefix.
const READ_CHUNK: usize = 64 * 1024;

/// At most this many queued responses are stitched into one vectored
/// write.
const WRITE_BATCH: usize = 64;

/// Incremental length-prefixed frame reassembly.
///
/// Feed raw bytes with [`FrameAssembler::push`]; complete frames come
/// out as they close. Partial frames persist across calls, so the
/// blocking `read_exact` loops of the old transport become a pure
/// state machine the reactor can drive from readiness events. The
/// buffer holds only bytes actually received — a length prefix
/// claiming [`MAX_FRAME`] allocates nothing up front.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// True while a frame has started but not yet closed (drives the
    /// frame timeout).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Bytes buffered toward the next frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Appends received bytes and extracts every frame they complete.
    ///
    /// # Errors
    ///
    /// A length prefix exceeding [`MAX_FRAME`] poisons the stream
    /// (framing can no longer be trusted) and the connection must be
    /// dropped.
    pub fn push(&mut self, data: &[u8]) -> Result<Vec<Vec<u8>>, RdsError> {
        self.buf.extend_from_slice(data);
        let mut frames = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME as usize {
                return Err(RdsError::Transport {
                    message: format!("oversized frame ({len} bytes)"),
                });
            }
            if self.buf.len() < 4 + len {
                break;
            }
            frames.push(self.buf[4..4 + len].to_vec());
            self.buf.drain(..4 + len);
        }
        // A connection that once carried a large frame should not pin
        // its high-water capacity forever.
        if self.buf.is_empty() && self.buf.capacity() > READ_CHUNK {
            self.buf.shrink_to(READ_CHUNK);
        }
        Ok(frames)
    }
}

/// What a read pass produced.
pub(crate) struct ReadOutcome {
    pub frames: Vec<Vec<u8>>,
    pub eof: bool,
}

/// A complete frame waiting for a free in-flight slot, carrying the
/// socket-read interval that produced it (feeds the request's
/// `rds.conn.read` span).
pub(crate) struct ParkedFrame {
    pub bytes: Vec<u8>,
    /// When reading toward this frame began: the prior partial read if
    /// one was pending, else the read pass that completed it.
    pub recv_start: Instant,
    /// When the frame was completely assembled.
    pub recv_done: Instant,
}

/// One live connection owned by the reactor.
pub(crate) struct Connection {
    pub stream: TcpStream,
    pub assembler: FrameAssembler,
    /// Complete frames waiting for a free in-flight slot.
    pub parked_frames: VecDeque<ParkedFrame>,
    /// Queued wire bytes (each entry is one length-prefixed response);
    /// the front entry may be partially written.
    write_queue: VecDeque<Vec<u8>>,
    write_offset: usize,
    /// Requests submitted to the execution tier, not yet answered.
    pub in_flight: usize,
    /// Drives the idle timeout.
    pub last_activity: Instant,
    /// Set while the assembler is mid-frame; drives the frame timeout.
    pub frame_started: Option<Instant>,
    /// Peer sent EOF: read no more, but finish in-flight work and
    /// flush replies before closing (pipelined peers half-close).
    pub peer_closed: bool,
    /// The interest set currently registered with the poller.
    pub registered: super::sys::Interest,
}

impl Connection {
    pub(crate) fn new(stream: TcpStream, now: Instant) -> Connection {
        Connection {
            stream,
            assembler: FrameAssembler::new(),
            parked_frames: VecDeque::new(),
            write_queue: VecDeque::new(),
            write_offset: 0,
            in_flight: 0,
            last_activity: now,
            frame_started: None,
            peer_closed: false,
            registered: super::sys::Interest::READ,
        }
    }

    /// Drains readable bytes into the assembler (bounded by the
    /// fairness budget) and returns the frames they completed.
    ///
    /// # Errors
    ///
    /// Socket errors or a poisoned framing stream; either way the
    /// caller drops the connection.
    pub(crate) fn read_ready(&mut self) -> Result<ReadOutcome, RdsError> {
        let mut out = ReadOutcome { frames: Vec::new(), eof: false };
        let mut chunk = [0u8; READ_CHUNK];
        let mut budget = READ_BUDGET;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    out.eof = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    out.frames.append(&mut self.assembler.push(&chunk[..n])?);
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(RdsError::Transport { message: e.to_string() });
                }
            }
        }
        self.frame_started = if self.assembler.mid_frame() {
            Some(self.frame_started.unwrap_or_else(Instant::now))
        } else {
            None
        };
        Ok(out)
    }

    /// Queues one response (adding the length prefix) for writing.
    pub(crate) fn queue_response(&mut self, payload: &[u8]) {
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        framed.extend_from_slice(payload);
        self.write_queue.push_back(framed);
    }

    pub(crate) fn wants_write(&self) -> bool {
        !self.write_queue.is_empty()
    }

    /// Writes as much of the queue as the socket accepts, batching
    /// queued responses into vectored writes. Returns `true` when the
    /// queue is empty.
    ///
    /// # Errors
    ///
    /// Socket errors; the caller drops the connection.
    pub(crate) fn flush(&mut self) -> Result<bool, RdsError> {
        while !self.write_queue.is_empty() {
            let slices: Vec<IoSlice<'_>> = self
                .write_queue
                .iter()
                .take(WRITE_BATCH)
                .enumerate()
                .map(|(i, entry)| {
                    if i == 0 {
                        IoSlice::new(&entry[self.write_offset..])
                    } else {
                        IoSlice::new(entry)
                    }
                })
                .collect();
            let written = match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(RdsError::Transport { message: "peer stopped reading".to_string() })
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(RdsError::Transport { message: e.to_string() }),
            };
            self.last_activity = Instant::now();
            let mut remaining = written;
            while remaining > 0 {
                let front_left = self.write_queue[0].len() - self.write_offset;
                if remaining >= front_left {
                    self.write_queue.pop_front();
                    self.write_offset = 0;
                    remaining -= front_left;
                } else {
                    self.write_offset += remaining;
                    remaining = 0;
                }
            }
        }
        Ok(true)
    }

    /// The interest set this connection's state calls for.
    pub(crate) fn desired_interest(
        &self,
        max_in_flight: usize,
        draining: bool,
    ) -> super::sys::Interest {
        super::sys::Interest {
            // Backpressure: stop reading while the peer's pipelining
            // window is saturated or we are shutting down.
            readable: !self.peer_closed
                && !draining
                && self.parked_frames.is_empty()
                && self.in_flight < max_in_flight,
            writable: self.wants_write(),
        }
    }

    /// True when nothing remains to do for this connection.
    pub(crate) fn idle_complete(&self) -> bool {
        self.in_flight == 0 && self.parked_frames.is_empty() && !self.wants_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut f = (payload.len() as u32).to_be_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn assembler_reassembles_across_arbitrary_splits() {
        let wire: Vec<u8> = [framed(b"alpha"), framed(b"bee"), framed(&[7u8; 300])].concat();
        // Feed every split position byte-by-byte-ish: 1, 2, 3… chunks.
        for step in 1..=7usize {
            let mut asm = FrameAssembler::new();
            let mut got = Vec::new();
            for chunk in wire.chunks(step) {
                got.extend(asm.push(chunk).unwrap());
            }
            assert_eq!(got.len(), 3, "step {step}");
            assert_eq!(got[0], b"alpha");
            assert_eq!(got[1], b"bee");
            assert_eq!(got[2], vec![7u8; 300]);
            assert!(!asm.mid_frame());
        }
    }

    #[test]
    fn assembler_extracts_multiple_frames_from_one_push() {
        let mut asm = FrameAssembler::new();
        let wire: Vec<u8> = [framed(b"a"), framed(b"b"), framed(b"c")].concat();
        let frames = asm.push(&wire).unwrap();
        assert_eq!(frames, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn assembler_reports_mid_frame_state() {
        let mut asm = FrameAssembler::new();
        let wire = framed(b"hello world");
        assert!(asm.push(&wire[..7]).unwrap().is_empty());
        assert!(asm.mid_frame());
        assert_eq!(asm.pending_bytes(), 7);
        let frames = asm.push(&wire[7..]).unwrap();
        assert_eq!(frames, vec![b"hello world".to_vec()]);
        assert!(!asm.mid_frame());
    }

    #[test]
    fn assembler_rejects_hostile_length_prefix_without_allocating() {
        let mut asm = FrameAssembler::new();
        let mut wire = (MAX_FRAME + 1).to_be_bytes().to_vec();
        wire.extend_from_slice(b"abc");
        assert!(asm.push(&wire).is_err());
        // Nothing near the claimed 16 MiB was ever buffered.
        assert!(asm.buf.capacity() < 1024);
    }

    #[test]
    fn assembler_handles_empty_frames() {
        let mut asm = FrameAssembler::new();
        let frames = asm.push(&framed(b"")).unwrap();
        assert_eq!(frames, vec![Vec::<u8>::new()]);
    }
}
