//! The reactor event loop and the public [`TcpServer`] handle.
//!
//! One reactor thread owns every socket: the listener, a self-pipe
//! waker and all accepted connections. It never blocks on any of them —
//! readiness events drive per-connection state machines
//! ([`super::conn::Connection`]), complete frames are handed to the
//! execution tier ([`super::executor::Executor`]), and finished
//! responses come back through the completion queue (the workers wake
//! the reactor through the pipe). Idle connections cost one fd and a
//! few hundred bytes of state — no thread, which is what decouples the
//! connection ceiling from the worker count.
//!
//! Shedding happens at two levels, both with an explicit `Busy` frame:
//! a connection beyond `max_connections` is answered and closed at
//! accept (request id 0 — nothing was read), and a request that finds
//! the execution queue full is answered on its own connection with the
//! *request's* id, so pipelining clients can attribute the failure.
//!
//! Shutdown is bounded: the reactor stops accepting, stops reading,
//! delivers in-flight completions until `drain_deadline`, then closes
//! every socket and joins the workers — an idle peer can no longer
//! stall it (the old pool joined workers parked in blocking reads).

use super::conn::Connection;
use super::executor::{Completion, Executor, Job};
use super::sys::{Event, Interest, Poller, Waker};
use super::Metrics;
use crate::tcp::{default_shed_response, ServerHealth, TcpServerConfig};
use crate::RdsError;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_WAKE: usize = 0;
const TOKEN_LISTENER: usize = 1;
const FIRST_CONN_TOKEN: usize = 2;

fn io_err(e: std::io::Error) -> RdsError {
    RdsError::Transport { message: e.to_string() }
}

/// State shared between the reactor thread and the handle.
struct ServerShared {
    stop: AtomicBool,
    waker: Arc<Waker>,
    rejected: AtomicU64,
    handler_panics: Arc<AtomicU64>,
    open: AtomicU64,
    health: AtomicU8,
    metrics: Arc<Metrics>,
}

impl ServerShared {
    fn set_health(&self, next: ServerHealth) {
        self.health.store(next.code(), Ordering::Relaxed);
        self.metrics.health.set(u64::from(next.code()));
    }
}

/// Server side: a readiness-driven reactor feeding a bounded execution
/// tier. Public API is unchanged from the worker-pool era — `spawn`,
/// `spawn_with`, `local_addr`, `health`, `sheds`, `shutdown` — but
/// concurrency is now fd-bound, not thread-bound, and one connection
/// may pipeline many requests (out-of-order completion, replies keyed
/// by request id).
pub struct TcpServer {
    local: SocketAddr,
    shared: Arc<ServerShared>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("local", &self.local)
            .field("open", &self.open_connections())
            .field("rejected", &self.connections_rejected())
            .finish()
    }
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// reactor with the default configuration. `respond` runs on
    /// execution-tier workers and must be thread-safe; with pipelining
    /// several invocations for one connection may run concurrently.
    ///
    /// # Errors
    ///
    /// Bind or reactor-setup failures as [`RdsError::Transport`].
    pub fn spawn<A, F>(addr: A, respond: F) -> Result<TcpServer, RdsError>
    where
        A: ToSocketAddrs,
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        TcpServer::spawn_with(addr, TcpServerConfig::default(), respond)
    }

    /// [`TcpServer::spawn`] with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Bind or reactor-setup failures as [`RdsError::Transport`].
    pub fn spawn_with<A, F>(
        addr: A,
        config: TcpServerConfig,
        respond: F,
    ) -> Result<TcpServer, RdsError>
    where
        A: ToSocketAddrs,
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        let local = listener.local_addr().map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        // std listens with a fixed backlog of 128; a reactor sized for
        // thousands of connections needs an accept queue to match, or a
        // connect burst stalls on SYN retransmits.
        super::sys::widen_listen_backlog(listener.as_raw_fd(), config.max_connections.max(1024));

        let telemetry = config.telemetry.clone().unwrap_or_default();
        let metrics = Arc::new(Metrics::new(&telemetry));
        let waker = Arc::new(Waker::new().map_err(io_err)?);
        let poller = Poller::new().map_err(io_err)?;
        poller.register(waker.fd(), TOKEN_WAKE, Interest::READ).map_err(io_err)?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).map_err(io_err)?;

        let handler_panics = Arc::new(AtomicU64::new(0));
        let shared = Arc::new(ServerShared {
            stop: AtomicBool::new(false),
            waker: Arc::clone(&waker),
            rejected: AtomicU64::new(0),
            handler_panics: Arc::clone(&handler_panics),
            open: AtomicU64::new(0),
            health: AtomicU8::new(ServerHealth::Accepting.code()),
            metrics: Arc::clone(&metrics),
        });
        shared.set_health(ServerHealth::Accepting);

        let executor = Executor::spawn(
            config.workers,
            config.backlog,
            Arc::new(respond),
            waker,
            metrics,
            handler_panics,
            config.on_panic.clone(),
        );
        let shed_fn =
            config.shed_response.clone().unwrap_or_else(|| Arc::new(default_shed_response));
        let reactor = Reactor {
            poller,
            listener: Some(listener),
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            shared: Arc::clone(&shared),
            executor,
            degraded_at: (config.backlog.max(1) / 2).max(1),
            config,
            shed_fn,
            outstanding: 0,
            draining: false,
            drain_until: None,
        };
        let handle = std::thread::spawn(move || reactor.run());
        Ok(TcpServer { local, shared, reactor: Some(handle) })
    }

    /// The bound address (including the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Requests (or over-cap connections) answered with `Busy` because
    /// the execution queue — or the connection table — was full.
    pub fn connections_rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Alias of [`TcpServer::connections_rejected`]: the protocol-level
    /// view the retry layer watches.
    pub fn sheds(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Connections currently registered with the reactor.
    pub fn open_connections(&self) -> u64 {
        self.shared.open.load(Ordering::Relaxed)
    }

    /// The server's current coarse health.
    pub fn health(&self) -> ServerHealth {
        ServerHealth::from_code(self.shared.health.load(Ordering::Relaxed))
    }

    /// Handler panics survived (each cost its connection, not a worker).
    pub fn handler_panics(&self) -> u64 {
        self.shared.handler_panics.load(Ordering::Relaxed)
    }

    /// Signals shutdown and joins the reactor (which in turn drains
    /// in-flight requests within `drain_deadline`, closes every socket
    /// and joins the execution tier) — on return no server thread is
    /// running, however many idle connections were open.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// The event loop's state, owned by the reactor thread.
struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    conns: HashMap<usize, Connection>,
    /// Monotonic: tokens are never reused, so a completion for a
    /// closed connection can never be misdelivered to a new one.
    next_token: usize,
    shared: Arc<ServerShared>,
    executor: Executor,
    config: TcpServerConfig,
    shed_fn: Arc<dyn Fn(i64) -> Vec<u8> + Send + Sync>,
    /// Execution-queue depth at which health degrades.
    degraded_at: usize,
    /// Jobs submitted to the execution tier and not yet completed
    /// (counts completions bound for already-closed connections too).
    outstanding: usize,
    draining: bool,
    drain_until: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut completions: Vec<Completion> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            let mut timeout = self.config.idle_poll;
            if let Some(until) = self.drain_until {
                timeout = timeout.min(until.saturating_duration_since(Instant::now()));
            }
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A broken poller is unrecoverable: fall through to an
                // orderly drain instead of spinning.
                self.shared.stop.store(true, Ordering::Relaxed);
            }
            let now = Instant::now();
            if self.shared.stop.load(Ordering::Relaxed) && !self.draining {
                self.enter_drain(now);
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKE => self.shared.waker.drain(),
                    TOKEN_LISTENER => {
                        if !self.draining {
                            self.accept_ready();
                        }
                    }
                    token => self.conn_event(token, ev),
                }
            }
            self.executor.take_completions(&mut completions);
            for c in completions.drain(..) {
                self.apply_completion(c);
            }
            if now.duration_since(last_sweep) >= self.config.idle_poll {
                self.sweep(now);
                last_sweep = now;
            }
            self.update_health();
            if self.draining {
                let drained =
                    self.outstanding == 0 && self.conns.values().all(|c| !c.wants_write());
                let expired = self.drain_until.is_some_and(|u| Instant::now() >= u);
                if drained || expired {
                    break;
                }
            }
        }
        // Bounded-deadline cleanup: close every socket (idle ones
        // included — nothing to wait for), then join the workers.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
        self.executor.shutdown();
        self.shared.set_health(ServerHealth::Draining);
    }

    fn enter_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_until = Some(now + self.config.drain_deadline);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        self.shared.set_health(ServerHealth::Draining);
        // Drop read interest everywhere; pending writes still flush.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.finish_touch(token);
        }
    }

    fn accept_ready(&mut self) {
        let max_conns = self.config.max_connections.max(1);
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= max_conns {
                        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                        self.shared.metrics.rejected.inc();
                        self.shared.metrics.shed.inc();
                        if let Some(hook) = &self.config.on_shed {
                            hook();
                        }
                        // No request was read, so the Busy frame can
                        // only carry id 0.
                        best_effort_busy(stream, &(self.shed_fn)(0));
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.register(stream.as_raw_fd(), token, Interest::READ).is_err() {
                        continue;
                    }
                    self.conns.insert(token, Connection::new(stream, Instant::now()));
                    self.shared.metrics.active.inc();
                    self.shared.open.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: usize, ev: Event) {
        let mut close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if ev.readable && !conn.peer_closed {
                // The read interval attributed to frames completed by
                // this pass starts at the prior partial read, if any.
                let read_began = conn.frame_started.unwrap_or_else(Instant::now);
                match conn.read_ready() {
                    Ok(outcome) => {
                        let recv_done = Instant::now();
                        conn.parked_frames.extend(outcome.frames.into_iter().map(|bytes| {
                            super::conn::ParkedFrame { bytes, recv_start: read_began, recv_done }
                        }));
                        if outcome.eof {
                            conn.peer_closed = true;
                        }
                    }
                    Err(_) => close = true,
                }
            } else if ev.error {
                // Hangup/error with no readable work left.
                close = true;
            }
            if !close && ev.writable && conn.wants_write() {
                close = conn.flush().is_err();
            }
        }
        if close {
            self.close_conn(token);
            return;
        }
        self.pump(token);
        self.finish_touch(token);
    }

    /// Moves parked frames into the execution tier while the
    /// connection has in-flight headroom; sheds (per request, with the
    /// request's id) when the tier is saturated.
    fn pump(&mut self, token: usize) {
        let max_in_flight = self.config.max_in_flight_per_conn.max(1);
        loop {
            let parked = {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if conn.in_flight >= max_in_flight {
                    return;
                }
                match conn.parked_frames.pop_front() {
                    Some(parked) => parked,
                    None => return,
                }
            };
            match self.executor.submit(Job {
                token,
                frame: parked.bytes,
                recv_start: parked.recv_start,
                recv_done: parked.recv_done,
                enqueued: Instant::now(),
            }) {
                Ok(()) => {
                    self.outstanding += 1;
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.in_flight += 1;
                    }
                }
                Err(job) => {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.rejected.inc();
                    self.shared.metrics.shed.inc();
                    if let Some(hook) = &self.config.on_shed {
                        hook();
                    }
                    let id = crate::codec::peek_request_id(&job.frame).unwrap_or(0);
                    let busy = (self.shed_fn)(id);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.queue_response(&busy);
                    }
                }
            }
        }
    }

    fn apply_completion(&mut self, c: Completion) {
        self.outstanding = self.outstanding.saturating_sub(1);
        {
            let Some(conn) = self.conns.get_mut(&c.token) else { return };
            match c.response {
                Some(bytes) => {
                    conn.in_flight = conn.in_flight.saturating_sub(1);
                    conn.queue_response(&bytes);
                }
                None => {
                    // Handler panic: poison exactly this connection.
                    self.close_conn(c.token);
                    return;
                }
            }
        }
        self.pump(c.token);
        self.finish_touch(c.token);
    }

    /// Flush opportunistically, close a finished half-closed peer, and
    /// reconcile the poller's interest set with the connection state.
    fn finish_touch(&mut self, token: usize) {
        let max_in_flight = self.config.max_in_flight_per_conn.max(1);
        let draining = self.draining;
        let mut close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if (conn.wants_write() && conn.flush().is_err())
                || (conn.peer_closed && conn.idle_complete())
            {
                close = true;
            } else {
                let desired = conn.desired_interest(max_in_flight, draining);
                if desired != conn.registered {
                    let fd = conn.stream.as_raw_fd();
                    if self.poller.reregister(fd, token, desired).is_ok() {
                        conn.registered = desired;
                    }
                }
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.metrics.active.dec();
            self.shared.open.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Periodic timeout sweep: frame deadlines and (when configured)
    /// idle deadlines — no parked thread per connection required.
    fn sweep(&mut self, now: Instant) {
        let mut doomed = Vec::new();
        for (&token, conn) in &self.conns {
            if let Some(started) = conn.frame_started {
                if now.duration_since(started) >= self.config.frame_timeout {
                    doomed.push(token);
                    continue;
                }
            }
            if let Some(idle) = self.config.idle_timeout {
                if conn.idle_complete() && now.duration_since(conn.last_activity) >= idle {
                    doomed.push(token);
                }
            }
        }
        for token in doomed {
            self.close_conn(token);
        }
    }

    fn update_health(&mut self) {
        let next = if self.draining {
            ServerHealth::Draining
        } else if self.executor.queue_depth() >= self.degraded_at
            || self.conns.len() >= self.config.max_connections.max(1)
        {
            ServerHealth::Degraded
        } else {
            ServerHealth::Accepting
        };
        self.shared.set_health(next);
    }
}

/// Answers an over-cap connection with a `Busy` frame, best-effort and
/// briefly: short write timeout, then a short drain read so the close
/// emits FIN rather than an RST that could discard the frame from the
/// peer's receive buffer.
fn best_effort_busy(mut stream: TcpStream, frame: &[u8]) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    if crate::tcp::write_frame(&mut stream, frame).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut sink = [0u8; 1024];
    let _ = stream.read(&mut sink);
}
