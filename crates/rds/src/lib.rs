//! RDS — the Remote Delegation Service protocol.
//!
//! RDS is the wire protocol between delegating managers and elastic
//! processes. As in the prototype, message headers are encoded with ASN.1
//! BER (via the shared [`ber`] crate) and carry a principal handle plus an
//! optional MD5 keyed digest (the authentication the SOS server added).
//!
//! The protocol verbs mirror the paper's delegation primitives:
//!
//! | Verb | Effect |
//! |---|---|
//! | `DelegateProgram` | transfer a dp (source) to the server's repository |
//! | `DeleteProgram`   | remove a dp from the repository |
//! | `Instantiate`     | create a dpi (thread) from a stored dp |
//! | `Invoke`          | run an entry point of a dpi with arguments |
//! | `Suspend`/`Resume`/`Terminate` | dpi lifecycle control |
//! | `SendMessage`     | post to a dpi's mailbox |
//! | `ListPrograms` / `ListInstances` | introspection |
//!
//! The crate is transport-neutral: [`Transport`] abstracts the
//! request/response channel, with [`LoopbackTransport`] (in-process) and
//! [`ChannelTransport`] (cross-thread, used by the threaded MbD server)
//! provided. Performance experiments run the same codec over `netsim`.
//!
//! The session layer is fault-tolerant (see `docs/RDS.md`): clients
//! retry delivery failures under a [`RetryPolicy`] (bounded attempts,
//! seeded-jitter backoff, per-request deadline), re-sending identical
//! frames; servers suppress the resulting duplicates with a bounded
//! per-principal [`DedupCache`] that replays the original encoded
//! response (exactly-once effects); a saturated [`TcpServer`] sheds
//! individual requests with an explicit `Busy` frame carrying the shed
//! request's id and exposes its [`ServerHealth`]; and
//! [`FaultTransport`] / [`FaultDuplex`] inject deterministic seeded
//! faults (drop, duplicate, delay, truncate, disconnect) around any
//! channel for chaos testing.
//!
//! Over TCP the server is a readiness-driven [`reactor`]: one event
//! loop owns every socket (idle connections cost a file descriptor,
//! not a thread) and a bounded worker pool executes handlers. A
//! connection may *pipeline* requests — many in flight, answered out
//! of order, matched by request id — via the windowed [`RdsPipeline`]
//! client; the serial [`RdsClient`] keeps working unchanged.
//!
//! # Examples
//!
//! ```
//! use rds::{RdsRequest, codec};
//! use mbd_auth::Principal;
//!
//! let req = RdsRequest::ListPrograms;
//! let bytes = codec::encode_request(&req, &Principal::new("mgr"), 7, None);
//! let (decoded, principal, id) = codec::decode_request(&bytes, None).unwrap();
//! assert_eq!(decoded, req);
//! assert_eq!(principal.handle(), "mgr");
//! assert_eq!(id, 7);
//! ```

pub mod codec;
pub mod reactor;
pub mod tcp;

mod client;
mod dedup;
mod error;
mod fault;
mod msg;
mod pipeline;
mod retry;
mod server;
mod transport;

pub use client::RdsClient;
pub use dedup::{frame_fingerprint, DedupCache, DedupOutcome, DEFAULT_DEDUP_CAPACITY};
pub use error::{ErrorCode, RdsError};
pub use fault::{Fault, FaultConfig, FaultDuplex, FaultTransport};
pub use msg::{
    AlertStatus, AuditRecord, DpiId, DpiState, DpiSummary, MetricPoint, MetricSeries, RdsRequest,
    RdsResponse, SpanRecord, TraceContext,
};
pub use pipeline::{FrameDuplex, RdsPipeline, TcpDuplex};
pub use retry::RetryPolicy;
pub use server::{AuditEvent, RdsHandler, RdsServer};
pub use tcp::{ServerHealth, TcpServer, TcpServerConfig, TcpTransport};
pub use transport::{ChannelTransport, ChannelTransportServer, LoopbackTransport, Transport};
