//! TCP transport: RDS over real sockets.
//!
//! Messages are framed with a 4-byte big-endian length prefix (BER
//! messages are self-delimiting, but an explicit frame keeps the reader
//! trivial and bounds allocation). One TCP connection carries a sequence
//! of request/response exchanges; a serial client awaits each reply, a
//! pipelining client ([`crate::RdsPipeline`]) keeps several requests in
//! flight and matches replies by request id.
//!
//! The server side lives in [`crate::reactor`]: a readiness-driven
//! event loop owns every socket and hands complete frames to a bounded
//! execution tier, so idle connections cost a file descriptor instead
//! of a thread. This module keeps the wire-level pieces — framing
//! helpers, the re-dialing [`TcpTransport`] client, [`ServerHealth`]
//! and [`TcpServerConfig`] — and re-exports [`TcpServer`] so the
//! public path is unchanged from the worker-pool era. Frames are
//! byte-identical to the blocking implementation.

use crate::{RdsError, Transport};
use mbd_telemetry::{Counter, Telemetry};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use crate::reactor::TcpServer;

/// Upper bound on a framed message (16 MiB) — a delegation request
/// carrying a program will never legitimately approach this.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Frame payloads are read in chunks of this size, so a hostile length
/// prefix cannot make the reader allocate [`MAX_FRAME`] bytes up front —
/// memory grows only as payload bytes actually arrive.
const READ_CHUNK: usize = 64 * 1024;

fn io_err(e: std::io::Error) -> RdsError {
    RdsError::Transport { message: e.to_string() }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors, or an oversized frame.
pub fn write_frame<W: Write>(w: &mut W, bytes: &[u8]) -> Result<(), RdsError> {
    let len = u32::try_from(bytes.len())
        .map_err(|_| RdsError::Transport { message: "frame too large".to_string() })?;
    if len > MAX_FRAME {
        return Err(RdsError::Transport { message: "frame too large".to_string() });
    }
    w.write_all(&len.to_be_bytes()).map_err(io_err)?;
    w.write_all(bytes).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// I/O errors, or a frame exceeding [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, RdsError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err(e)),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(RdsError::Transport { message: format!("oversized frame ({len} bytes)") });
    }
    // Incremental, capped reads: the length prefix is untrusted input,
    // so never allocate the full claimed size before bytes arrive.
    let mut buf = Vec::new();
    let mut remaining = len as usize;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        let start = buf.len();
        buf.reserve_exact(take);
        buf.resize(start + take, 0);
        r.read_exact(&mut buf[start..]).map_err(io_err)?;
        remaining -= take;
    }
    Ok(Some(buf))
}

/// Client side: a persistent connection to an RDS server over TCP that
/// **re-dials on broken connections**.
///
/// The connection serializes exchanges under a lock, so one
/// `TcpTransport` may be shared by threads (each request waits its turn,
/// as with the prototype's single connection per manager). When an
/// exchange fails mid-flight the transport discards the connection
/// (its framing state is unknown), dials the peer once more and re-sends
/// the same frame — the caller's request-id stream is untouched, so a
/// deduplicating server recognizes any effect that already executed.
/// Reconnects are counted ([`TcpTransport::reconnects`]) and optionally
/// recorded into telemetry as `rds.reconnects`.
#[derive(Debug)]
pub struct TcpTransport {
    stream: Mutex<Option<TcpStream>>,
    peer: SocketAddr,
    reconnects: AtomicU64,
    reconnect_counter: Option<Counter>,
}

impl TcpTransport {
    /// Connects to an RDS server.
    ///
    /// # Errors
    ///
    /// Connection failures as [`RdsError::Transport`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpTransport, RdsError> {
        let stream = dial(&addr)?;
        let peer = stream.peer_addr().map_err(io_err)?;
        Ok(TcpTransport {
            stream: Mutex::new(Some(stream)),
            peer,
            reconnects: AtomicU64::new(0),
            reconnect_counter: None,
        })
    }

    /// Counts this transport's re-dials into `telemetry` as
    /// `rds.reconnects` (also readable via [`TcpTransport::reconnects`]).
    #[must_use]
    pub fn instrument(mut self, telemetry: &Telemetry) -> TcpTransport {
        self.reconnect_counter = Some(telemetry.counter("rds.reconnects"));
        self
    }

    /// The server's address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Successful re-dials after the initial connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    fn count_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = &self.reconnect_counter {
            counter.inc();
        }
    }
}

fn dial<A: ToSocketAddrs>(addr: &A) -> Result<TcpStream, RdsError> {
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    stream.set_nodelay(true).map_err(io_err)?;
    Ok(stream)
}

fn exchange(stream: &mut TcpStream, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
    write_frame(stream, bytes)?;
    read_frame(stream)?
        .ok_or_else(|| RdsError::Transport { message: "server closed the connection".to_string() })
}

impl Transport for TcpTransport {
    fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
        let mut guard = self.stream.lock();
        let redialed = guard.is_none();
        if guard.is_none() {
            *guard = Some(dial(&self.peer)?);
            self.count_reconnect();
        }
        let stream = guard.as_mut().expect("stream just ensured");
        match exchange(stream, bytes) {
            Ok(resp) => Ok(resp),
            Err(first_err) => {
                // The connection's framing state is unknown — drop it.
                // If it was freshly dialed, the peer is likely down;
                // otherwise re-dial once and re-send the same frame.
                *guard = None;
                if redialed {
                    return Err(first_err);
                }
                *guard = Some(dial(&self.peer)?);
                self.count_reconnect();
                let stream = guard.as_mut().expect("stream just ensured");
                match exchange(stream, bytes) {
                    Ok(resp) => Ok(resp),
                    Err(e) => {
                        *guard = None;
                        Err(e)
                    }
                }
            }
        }
    }
}

/// A [`TcpServer`]'s coarse health, derived from execution-queue
/// pressure, the connection-table fill and the shutdown flag, surfaced
/// through the `rds.tcp.health` gauge (and thus the `mbdTelemetry` OCP
/// subtree) so delegated agents can observe the transport's own state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerHealth {
    /// Normal operation: the execution queue has headroom.
    Accepting,
    /// Overloaded: the execution queue is at least half full (or the
    /// connection table is at capacity); requests may be shed with
    /// `Busy`.
    Degraded,
    /// Shutting down: no new connections will be served.
    Draining,
}

impl ServerHealth {
    /// Stable gauge value (0 accepting · 1 degraded · 2 draining).
    pub fn code(self) -> u8 {
        match self {
            ServerHealth::Accepting => 0,
            ServerHealth::Degraded => 1,
            ServerHealth::Draining => 2,
        }
    }

    pub(crate) fn from_code(code: u8) -> ServerHealth {
        match code {
            1 => ServerHealth::Degraded,
            2 => ServerHealth::Draining,
            _ => ServerHealth::Accepting,
        }
    }
}

impl std::fmt::Display for ServerHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ServerHealth::Accepting => "accepting",
            ServerHealth::Degraded => "degraded",
            ServerHealth::Draining => "draining",
        };
        f.write_str(s)
    }
}

/// Sizing and timing of a [`TcpServer`]: the reactor front-end and its
/// execution tier.
#[derive(Clone)]
pub struct TcpServerConfig {
    /// Execution-tier worker threads (each runs one request handler at
    /// a time; none owns a socket).
    pub workers: usize,
    /// Requests allowed to queue for a free worker; beyond this the
    /// reactor sheds the *request* with an explicit `Busy` frame
    /// carrying its id (the connection survives).
    pub backlog: usize,
    /// The reactor's tick: poll timeout, timeout-sweep cadence, and
    /// health-gauge refresh interval.
    pub idle_poll: Duration,
    /// Deadline for a started frame to arrive completely.
    pub frame_timeout: Duration,
    /// Close connections with no traffic and no in-flight work for
    /// this long; `None` (the default) keeps idle managers connected
    /// indefinitely — they cost one fd each, not a thread.
    pub idle_timeout: Option<Duration>,
    /// Connection-table capacity; a connection beyond it is answered
    /// with `Busy` (request id 0) and closed at accept.
    pub max_connections: usize,
    /// Per-connection pipelining window: requests in flight (executing
    /// or queued) per connection before the reactor stops reading from
    /// it (pure backpressure, never an error).
    pub max_in_flight_per_conn: usize,
    /// On shutdown, how long the reactor keeps delivering in-flight
    /// completions before closing every socket regardless.
    pub drain_deadline: Duration,
    /// Telemetry domain the server records into (`rds.tcp.*`); `None`
    /// keeps a private domain readable only through the handle's
    /// accessors. Share the embedding server's domain so a single
    /// snapshot sees transport and runtime together.
    pub telemetry: Option<Telemetry>,
    /// Called once per survived handler panic (after the panic counter
    /// is bumped), so the embedding server can journal the event. Runs
    /// on the execution-tier worker that caught the panic.
    pub on_panic: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Builds the frame written for a shed request, given the shed
    /// request's id (0 when nothing was read, i.e. an over-cap
    /// connection). `None` uses [`default_shed_response`]: an unkeyed
    /// `Busy` error response. A keyed server should supply a keyed
    /// encoding so its clients can verify the digest.
    pub shed_response: Option<Arc<dyn Fn(i64) -> Vec<u8> + Send + Sync>>,
    /// Called once per shed (after the shed counter is bumped), so the
    /// embedding server can journal the overload. Runs on the reactor
    /// thread.
    pub on_shed: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for TcpServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServerConfig")
            .field("workers", &self.workers)
            .field("backlog", &self.backlog)
            .field("idle_poll", &self.idle_poll)
            .field("frame_timeout", &self.frame_timeout)
            .field("idle_timeout", &self.idle_timeout)
            .field("max_connections", &self.max_connections)
            .field("max_in_flight_per_conn", &self.max_in_flight_per_conn)
            .field("drain_deadline", &self.drain_deadline)
            .field("telemetry", &self.telemetry)
            .field("on_panic", &self.on_panic.as_ref().map(|_| "Fn"))
            .field("shed_response", &self.shed_response.as_ref().map(|_| "Fn"))
            .field("on_shed", &self.on_shed.as_ref().map(|_| "Fn"))
            .finish()
    }
}

impl Default for TcpServerConfig {
    fn default() -> TcpServerConfig {
        TcpServerConfig {
            workers: 8,
            backlog: 64,
            idle_poll: Duration::from_millis(25),
            frame_timeout: Duration::from_secs(5),
            idle_timeout: None,
            max_connections: 8192,
            max_in_flight_per_conn: 32,
            drain_deadline: Duration::from_secs(2),
            telemetry: None,
            on_panic: None,
            shed_response: None,
            on_shed: None,
        }
    }
}

/// The default shed frame: an unkeyed `Busy` error response under the
/// shed request's id (0 when the shed happened before any request was
/// read, e.g. an over-cap connection at accept).
pub fn default_shed_response(request_id: i64) -> Vec<u8> {
    crate::codec::encode_response(
        &crate::RdsResponse::Error {
            code: crate::ErrorCode::Busy,
            message: "server overloaded, retry later".to_string(),
        },
        request_id,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RdsClient;
    use std::time::Instant;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 5]);
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn hostile_length_prefix_fails_without_upfront_allocation() {
        // Claims MAX_FRAME bytes but delivers three: the chunked reader
        // must fail at the first short chunk, having allocated at most
        // READ_CHUNK — not the 16 MiB the prefix promised.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAX_FRAME.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn multi_chunk_frame_round_trips() {
        let payload: Vec<u8> = (0..3 * READ_CHUNK + 17).map(|i| i as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
    }

    #[test]
    fn echo_server_round_trip() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| {
            let mut v = req.to_vec();
            v.reverse();
            v
        })
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        assert_eq!(t.request(&[1, 2, 3]).unwrap(), vec![3, 2, 1]);
        assert_eq!(t.request(&[9]).unwrap(), vec![9]);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| req.to_vec()).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let t = TcpTransport::connect(addr).unwrap();
                    for j in 0..20u8 {
                        assert_eq!(t.request(&[i, j]).unwrap(), vec![i, j]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn rds_client_over_tcp() {
        // Full protocol over a real socket with a handler that answers
        // ListPrograms.
        let server = TcpServer::spawn("127.0.0.1:0", {
            let rds =
                crate::RdsServer::open(
                    |_p: &mbd_auth::Principal, req: crate::RdsRequest| match req {
                        crate::RdsRequest::ListPrograms => {
                            crate::RdsResponse::Programs { names: vec!["over-tcp".to_string()] }
                        }
                        _ => crate::RdsResponse::Ok,
                    },
                );
            move |bytes: &[u8]| rds.process(bytes)
        })
        .unwrap();
        let client = RdsClient::new(TcpTransport::connect(server.local_addr()).unwrap(), "tcp-mgr");
        assert_eq!(client.list_programs().unwrap(), vec!["over-tcp".to_string()]);
        server.shutdown();
    }

    #[test]
    fn request_after_shutdown_fails() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| req.to_vec()).unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        t.request(&[1]).unwrap();
        server.shutdown();
        // Either the write or the read must fail once the server is gone.
        assert!(t.request(&[2]).is_err() || t.request(&[3]).is_err());
    }

    #[test]
    fn shutdown_returns_with_connections_open() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 3, ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let addr = server.local_addr();
        // Leave a connection open mid-conversation; shutdown must still
        // return (the reactor closes it during the bounded drain).
        let t = TcpTransport::connect(addr).unwrap();
        t.request(&[7]).unwrap();
        server.shutdown();
        // The listener is gone: fresh connections are refused or die on
        // first use.
        match TcpTransport::connect(addr) {
            Err(_) => {}
            Ok(t2) => assert!(t2.request(&[1]).is_err()),
        }
    }

    #[test]
    fn shutdown_with_many_idle_connections_is_bounded() {
        // The old pool could hang joining a worker parked in a blocking
        // read; the reactor owes shutdown a bounded drain no matter how
        // many idle peers are connected.
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig {
                workers: 2,
                drain_deadline: Duration::from_millis(500),
                ..TcpServerConfig::default()
            },
            |req| req.to_vec(),
        )
        .unwrap();
        let addr = server.local_addr();
        let idle: Vec<std::net::TcpStream> =
            (0..64).map(|_| std::net::TcpStream::connect(addr).unwrap()).collect();
        // Wait until the reactor has actually registered them.
        for _ in 0..200 {
            if server.open_connections() == idle.len() as u64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.open_connections(), idle.len() as u64);
        let begin = Instant::now();
        server.shutdown();
        assert!(
            begin.elapsed() < Duration::from_secs(2),
            "shutdown took {:?} with idle connections",
            begin.elapsed()
        );
    }

    #[test]
    fn handler_panic_poisons_only_its_connection() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 2, ..TcpServerConfig::default() },
            |req| {
                assert!(req != [66], "poison request");
                req.to_vec()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let poisoned = TcpTransport::connect(addr).unwrap();
        assert!(poisoned.request(&[66]).is_err(), "panicked handler drops the connection");

        // The server keeps serving new connections afterwards.
        let healthy = TcpTransport::connect(addr).unwrap();
        assert_eq!(healthy.request(&[1, 2]).unwrap(), vec![1, 2]);
        // The reconnecting transport re-delivered the poison frame once
        // on a fresh connection, so the handler panicked twice.
        assert_eq!(server.handler_panics(), 2);
        assert_eq!(poisoned.reconnects(), 1);
        server.shutdown();
    }

    #[test]
    fn shared_telemetry_sees_transport_metrics() {
        let tel = Telemetry::new();
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { telemetry: Some(tel.clone()), ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        t.request(&[1]).unwrap();
        t.request(&[2]).unwrap();
        drop(t);
        server.shutdown();
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("rds.tcp.request").unwrap().count(), 2);
        // queue_wait is per *request* now (execution-tier wait), not
        // per connection.
        assert_eq!(snap.histogram("rds.tcp.queue_wait").unwrap().count(), 2);
        assert_eq!(snap.counter("rds.tcp.handler_panics"), Some(0));
        assert_eq!(snap.counter("rds.tcp.connections_rejected"), Some(0));
        // Every socket is closed, so no connection is active.
        assert_eq!(snap.gauge("rds.tcp.active_connections"), Some(0));
    }

    #[test]
    fn handler_panics_reach_shared_telemetry() {
        let tel = Telemetry::new();
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { telemetry: Some(tel.clone()), ..TcpServerConfig::default() },
            |req| {
                assert!(req != [66], "poison request");
                req.to_vec()
            },
        )
        .unwrap();
        let poisoned = TcpTransport::connect(server.local_addr()).unwrap();
        assert!(poisoned.request(&[66]).is_err());
        server.shutdown();
        // Two deliveries (initial + transparent reconnect), two panics.
        assert_eq!(tel.snapshot().counter("rds.tcp.handler_panics"), Some(2));
    }

    #[test]
    fn on_panic_hook_fires_per_survived_panic() {
        let fired = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&fired);
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig {
                on_panic: Some(Arc::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })),
                ..TcpServerConfig::default()
            },
            |req| {
                assert!(req != [66], "poison request");
                req.to_vec()
            },
        )
        .unwrap();
        let poisoned = TcpTransport::connect(server.local_addr()).unwrap();
        assert!(poisoned.request(&[66]).is_err());
        server.shutdown();
        // Two deliveries (initial + transparent reconnect), two panics.
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn reconnecting_transport_survives_a_dropped_connection() {
        // The handler panics on the poison frame, dropping the
        // connection server-side; the next request on the same transport
        // transparently re-dials.
        let server = TcpServer::spawn("127.0.0.1:0", |req| {
            assert!(req != [66], "poison request");
            req.to_vec()
        })
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        assert_eq!(t.request(&[1]).unwrap(), vec![1]);
        let _ = t.request(&[66]); // kills both connection attempts
        let before = t.reconnects();
        assert_eq!(t.request(&[2]).unwrap(), vec![2], "later requests heal the transport");
        assert!(t.reconnects() > before);
        server.shutdown();
    }

    #[test]
    fn reconnects_reach_shared_telemetry() {
        let tel = Telemetry::new();
        let server = TcpServer::spawn("127.0.0.1:0", |req| {
            assert!(req != [66], "poison request");
            req.to_vec()
        })
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap().instrument(&tel);
        let _ = t.request(&[66]);
        t.request(&[1]).unwrap();
        server.shutdown();
        let counted = tel.snapshot().counter("rds.reconnects").unwrap_or(0);
        assert_eq!(counted, t.reconnects());
        assert!(counted >= 1);
    }

    #[test]
    fn saturated_execution_tier_sheds_the_request_not_the_connection() {
        let sheds_seen = Arc::new(AtomicU64::new(0));
        let hook_counter = Arc::clone(&sheds_seen);
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig {
                workers: 1,
                backlog: 1,
                on_shed: Some(Arc::new(move || {
                    hook_counter.fetch_add(1, Ordering::Relaxed);
                })),
                ..TcpServerConfig::default()
            },
            |req| {
                if req == [9] {
                    std::thread::sleep(Duration::from_millis(600));
                }
                req.to_vec()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        assert_eq!(server.health(), ServerHealth::Accepting);

        // Occupy the single worker…
        let blocker = std::thread::spawn(move || {
            let t = TcpTransport::connect(addr).unwrap();
            t.request(&[9]).unwrap();
        });
        std::thread::sleep(Duration::from_millis(150));
        // …fill the one-deep execution queue with a second slow request…
        let filler = std::thread::spawn(move || {
            let t = TcpTransport::connect(addr).unwrap();
            t.request(&[9]).unwrap();
        });
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(server.health(), ServerHealth::Degraded, "queue at capacity degrades health");

        // …and the next request is shed with an explicit Busy frame.
        // The connection survives (request-level shedding).
        let shed = TcpTransport::connect(addr).unwrap();
        let frame = shed.request(&[2]).expect("shed frame arrives on the live connection");
        let (resp, id) = crate::codec::decode_response(&frame, None).unwrap();
        assert_eq!(id, 0, "a raw (non-RDS) frame has no request id to correlate with");
        assert!(
            matches!(resp, crate::RdsResponse::Error { code: crate::ErrorCode::Busy, .. }),
            "got {resp:?}"
        );
        assert_eq!(server.sheds(), 1);
        assert_eq!(sheds_seen.load(Ordering::Relaxed), 1, "on_shed hook fired");

        blocker.join().unwrap();
        filler.join().unwrap();
        // The shed connection is still usable once the tier drains.
        assert_eq!(shed.request(&[5]).unwrap(), vec![5]);
        assert_eq!(shed.reconnects(), 0, "shedding never cost the connection");
        server.shutdown();
    }

    #[test]
    fn shed_busy_frame_carries_the_request_id() {
        // RDS-encoded requests pipelined on one raw connection: the
        // worker is busy with #1, #2 waits in the one-deep queue, #3 is
        // shed — and its Busy frame must carry id 3, out of order,
        // before the slow responses to #1 and #2.
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 1, backlog: 1, ..TcpServerConfig::default() },
            {
                let rds =
                    crate::RdsServer::open(|_p: &mbd_auth::Principal, _req: crate::RdsRequest| {
                        std::thread::sleep(Duration::from_millis(400));
                        crate::RdsResponse::Ok
                    });
                move |bytes: &[u8]| rds.process(bytes)
            },
        )
        .unwrap();
        let principal = mbd_auth::Principal::new("pipeliner");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        for id in 1..=3i64 {
            let frame = crate::codec::encode_request(
                &crate::RdsRequest::ListPrograms,
                &principal,
                id,
                None,
            );
            write_frame(&mut stream, &frame).unwrap();
            // Stagger so #1 is *executing* and #2 is queued when #3
            // arrives — otherwise which request fills the one-deep
            // queue is a race.
            std::thread::sleep(Duration::from_millis(120));
        }
        let mut ids = Vec::new();
        for _ in 0..3 {
            let frame = read_frame(&mut stream).unwrap().expect("three responses");
            let (resp, id) = crate::codec::decode_response(&frame, None).unwrap();
            if matches!(resp, crate::RdsResponse::Error { code: crate::ErrorCode::Busy, .. }) {
                assert_eq!(id, 3, "the shed Busy frame names the request it sheds");
            }
            ids.push(id);
        }
        assert_eq!(ids[0], 3, "the shed reply overtakes the slow executions");
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3], "every request is answered exactly once");
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_all_complete_on_one_connection() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 4, ..TcpServerConfig::default() },
            {
                let rds =
                    crate::RdsServer::open(|_p: &mbd_auth::Principal, req: crate::RdsRequest| {
                        match req {
                            crate::RdsRequest::ReadJournal { max_records } => {
                                // Stagger completions so replies interleave.
                                std::thread::sleep(Duration::from_millis(
                                    u64::from(max_records % 3) * 20,
                                ));
                                crate::RdsResponse::Ok
                            }
                            _ => crate::RdsResponse::Ok,
                        }
                    });
                move |bytes: &[u8]| rds.process(bytes)
            },
        )
        .unwrap();
        let principal = mbd_auth::Principal::new("pipeliner");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        const N: i64 = 24;
        for id in 1..=N {
            let req = crate::RdsRequest::ReadJournal { max_records: id as u32 };
            let frame = crate::codec::encode_request(&req, &principal, id, None);
            write_frame(&mut stream, &frame).unwrap();
        }
        let mut ids = Vec::new();
        for _ in 0..N {
            let frame = read_frame(&mut stream).unwrap().expect("a response per request");
            let (resp, id) = crate::codec::decode_response(&frame, None).unwrap();
            assert!(matches!(resp, crate::RdsResponse::Ok), "got {resp:?}");
            ids.push(id);
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=N).collect::<Vec<_>>(), "each id answered exactly once");
        server.shutdown();
    }

    #[test]
    fn over_cap_connection_is_shed_at_accept_with_id_zero() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { max_connections: 1, ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let addr = server.local_addr();
        let keeper = TcpTransport::connect(addr).unwrap();
        keeper.request(&[1]).unwrap();

        // The table is full: the next connection gets Busy-and-close.
        let mut shed = TcpStream::connect(addr).unwrap();
        let frame = read_frame(&mut shed).unwrap().expect("busy frame before close");
        let (resp, id) = crate::codec::decode_response(&frame, None).unwrap();
        assert_eq!(id, 0);
        assert!(matches!(resp, crate::RdsResponse::Error { code: crate::ErrorCode::Busy, .. }));
        assert_eq!(server.connections_rejected(), 1);

        // The established connection is unaffected.
        assert_eq!(keeper.request(&[2]).unwrap(), vec![2]);
        server.shutdown();
    }

    #[test]
    fn idle_timeout_reaps_parked_connections() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig {
                idle_timeout: Some(Duration::from_millis(80)),
                idle_poll: Duration::from_millis(10),
                ..TcpServerConfig::default()
            },
            |req| req.to_vec(),
        )
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        t.request(&[1]).unwrap();
        for _ in 0..100 {
            if server.open_connections() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.open_connections(), 0, "idle connection reaped without a thread");
        // The re-dialing transport simply reconnects on next use.
        assert_eq!(t.request(&[2]).unwrap(), vec![2]);
        assert_eq!(t.reconnects(), 1);
        server.shutdown();
    }

    #[test]
    fn oversized_frame_poisons_only_that_connection() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| req.to_vec()).unwrap();
        let addr = server.local_addr();
        let mut hostile = TcpStream::connect(addr).unwrap();
        hostile.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
        hostile.write_all(b"abc").unwrap();
        // The server drops the poisoned connection…
        let mut probe = Vec::new();
        hostile.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert!(matches!(hostile.read_to_end(&mut probe), Ok(0)), "connection closed");
        // …and keeps serving others.
        let t = TcpTransport::connect(addr).unwrap();
        assert_eq!(t.request(&[4]).unwrap(), vec![4]);
        server.shutdown();
    }

    #[test]
    fn sheds_reach_shared_telemetry_and_health_reaches_the_gauge() {
        let tel = Telemetry::new();
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { telemetry: Some(tel.clone()), ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        t.request(&[1]).unwrap();
        drop(t);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("rds.shed"), Some(0));
        assert_eq!(snap.gauge("rds.tcp.health"), Some(0), "accepting");
        server.shutdown();
        assert_eq!(
            tel.snapshot().gauge("rds.tcp.health"),
            Some(u64::from(ServerHealth::Draining.code()))
        );
    }

    #[test]
    fn health_codes_round_trip() {
        for h in [ServerHealth::Accepting, ServerHealth::Degraded, ServerHealth::Draining] {
            assert_eq!(ServerHealth::from_code(h.code()), h);
        }
        assert_eq!(ServerHealth::Accepting.to_string(), "accepting");
        assert_eq!(ServerHealth::Draining.to_string(), "draining");
    }

    #[test]
    fn reactor_serves_more_clients_than_workers() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 2, ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let addr = server.local_addr();
        // Six *simultaneous* connections over two workers: with the old
        // pool the extras would queue whole-connection; the reactor
        // serves them all concurrently.
        let transports: Vec<TcpTransport> =
            (0..6).map(|_| TcpTransport::connect(addr).unwrap()).collect();
        for (i, t) in transports.iter().enumerate() {
            assert_eq!(t.request(&[i as u8]).unwrap(), vec![i as u8]);
        }
        assert_eq!(server.connections_rejected(), 0);
        server.shutdown();
    }
}
