//! TCP transport: RDS over real sockets.
//!
//! Messages are framed with a 4-byte big-endian length prefix (BER
//! messages are self-delimiting, but an explicit frame keeps the reader
//! trivial and bounds allocation). One TCP connection carries a sequence
//! of request/response exchanges; the client serializes its requests.
//!
//! The server dispatches connections onto a **bounded worker pool**
//! instead of the 1991 prototype's thread-per-conversation structure: a
//! fixed set of workers drains an accept queue, so a connection flood
//! cannot exhaust server threads, and [`TcpServer::shutdown`] joins
//! every worker before returning. A handler panic poisons only its own
//! connection — the worker survives to serve the next one.

use crate::{RdsError, Transport};
use mbd_telemetry::{Counter, Gauge, Telemetry, Timer};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// Upper bound on a framed message (16 MiB) — a delegation request
/// carrying a program will never legitimately approach this.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Frame payloads are read in chunks of this size, so a hostile length
/// prefix cannot make the server allocate [`MAX_FRAME`] bytes up front —
/// memory grows only as payload bytes actually arrive.
const READ_CHUNK: usize = 64 * 1024;

fn io_err(e: std::io::Error) -> RdsError {
    RdsError::Transport { message: e.to_string() }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors, or an oversized frame.
pub fn write_frame<W: Write>(w: &mut W, bytes: &[u8]) -> Result<(), RdsError> {
    let len = u32::try_from(bytes.len())
        .map_err(|_| RdsError::Transport { message: "frame too large".to_string() })?;
    if len > MAX_FRAME {
        return Err(RdsError::Transport { message: "frame too large".to_string() });
    }
    w.write_all(&len.to_be_bytes()).map_err(io_err)?;
    w.write_all(bytes).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// I/O errors, or a frame exceeding [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, RdsError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err(e)),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(RdsError::Transport { message: format!("oversized frame ({len} bytes)") });
    }
    // Incremental, capped reads: the length prefix is untrusted input,
    // so never allocate the full claimed size before bytes arrive.
    let mut buf = Vec::new();
    let mut remaining = len as usize;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        let start = buf.len();
        buf.reserve_exact(take);
        buf.resize(start + take, 0);
        r.read_exact(&mut buf[start..]).map_err(io_err)?;
        remaining -= take;
    }
    Ok(Some(buf))
}

/// Client side: a persistent connection to an RDS server over TCP that
/// **re-dials on broken connections**.
///
/// The connection serializes exchanges under a lock, so one
/// `TcpTransport` may be shared by threads (each request waits its turn,
/// as with the prototype's single connection per manager). When an
/// exchange fails mid-flight the transport discards the connection
/// (its framing state is unknown), dials the peer once more and re-sends
/// the same frame — the caller's request-id stream is untouched, so a
/// deduplicating server recognizes any effect that already executed.
/// Reconnects are counted ([`TcpTransport::reconnects`]) and optionally
/// recorded into telemetry as `rds.reconnects`.
#[derive(Debug)]
pub struct TcpTransport {
    stream: Mutex<Option<TcpStream>>,
    peer: SocketAddr,
    reconnects: AtomicU64,
    reconnect_counter: Option<Counter>,
}

impl TcpTransport {
    /// Connects to an RDS server.
    ///
    /// # Errors
    ///
    /// Connection failures as [`RdsError::Transport`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpTransport, RdsError> {
        let stream = dial(&addr)?;
        let peer = stream.peer_addr().map_err(io_err)?;
        Ok(TcpTransport {
            stream: Mutex::new(Some(stream)),
            peer,
            reconnects: AtomicU64::new(0),
            reconnect_counter: None,
        })
    }

    /// Counts this transport's re-dials into `telemetry` as
    /// `rds.reconnects` (also readable via [`TcpTransport::reconnects`]).
    #[must_use]
    pub fn instrument(mut self, telemetry: &Telemetry) -> TcpTransport {
        self.reconnect_counter = Some(telemetry.counter("rds.reconnects"));
        self
    }

    /// The server's address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Successful re-dials after the initial connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    fn count_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = &self.reconnect_counter {
            counter.inc();
        }
    }
}

fn dial<A: ToSocketAddrs>(addr: &A) -> Result<TcpStream, RdsError> {
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    stream.set_nodelay(true).map_err(io_err)?;
    Ok(stream)
}

fn exchange(stream: &mut TcpStream, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
    write_frame(stream, bytes)?;
    read_frame(stream)?
        .ok_or_else(|| RdsError::Transport { message: "server closed the connection".to_string() })
}

impl Transport for TcpTransport {
    fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
        let mut guard = self.stream.lock();
        let redialed = guard.is_none();
        if guard.is_none() {
            *guard = Some(dial(&self.peer)?);
            self.count_reconnect();
        }
        let stream = guard.as_mut().expect("stream just ensured");
        match exchange(stream, bytes) {
            Ok(resp) => Ok(resp),
            Err(first_err) => {
                // The connection's framing state is unknown — drop it.
                // If it was freshly dialed, the peer is likely down;
                // otherwise re-dial once and re-send the same frame.
                *guard = None;
                if redialed {
                    return Err(first_err);
                }
                *guard = Some(dial(&self.peer)?);
                self.count_reconnect();
                let stream = guard.as_mut().expect("stream just ensured");
                match exchange(stream, bytes) {
                    Ok(resp) => Ok(resp),
                    Err(e) => {
                        *guard = None;
                        Err(e)
                    }
                }
            }
        }
    }
}

/// A [`TcpServer`]'s coarse health, derived from accept-queue pressure
/// and the shutdown flag, surfaced through the `rds.tcp.health` gauge
/// (and thus the `mbdTelemetry` OCP subtree) so delegated agents can
/// observe the transport's own state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerHealth {
    /// Normal operation: the accept queue has headroom.
    Accepting,
    /// Overloaded: the accept queue is at least half full; new
    /// connections may be shed with `Busy`.
    Degraded,
    /// Shutting down: no new connections will be served.
    Draining,
}

impl ServerHealth {
    /// Stable gauge value (0 accepting · 1 degraded · 2 draining).
    pub fn code(self) -> u8 {
        match self {
            ServerHealth::Accepting => 0,
            ServerHealth::Degraded => 1,
            ServerHealth::Draining => 2,
        }
    }

    fn from_code(code: u8) -> ServerHealth {
        match code {
            1 => ServerHealth::Degraded,
            2 => ServerHealth::Draining,
            _ => ServerHealth::Accepting,
        }
    }
}

impl std::fmt::Display for ServerHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ServerHealth::Accepting => "accepting",
            ServerHealth::Degraded => "degraded",
            ServerHealth::Draining => "draining",
        };
        f.write_str(s)
    }
}

/// Sizing and timing of a [`TcpServer`]'s worker pool.
#[derive(Clone)]
pub struct TcpServerConfig {
    /// Worker threads serving connections (each worker serves one
    /// connection at a time, start to finish).
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker; beyond
    /// this the server drops new connections (and counts them).
    pub backlog: usize,
    /// How often an idle connection checks for shutdown.
    pub idle_poll: Duration,
    /// Deadline for a started frame to arrive completely.
    pub frame_timeout: Duration,
    /// Telemetry domain the server records into (`rds.tcp.*`); `None`
    /// keeps a private domain readable only through the handle's
    /// accessors. Share the embedding server's domain so a single
    /// snapshot sees transport and runtime together.
    pub telemetry: Option<Telemetry>,
    /// Called once per survived handler panic (after the panic counter
    /// is bumped), so the embedding server can journal the event. Runs
    /// on the worker thread that caught the panic.
    pub on_panic: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Frame written to a connection shed at saturation (before the
    /// seed's silent close). `None` uses the default: an unkeyed
    /// `Busy` error response with request id 0. A keyed server should
    /// supply a keyed encoding so its clients can verify the digest.
    pub shed_response: Option<Vec<u8>>,
    /// Called once per shed connection (after the shed counter is
    /// bumped), so the embedding server can journal the overload. Runs
    /// on the accept thread.
    pub on_shed: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for TcpServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServerConfig")
            .field("workers", &self.workers)
            .field("backlog", &self.backlog)
            .field("idle_poll", &self.idle_poll)
            .field("frame_timeout", &self.frame_timeout)
            .field("telemetry", &self.telemetry)
            .field("on_panic", &self.on_panic.as_ref().map(|_| "Fn"))
            .field("shed_response", &self.shed_response.as_ref().map(Vec::len))
            .field("on_shed", &self.on_shed.as_ref().map(|_| "Fn"))
            .finish()
    }
}

impl Default for TcpServerConfig {
    fn default() -> TcpServerConfig {
        TcpServerConfig {
            workers: 8,
            backlog: 64,
            idle_poll: Duration::from_millis(25),
            frame_timeout: Duration::from_secs(5),
            telemetry: None,
            on_panic: None,
            shed_response: None,
            on_shed: None,
        }
    }
}

/// The default shed frame: an unkeyed `Busy` error under request id 0
/// (undecodable-frame convention — the shed happens before any request
/// is read, so there is no id to correlate with).
pub fn default_shed_response() -> Vec<u8> {
    crate::codec::encode_response(
        &crate::RdsResponse::Error {
            code: crate::ErrorCode::Busy,
            message: "server overloaded, retry later".to_string(),
        },
        0,
        None,
    )
}

/// Pre-resolved transport metrics, shared by the accept loop and the
/// workers.
struct TcpMetrics {
    /// `rds.tcp.queue_wait` — accepted-to-picked-up latency.
    queue_wait: Timer,
    /// `rds.tcp.request` — one frame's respond() latency.
    request: Timer,
    /// `rds.tcp.active_connections` — connections currently being
    /// served by a worker.
    active: Gauge,
    /// `rds.tcp.handler_panics` — mirrors
    /// [`TcpServer::handler_panics`].
    panics: Counter,
    /// `rds.tcp.connections_rejected` — mirrors
    /// [`TcpServer::connections_rejected`].
    rejected: Counter,
    /// `rds.shed` — connections answered with an explicit `Busy` frame
    /// at saturation (same events as `rejected`; this is the
    /// protocol-level name the retry layer watches).
    shed: Counter,
    /// `rds.tcp.health` — current [`ServerHealth`] code.
    health: Gauge,
}

impl TcpMetrics {
    fn new(telemetry: &Telemetry) -> TcpMetrics {
        TcpMetrics {
            queue_wait: telemetry.timer("rds.tcp.queue_wait"),
            request: telemetry.timer("rds.tcp.request"),
            active: telemetry.gauge("rds.tcp.active_connections"),
            panics: telemetry.counter("rds.tcp.handler_panics"),
            rejected: telemetry.counter("rds.tcp.connections_rejected"),
            shed: telemetry.counter("rds.shed"),
            health: telemetry.gauge("rds.tcp.health"),
        }
    }
}

/// State shared between the accept loop, the workers and the handle.
struct PoolShared {
    stop: AtomicBool,
    /// Accepted connections waiting for a worker, stamped with their
    /// accept time so `rds.tcp.queue_wait` measures pool saturation.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
    rejected: AtomicU64,
    handler_panics: AtomicU64,
    health: AtomicU8,
    /// Queue depth at which health degrades (half the backlog, min 1).
    degraded_at: usize,
    metrics: TcpMetrics,
}

impl PoolShared {
    /// Recomputes health from queue `depth` (call after push/pop); the
    /// draining state, once entered, is terminal.
    fn update_health(&self, depth: usize) {
        let next = if self.stop.load(Ordering::Relaxed) {
            ServerHealth::Draining
        } else if depth >= self.degraded_at {
            ServerHealth::Degraded
        } else {
            ServerHealth::Accepting
        };
        self.set_health(next);
    }

    fn set_health(&self, next: ServerHealth) {
        self.health.store(next.code(), Ordering::Relaxed);
        self.metrics.health.set(u64::from(next.code()));
    }
}

/// Server side: accepts connections into a bounded queue drained by a
/// fixed pool of worker threads, each answering framed requests with
/// `respond`.
pub struct TcpServer {
    local: SocketAddr,
    shared: Arc<PoolShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("local", &self.local)
            .field("workers", &self.workers.len())
            .field("rejected", &self.connections_rejected())
            .finish()
    }
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving with the default pool configuration. `respond` runs on
    /// worker threads and must be thread-safe.
    ///
    /// # Errors
    ///
    /// Bind failures as [`RdsError::Transport`].
    pub fn spawn<A, F>(addr: A, respond: F) -> Result<TcpServer, RdsError>
    where
        A: ToSocketAddrs,
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        TcpServer::spawn_with(addr, TcpServerConfig::default(), respond)
    }

    /// [`TcpServer::spawn`] with an explicit pool configuration.
    ///
    /// # Errors
    ///
    /// Bind failures as [`RdsError::Transport`].
    pub fn spawn_with<A, F>(
        addr: A,
        config: TcpServerConfig,
        respond: F,
    ) -> Result<TcpServer, RdsError>
    where
        A: ToSocketAddrs,
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        let local = listener.local_addr().map_err(io_err)?;
        let telemetry = config.telemetry.clone().unwrap_or_default();
        let backlog = config.backlog.max(1);
        let shared = Arc::new(PoolShared {
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            rejected: AtomicU64::new(0),
            handler_panics: AtomicU64::new(0),
            health: AtomicU8::new(ServerHealth::Accepting.code()),
            degraded_at: (backlog / 2).max(1),
            metrics: TcpMetrics::new(&telemetry),
        });
        shared.set_health(ServerHealth::Accepting);
        let respond = Arc::new(respond);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let respond = Arc::clone(&respond);
                let config = config.clone();
                std::thread::spawn(move || worker_loop(&shared, &*respond, &config))
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let shed_frame = config.shed_response.clone().unwrap_or_else(default_shed_response);
        let on_shed = config.on_shed.clone();
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if accept_shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(mut stream) = incoming else { continue };
                let mut queue = accept_shared.queue.lock();
                if queue.len() >= backlog {
                    drop(queue);
                    accept_shared.rejected.fetch_add(1, Ordering::Relaxed);
                    accept_shared.metrics.rejected.inc();
                    accept_shared.metrics.shed.inc();
                    // Graceful degradation: instead of the seed's silent
                    // close, tell the client *why* — an explicit `Busy`
                    // frame it can classify as retryable. Best-effort
                    // with short timeouts so a slow peer cannot stall
                    // the accept loop. The drain read consumes the
                    // request the client already sent, so closing emits
                    // FIN rather than an RST that could discard the
                    // `Busy` frame from the peer's receive buffer.
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                    let _ = write_frame(&mut stream, &shed_frame);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                    let mut sink = [0u8; 4096];
                    let _ = stream.read(&mut sink);
                    if let Some(hook) = &on_shed {
                        hook();
                    }
                    continue; // dropping the stream closes it
                }
                queue.push_back((stream, Instant::now()));
                let depth = queue.len();
                drop(queue);
                accept_shared.update_health(depth);
                accept_shared.ready.notify_one();
            }
            accept_shared.set_health(ServerHealth::Draining);
            accept_shared.ready.notify_all();
        });

        Ok(TcpServer { local, shared, accept_thread: Some(accept_thread), workers })
    }

    /// The bound address (including the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Connections dropped because the accept queue was full.
    pub fn connections_rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Connections answered with an explicit `Busy` frame at saturation
    /// (the protocol-level view of [`TcpServer::connections_rejected`]).
    pub fn sheds(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// The server's current coarse health.
    pub fn health(&self) -> ServerHealth {
        ServerHealth::from_code(self.shared.health.load(Ordering::Relaxed))
    }

    /// Handler panics survived (each cost its connection, not a worker).
    pub fn handler_panics(&self) -> u64 {
        self.shared.handler_panics.load(Ordering::Relaxed)
    }

    /// Signals shutdown, then joins the accept loop and every worker —
    /// on return no server thread is running.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.set_health(ServerHealth::Draining);
        // Unblock accept() with a dummy connection; wake idle workers.
        let _ = TcpStream::connect(self.local);
        self.shared.ready.notify_all();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// One worker: pull connections off the shared queue until shutdown.
fn worker_loop(
    shared: &PoolShared,
    respond: &(dyn Fn(&[u8]) -> Vec<u8> + Send + Sync),
    config: &TcpServerConfig,
) {
    loop {
        let next = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(entry) = queue.pop_front() {
                    let depth = queue.len();
                    drop(queue);
                    shared.update_health(depth);
                    break Some(entry);
                }
                if shared.stop.load(Ordering::Relaxed) {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(queue, config.idle_poll)
                    .expect("queue mutex cannot be poisoned");
                queue = guard;
            }
        };
        match next {
            Some((mut stream, accepted_at)) => {
                shared.metrics.queue_wait.record_duration(accepted_at.elapsed());
                shared.metrics.active.inc();
                let _ = serve_connection(&mut stream, respond, shared, config);
                shared.metrics.active.dec();
            }
            None => return,
        }
    }
}

/// Serves one connection until EOF, error, handler panic or shutdown.
/// I/O errors are returned for diagnosis but isolated to this
/// connection — the calling worker always survives.
fn serve_connection(
    stream: &mut TcpStream,
    respond: &(dyn Fn(&[u8]) -> Vec<u8> + Send + Sync),
    shared: &PoolShared,
    config: &TcpServerConfig,
) -> Result<(), RdsError> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(config.idle_poll)).map_err(io_err)?;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        // Idle-poll for the next frame so shutdown is observed promptly;
        // peek keeps a mid-frame timeout from corrupting the stream.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(io_err(e)),
        }
        stream.set_read_timeout(Some(config.frame_timeout)).map_err(io_err)?;
        let frame = read_frame(stream);
        stream.set_read_timeout(Some(config.idle_poll)).map_err(io_err)?;
        match frame {
            Ok(Some(request)) => {
                let span = shared.metrics.request.start();
                let outcome = catch_unwind(AssertUnwindSafe(|| respond(&request)));
                drop(span);
                match outcome {
                    Ok(response) => write_frame(stream, &response)?,
                    Err(_) => {
                        shared.handler_panics.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.panics.inc();
                        if let Some(hook) = &config.on_panic {
                            hook();
                        }
                        return Ok(()); // drop the connection, keep the worker
                    }
                }
            }
            Ok(None) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RdsClient;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 5]);
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn hostile_length_prefix_fails_without_upfront_allocation() {
        // Claims MAX_FRAME bytes but delivers three: the chunked reader
        // must fail at the first short chunk, having allocated at most
        // READ_CHUNK — not the 16 MiB the prefix promised.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAX_FRAME.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn multi_chunk_frame_round_trips() {
        let payload: Vec<u8> = (0..3 * READ_CHUNK + 17).map(|i| i as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
    }

    #[test]
    fn echo_server_round_trip() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| {
            let mut v = req.to_vec();
            v.reverse();
            v
        })
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        assert_eq!(t.request(&[1, 2, 3]).unwrap(), vec![3, 2, 1]);
        assert_eq!(t.request(&[9]).unwrap(), vec![9]);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| req.to_vec()).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let t = TcpTransport::connect(addr).unwrap();
                    for j in 0..20u8 {
                        assert_eq!(t.request(&[i, j]).unwrap(), vec![i, j]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn rds_client_over_tcp() {
        // Full protocol over a real socket with a handler that answers
        // ListPrograms.
        let server = TcpServer::spawn("127.0.0.1:0", {
            let rds =
                crate::RdsServer::open(
                    |_p: &mbd_auth::Principal, req: crate::RdsRequest| match req {
                        crate::RdsRequest::ListPrograms => {
                            crate::RdsResponse::Programs { names: vec!["over-tcp".to_string()] }
                        }
                        _ => crate::RdsResponse::Ok,
                    },
                );
            move |bytes: &[u8]| rds.process(bytes)
        })
        .unwrap();
        let client = RdsClient::new(TcpTransport::connect(server.local_addr()).unwrap(), "tcp-mgr");
        assert_eq!(client.list_programs().unwrap(), vec!["over-tcp".to_string()]);
        server.shutdown();
    }

    #[test]
    fn request_after_shutdown_fails() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| req.to_vec()).unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        t.request(&[1]).unwrap();
        server.shutdown();
        // Either the write or the read must fail once the server is gone.
        assert!(t.request(&[2]).is_err() || t.request(&[3]).is_err());
    }

    #[test]
    fn shutdown_joins_every_worker() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 3, ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let addr = server.local_addr();
        // Leave a connection open mid-conversation; shutdown must still
        // return (workers observe the stop flag between frames).
        let t = TcpTransport::connect(addr).unwrap();
        t.request(&[7]).unwrap();
        server.shutdown();
        // The listener is gone: fresh connections are refused or die on
        // first use.
        match TcpTransport::connect(addr) {
            Err(_) => {}
            Ok(t2) => assert!(t2.request(&[1]).is_err()),
        }
    }

    #[test]
    fn handler_panic_poisons_only_its_connection() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 2, ..TcpServerConfig::default() },
            |req| {
                assert!(req != [66], "poison request");
                req.to_vec()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let poisoned = TcpTransport::connect(addr).unwrap();
        assert!(poisoned.request(&[66]).is_err(), "panicked handler drops the connection");

        // The pool keeps serving new connections afterwards.
        let healthy = TcpTransport::connect(addr).unwrap();
        assert_eq!(healthy.request(&[1, 2]).unwrap(), vec![1, 2]);
        // The reconnecting transport re-delivered the poison frame once
        // on a fresh connection, so the handler panicked twice.
        assert_eq!(server.handler_panics(), 2);
        assert_eq!(poisoned.reconnects(), 1);
        server.shutdown();
    }

    #[test]
    fn shared_telemetry_sees_transport_metrics() {
        let tel = Telemetry::new();
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { telemetry: Some(tel.clone()), ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        t.request(&[1]).unwrap();
        t.request(&[2]).unwrap();
        drop(t);
        server.shutdown();
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("rds.tcp.request").unwrap().count(), 2);
        assert_eq!(snap.histogram("rds.tcp.queue_wait").unwrap().count(), 1);
        assert_eq!(snap.counter("rds.tcp.handler_panics"), Some(0));
        assert_eq!(snap.counter("rds.tcp.connections_rejected"), Some(0));
        // All workers are joined, so no connection is active.
        assert_eq!(snap.gauge("rds.tcp.active_connections"), Some(0));
    }

    #[test]
    fn handler_panics_reach_shared_telemetry() {
        let tel = Telemetry::new();
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { telemetry: Some(tel.clone()), ..TcpServerConfig::default() },
            |req| {
                assert!(req != [66], "poison request");
                req.to_vec()
            },
        )
        .unwrap();
        let poisoned = TcpTransport::connect(server.local_addr()).unwrap();
        assert!(poisoned.request(&[66]).is_err());
        server.shutdown();
        // Two deliveries (initial + transparent reconnect), two panics.
        assert_eq!(tel.snapshot().counter("rds.tcp.handler_panics"), Some(2));
    }

    #[test]
    fn on_panic_hook_fires_per_survived_panic() {
        let fired = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&fired);
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig {
                on_panic: Some(Arc::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })),
                ..TcpServerConfig::default()
            },
            |req| {
                assert!(req != [66], "poison request");
                req.to_vec()
            },
        )
        .unwrap();
        let poisoned = TcpTransport::connect(server.local_addr()).unwrap();
        assert!(poisoned.request(&[66]).is_err());
        server.shutdown();
        // Two deliveries (initial + transparent reconnect), two panics.
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn reconnecting_transport_survives_a_dropped_connection() {
        // The handler panics on the poison frame, dropping the
        // connection server-side; the next request on the same transport
        // transparently re-dials.
        let server = TcpServer::spawn("127.0.0.1:0", |req| {
            assert!(req != [66], "poison request");
            req.to_vec()
        })
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        assert_eq!(t.request(&[1]).unwrap(), vec![1]);
        let _ = t.request(&[66]); // kills both connection attempts
        let before = t.reconnects();
        assert_eq!(t.request(&[2]).unwrap(), vec![2], "later requests heal the transport");
        assert!(t.reconnects() > before);
        server.shutdown();
    }

    #[test]
    fn reconnects_reach_shared_telemetry() {
        let tel = Telemetry::new();
        let server = TcpServer::spawn("127.0.0.1:0", |req| {
            assert!(req != [66], "poison request");
            req.to_vec()
        })
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap().instrument(&tel);
        let _ = t.request(&[66]);
        t.request(&[1]).unwrap();
        server.shutdown();
        let counted = tel.snapshot().counter("rds.reconnects").unwrap_or(0);
        assert_eq!(counted, t.reconnects());
        assert!(counted >= 1);
    }

    #[test]
    fn saturated_pool_sheds_with_an_explicit_busy_frame() {
        let sheds_seen = Arc::new(AtomicU64::new(0));
        let hook_counter = Arc::clone(&sheds_seen);
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig {
                workers: 1,
                backlog: 1,
                on_shed: Some(Arc::new(move || {
                    hook_counter.fetch_add(1, Ordering::Relaxed);
                })),
                ..TcpServerConfig::default()
            },
            |req| {
                if req == [9] {
                    std::thread::sleep(Duration::from_millis(600));
                }
                req.to_vec()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        assert_eq!(server.health(), ServerHealth::Accepting);

        // Occupy the single worker…
        let blocker = std::thread::spawn(move || {
            let t = TcpTransport::connect(addr).unwrap();
            t.request(&[9]).unwrap();
        });
        std::thread::sleep(Duration::from_millis(150));
        // …fill the backlog…
        let _queued = TcpTransport::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(server.health(), ServerHealth::Degraded, "queue at capacity degrades health");

        // …and the next connection is shed with an explicit Busy frame
        // instead of a silent close.
        let shed = TcpTransport::connect(addr).unwrap();
        let frame = shed.request(&[2]).expect("shed frame arrives before the close");
        let (resp, id) = crate::codec::decode_response(&frame, None).unwrap();
        assert_eq!(id, 0, "no request id to correlate with");
        assert!(
            matches!(resp, crate::RdsResponse::Error { code: crate::ErrorCode::Busy, .. }),
            "got {resp:?}"
        );
        assert_eq!(server.sheds(), 1);
        // The hook runs on the accept thread after the shed frame's
        // drain read, so it may trail the client's receipt briefly.
        for _ in 0..100 {
            if sheds_seen.load(Ordering::Relaxed) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(sheds_seen.load(Ordering::Relaxed), 1, "on_shed hook fired");

        blocker.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn sheds_reach_shared_telemetry_and_health_reaches_the_gauge() {
        let tel = Telemetry::new();
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { telemetry: Some(tel.clone()), ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        t.request(&[1]).unwrap();
        drop(t);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("rds.shed"), Some(0));
        assert_eq!(snap.gauge("rds.tcp.health"), Some(0), "accepting");
        server.shutdown();
        assert_eq!(
            tel.snapshot().gauge("rds.tcp.health"),
            Some(u64::from(ServerHealth::Draining.code()))
        );
    }

    #[test]
    fn health_codes_round_trip() {
        for h in [ServerHealth::Accepting, ServerHealth::Degraded, ServerHealth::Draining] {
            assert_eq!(ServerHealth::from_code(h.code()), h);
        }
        assert_eq!(ServerHealth::Accepting.to_string(), "accepting");
        assert_eq!(ServerHealth::Draining.to_string(), "draining");
    }

    #[test]
    fn pool_serves_more_clients_than_workers() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 2, ..TcpServerConfig::default() },
            |req| req.to_vec(),
        )
        .unwrap();
        let addr = server.local_addr();
        // Sequential conversations: each closes before the next starts,
        // so two workers handle six clients.
        for i in 0..6u8 {
            let t = TcpTransport::connect(addr).unwrap();
            assert_eq!(t.request(&[i]).unwrap(), vec![i]);
        }
        assert_eq!(server.connections_rejected(), 0);
        server.shutdown();
    }
}
