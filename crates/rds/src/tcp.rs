//! TCP transport: RDS over real sockets.
//!
//! Messages are framed with a 4-byte big-endian length prefix (BER
//! messages are self-delimiting, but an explicit frame keeps the reader
//! trivial and bounds allocation). One TCP connection carries a sequence
//! of request/response exchanges; the client serializes its requests, the
//! server handles each connection on its own thread — the same
//! thread-per-conversation structure as the 1991 prototype's socket
//! protocol component.

use crate::{RdsError, Transport};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Upper bound on a framed message (16 MiB) — a delegation request
/// carrying a program will never legitimately approach this.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

fn io_err(e: std::io::Error) -> RdsError {
    RdsError::Transport { message: e.to_string() }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors, or an oversized frame.
pub fn write_frame<W: Write>(w: &mut W, bytes: &[u8]) -> Result<(), RdsError> {
    let len = u32::try_from(bytes.len()).map_err(|_| RdsError::Transport {
        message: "frame too large".to_string(),
    })?;
    if len > MAX_FRAME {
        return Err(RdsError::Transport { message: "frame too large".to_string() });
    }
    w.write_all(&len.to_be_bytes()).map_err(io_err)?;
    w.write_all(bytes).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// I/O errors, or a frame exceeding [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, RdsError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err(e)),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(RdsError::Transport { message: format!("oversized frame ({len} bytes)") });
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(Some(buf))
}

/// Client side: a persistent connection to an RDS server over TCP.
///
/// The connection serializes exchanges under a lock, so one
/// `TcpTransport` may be shared by threads (each request waits its turn,
/// as with the prototype's single connection per manager).
#[derive(Debug)]
pub struct TcpTransport {
    stream: Mutex<TcpStream>,
    peer: SocketAddr,
}

impl TcpTransport {
    /// Connects to an RDS server.
    ///
    /// # Errors
    ///
    /// Connection failures as [`RdsError::Transport`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpTransport, RdsError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let peer = stream.peer_addr().map_err(io_err)?;
        Ok(TcpTransport { stream: Mutex::new(stream), peer })
    }

    /// The server's address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }
}

impl Transport for TcpTransport {
    fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
        let mut stream = self.stream.lock();
        write_frame(&mut *stream, bytes)?;
        read_frame(&mut *stream)?.ok_or_else(|| RdsError::Transport {
            message: "server closed the connection".to_string(),
        })
    }
}

/// Server side: accepts connections and answers each framed request with
/// `respond`, one thread per connection.
#[derive(Debug)]
pub struct TcpServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving. `respond` runs on connection threads and must be
    /// thread-safe.
    ///
    /// # Errors
    ///
    /// Bind failures as [`RdsError::Transport`].
    pub fn spawn<A, F>(addr: A, respond: F) -> Result<TcpServer, RdsError>
    where
        A: ToSocketAddrs,
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        let local = listener.local_addr().map_err(io_err)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let respond = Arc::new(respond);
        let accept_thread = std::thread::spawn(move || {
            // A short accept timeout lets the loop observe `stop`.
            for incoming in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                let respond = Arc::clone(&respond);
                let stop3 = Arc::clone(&stop2);
                std::thread::spawn(move || {
                    let mut stream = stream;
                    let _ = stream.set_nodelay(true);
                    while !stop3.load(Ordering::Relaxed) {
                        match read_frame(&mut stream) {
                            Ok(Some(req)) => {
                                let resp = respond(&req);
                                if write_frame(&mut stream, &resp).is_err() {
                                    break;
                                }
                            }
                            _ => break,
                        }
                    }
                });
            }
        });
        Ok(TcpServer { local, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (including the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Signals shutdown and unblocks the accept loop.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock accept() with a dummy connection.
        let _ = TcpStream::connect(self.local);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RdsClient;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 5]);
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn echo_server_round_trip() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| {
            let mut v = req.to_vec();
            v.reverse();
            v
        })
        .unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        assert_eq!(t.request(&[1, 2, 3]).unwrap(), vec![3, 2, 1]);
        assert_eq!(t.request(&[9]).unwrap(), vec![9]);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| req.to_vec()).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let t = TcpTransport::connect(addr).unwrap();
                    for j in 0..20u8 {
                        assert_eq!(t.request(&[i, j]).unwrap(), vec![i, j]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn rds_client_over_tcp() {
        // Full protocol over a real socket with a handler that answers
        // ListPrograms.
        let server = TcpServer::spawn("127.0.0.1:0", {
            let rds = crate::RdsServer::open(
                |_p: &mbd_auth::Principal, req: crate::RdsRequest| match req {
                    crate::RdsRequest::ListPrograms => crate::RdsResponse::Programs {
                        names: vec!["over-tcp".to_string()],
                    },
                    _ => crate::RdsResponse::Ok,
                },
            );
            move |bytes: &[u8]| rds.process(bytes)
        })
        .unwrap();
        let client =
            RdsClient::new(TcpTransport::connect(server.local_addr()).unwrap(), "tcp-mgr");
        assert_eq!(client.list_programs().unwrap(), vec!["over-tcp".to_string()]);
        server.shutdown();
    }

    #[test]
    fn request_after_shutdown_fails() {
        let server = TcpServer::spawn("127.0.0.1:0", |req| req.to_vec()).unwrap();
        let t = TcpTransport::connect(server.local_addr()).unwrap();
        t.request(&[1]).unwrap();
        server.shutdown();
        // Either the write or the read must fail once the server is gone.
        assert!(t.request(&[2]).is_err() || t.request(&[3]).is_err());
    }
}
