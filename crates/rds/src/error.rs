use std::error::Error;
use std::fmt;

/// Error codes an RDS server can return (stable wire integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The delegated program failed translation (lexical/syntactic/binding
    /// rules) and was rejected.
    TranslationFailed,
    /// The named dp is not in the repository.
    NoSuchProgram,
    /// The dpi id does not name a live instance.
    NoSuchInstance,
    /// The requested operation is illegal in the instance's current state.
    BadState,
    /// The principal is not authorized for this operation.
    AccessDenied,
    /// Digest authentication failed.
    AuthFailed,
    /// The invocation faulted at runtime (budget or error).
    RuntimeFault,
    /// Anything else.
    Internal,
    /// The server is overloaded and shed this request before doing any
    /// work — safe to retry after a backoff.
    Busy,
}

impl ErrorCode {
    /// The wire integer for this code.
    pub fn code(self) -> i64 {
        match self {
            ErrorCode::TranslationFailed => 1,
            ErrorCode::NoSuchProgram => 2,
            ErrorCode::NoSuchInstance => 3,
            ErrorCode::BadState => 4,
            ErrorCode::AccessDenied => 5,
            ErrorCode::AuthFailed => 6,
            ErrorCode::RuntimeFault => 7,
            ErrorCode::Internal => 8,
            ErrorCode::Busy => 9,
        }
    }

    /// Parses a wire integer, mapping unknown codes to `Internal`.
    pub fn from_code(code: i64) -> ErrorCode {
        match code {
            1 => ErrorCode::TranslationFailed,
            2 => ErrorCode::NoSuchProgram,
            3 => ErrorCode::NoSuchInstance,
            4 => ErrorCode::BadState,
            5 => ErrorCode::AccessDenied,
            6 => ErrorCode::AuthFailed,
            7 => ErrorCode::RuntimeFault,
            9 => ErrorCode::Busy,
            _ => ErrorCode::Internal,
        }
    }

    /// Whether a request that failed with this code may safely be
    /// retried verbatim. Only [`ErrorCode::Busy`] qualifies: the server
    /// promises it shed the request before executing any effect. Every
    /// other code is an answer, not a delivery failure.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Busy)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::TranslationFailed => "translation failed",
            ErrorCode::NoSuchProgram => "no such program",
            ErrorCode::NoSuchInstance => "no such instance",
            ErrorCode::BadState => "operation illegal in current state",
            ErrorCode::AccessDenied => "access denied",
            ErrorCode::AuthFailed => "authentication failed",
            ErrorCode::RuntimeFault => "runtime fault",
            ErrorCode::Internal => "internal error",
            ErrorCode::Busy => "server busy",
        };
        f.write_str(s)
    }
}

/// Errors surfaced to RDS clients.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RdsError {
    /// Malformed wire data.
    Codec(ber::BerError),
    /// The transport failed to deliver or the peer is gone.
    Transport {
        /// Description of the failure.
        message: String,
    },
    /// The server answered with an error.
    Remote {
        /// The server's error code.
        code: ErrorCode,
        /// Detail text.
        message: String,
    },
    /// The response's request id did not match the request.
    RequestIdMismatch {
        /// Id we sent.
        expected: i64,
        /// Id we got back.
        found: i64,
    },
    /// A received message failed digest verification.
    BadDigest,
    /// Unknown operation tag on the wire.
    UnknownOperation(u8),
}

impl fmt::Display for RdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdsError::Codec(e) => write!(f, "codec error: {e}"),
            RdsError::Transport { message } => write!(f, "transport error: {message}"),
            RdsError::Remote { code, message } => write!(f, "remote error ({code}): {message}"),
            RdsError::RequestIdMismatch { expected, found } => {
                write!(f, "response id {found} does not match request id {expected}")
            }
            RdsError::BadDigest => write!(f, "message digest verification failed"),
            RdsError::UnknownOperation(op) => write!(f, "unknown RDS operation tag {op}"),
        }
    }
}

impl Error for RdsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RdsError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ber::BerError> for RdsError {
    fn from(e: ber::BerError) -> RdsError {
        RdsError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for c in [
            ErrorCode::TranslationFailed,
            ErrorCode::NoSuchProgram,
            ErrorCode::NoSuchInstance,
            ErrorCode::BadState,
            ErrorCode::AccessDenied,
            ErrorCode::AuthFailed,
            ErrorCode::RuntimeFault,
            ErrorCode::Internal,
            ErrorCode::Busy,
        ] {
            assert_eq!(ErrorCode::from_code(c.code()), c);
        }
        assert_eq!(ErrorCode::from_code(999), ErrorCode::Internal);
    }

    #[test]
    fn only_busy_is_retryable() {
        assert!(ErrorCode::Busy.is_retryable());
        for c in [ErrorCode::BadState, ErrorCode::RuntimeFault, ErrorCode::Internal] {
            assert!(!c.is_retryable(), "{c:?} must not be retried");
        }
    }

    #[test]
    fn displays_are_informative() {
        let e = RdsError::Remote { code: ErrorCode::NoSuchProgram, message: "dp x".to_string() };
        assert!(e.to_string().contains("no such program"));
        assert!(e.to_string().contains("dp x"));
    }
}
