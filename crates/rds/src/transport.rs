use crate::RdsError;
use std::sync::Arc;

/// A synchronous request/response channel to an elastic process.
///
/// `request` takes encoded bytes and returns the peer's encoded reply.
/// Implementations decide what "remote" means: same call stack
/// ([`LoopbackTransport`]), another thread ([`ChannelTransport`]), or a
/// simulated network (the experiment harness).
pub trait Transport {
    /// Delivers `bytes` and waits for the reply.
    ///
    /// # Errors
    ///
    /// [`RdsError::Transport`] if the peer is unreachable or gone.
    fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError>;
}

type Responder = Box<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// In-process transport: the "remote" server is a closure called inline.
///
/// # Examples
///
/// ```
/// use rds::{LoopbackTransport, Transport};
/// let t = LoopbackTransport::new(|req: &[u8]| req.to_vec()); // echo
/// assert_eq!(t.request(&[1, 2]).unwrap(), vec![1, 2]);
/// ```
pub struct LoopbackTransport {
    respond: Responder,
}

impl std::fmt::Debug for LoopbackTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LoopbackTransport")
    }
}

impl LoopbackTransport {
    /// Wraps a responder function.
    pub fn new<F>(respond: F) -> LoopbackTransport
    where
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    {
        LoopbackTransport { respond: Box::new(respond) }
    }
}

impl Transport for LoopbackTransport {
    fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
        Ok((self.respond)(bytes))
    }
}

type Reply = crossbeam::channel::Sender<Vec<u8>>;

/// Client half of a cross-thread transport (pairs with
/// [`ChannelTransportServer`] running in the server's thread).
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    tx: crossbeam::channel::Sender<(Vec<u8>, Reply)>,
}

/// Server half: the owning thread pulls requests and sends replies.
#[derive(Debug)]
pub struct ChannelTransportServer {
    rx: crossbeam::channel::Receiver<(Vec<u8>, Reply)>,
}

impl ChannelTransport {
    /// Creates a connected client/server pair.
    pub fn pair() -> (ChannelTransport, ChannelTransportServer) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (ChannelTransport { tx }, ChannelTransportServer { rx })
    }
}

impl Transport for ChannelTransport {
    fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
        let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
        self.tx
            .send((bytes.to_vec(), reply_tx))
            .map_err(|_| RdsError::Transport { message: "server gone".to_string() })?;
        reply_rx
            .recv()
            .map_err(|_| RdsError::Transport { message: "server dropped request".to_string() })
    }
}

impl ChannelTransportServer {
    /// Serves requests until every client handle is dropped, answering
    /// each with `respond`. Runs on the calling thread.
    pub fn serve<F>(&self, mut respond: F)
    where
        F: FnMut(&[u8]) -> Vec<u8>,
    {
        while let Ok((req, reply)) = self.rx.recv() {
            let _ = reply.send(respond(&req));
        }
    }

    /// Handles at most one pending request; returns whether one was
    /// handled. Useful for single-stepping in tests.
    pub fn poll_one<F>(&self, mut respond: F) -> bool
    where
        F: FnMut(&[u8]) -> Vec<u8>,
    {
        match self.rx.try_recv() {
            Ok((req, reply)) => {
                let _ = reply.send(respond(&req));
                true
            }
            Err(_) => false,
        }
    }
}

/// A transport shared behind `Arc` is still a transport.
impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
        (**self).request(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip() {
        let t = LoopbackTransport::new(|req: &[u8]| {
            let mut v = req.to_vec();
            v.reverse();
            v
        });
        assert_eq!(t.request(&[1, 2, 3]).unwrap(), vec![3, 2, 1]);
    }

    #[test]
    fn channel_transport_across_threads() {
        let (client, server) = ChannelTransport::pair();
        let handle = std::thread::spawn(move || {
            server.serve(|req| {
                let mut v = req.to_vec();
                v.push(0xFF);
                v
            });
        });
        let resp = client.request(&[1]).unwrap();
        assert_eq!(resp, vec![1, 0xFF]);
        let clone = client.clone();
        assert_eq!(clone.request(&[2]).unwrap(), vec![2, 0xFF]);
        drop(client);
        drop(clone);
        handle.join().unwrap();
    }

    #[test]
    fn request_after_server_death_errors() {
        let (client, server) = ChannelTransport::pair();
        drop(server);
        assert!(matches!(client.request(&[1]), Err(RdsError::Transport { .. })));
    }

    #[test]
    fn poll_one_handles_backlog() {
        let (client, server) = ChannelTransport::pair();
        assert!(!server.poll_one(|r| r.to_vec()));
        let t = std::thread::spawn(move || client.request(&[9]).unwrap());
        // Wait for the request to arrive, then answer it.
        while !server.poll_one(|r| r.to_vec()) {
            std::thread::yield_now();
        }
        assert_eq!(t.join().unwrap(), vec![9]);
    }

    #[test]
    fn arc_transport_works() {
        let t: Arc<LoopbackTransport> = Arc::new(LoopbackTransport::new(|r: &[u8]| r.to_vec()));
        assert_eq!(t.request(&[5]).unwrap(), vec![5]);
    }
}
