//! Exactly-once request semantics: a bounded per-principal
//! duplicate-suppression cache.
//!
//! A lost *response* is indistinguishable from a lost *request*, so a
//! retrying manager may re-send a frame whose effect already executed.
//! Naively re-running `Instantiate` would create a second dpi; re-running
//! `Terminate` would answer `BadState`. The cache keys each processed
//! request on `(principal, request_id)` and remembers the **encoded
//! response**, so a retried frame is answered by replaying the original
//! bytes — the effect runs at most once, and the manager cannot tell a
//! replay from a first answer (they are byte-identical, trace echo
//! included, because retries re-send the identical frame).
//!
//! A fingerprint of the full request frame guards the id-reuse hazard: a
//! restarted manager that reuses id 1 for a *different* request hashes
//! differently, misses, and executes normally. Eviction is drop-oldest
//! per principal (insertion order), and the principal table itself is
//! bounded the same way, so memory stays bounded no matter how many
//! managers or ids appear.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Entries retained per principal by default.
pub const DEFAULT_DEDUP_CAPACITY: usize = 128;

/// Distinct principals tracked at once (drop-oldest beyond this).
const MAX_PRINCIPALS: usize = 64;

/// A cheap stable fingerprint of a request frame (FNV-1a 64) used to
/// distinguish a true retry (identical bytes) from request-id reuse.
pub fn frame_fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Responses already sent to one principal, keyed by request id.
struct PrincipalEntries {
    /// request id → (request fingerprint, encoded response).
    map: HashMap<i64, (u64, Vec<u8>)>,
    /// Insertion order for drop-oldest eviction.
    order: VecDeque<i64>,
}

/// Bounded duplicate-suppression cache (see the module docs).
pub struct DedupCache {
    inner: Mutex<DedupInner>,
    capacity: usize,
    hits: AtomicU64,
    insertions: AtomicU64,
}

struct DedupInner {
    principals: HashMap<String, PrincipalEntries>,
    principal_order: VecDeque<String>,
}

impl DedupCache {
    /// A cache retaining at most `capacity` responses per principal
    /// (min 1).
    pub fn new(capacity: usize) -> DedupCache {
        DedupCache {
            inner: Mutex::new(DedupInner {
                principals: HashMap::new(),
                principal_order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// Looks up a previously sent response for `(principal, request_id)`.
    /// Returns the encoded response only when `fingerprint` matches the
    /// stored one — id reuse with different bytes is a miss, not a
    /// replay.
    pub fn lookup(&self, principal: &str, request_id: i64, fingerprint: u64) -> Option<Vec<u8>> {
        let inner = self.inner.lock();
        let entries = inner.principals.get(principal)?;
        let (stored_fp, response) = entries.map.get(&request_id)?;
        if *stored_fp != fingerprint {
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(response.clone())
    }

    /// Remembers the encoded `response` for `(principal, request_id)`,
    /// evicting the principal's oldest entry at capacity (and the oldest
    /// principal when the principal table itself is full).
    pub fn store(&self, principal: &str, request_id: i64, fingerprint: u64, response: &[u8]) {
        let mut inner = self.inner.lock();
        if !inner.principals.contains_key(principal) {
            if inner.principals.len() >= MAX_PRINCIPALS {
                if let Some(oldest) = inner.principal_order.pop_front() {
                    inner.principals.remove(&oldest);
                }
            }
            inner.principal_order.push_back(principal.to_string());
            inner.principals.insert(
                principal.to_string(),
                PrincipalEntries { map: HashMap::new(), order: VecDeque::new() },
            );
        }
        let entries = inner.principals.get_mut(principal).expect("just inserted");
        if entries.map.insert(request_id, (fingerprint, response.to_vec())).is_none() {
            entries.order.push_back(request_id);
            if entries.order.len() > self.capacity {
                if let Some(evicted) = entries.order.pop_front() {
                    entries.map.remove(&evicted);
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Replays served from the cache since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Responses remembered since creation (including overwrites).
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// The per-principal capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for DedupCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DedupCache")
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("insertions", &self.insertions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_requires_matching_fingerprint() {
        let cache = DedupCache::new(8);
        let fp = frame_fingerprint(b"request-1");
        cache.store("mgr", 1, fp, b"response-1");
        assert_eq!(cache.lookup("mgr", 1, fp), Some(b"response-1".to_vec()));
        assert_eq!(cache.hits(), 1);
        // Same id, different bytes: a restarted manager reusing ids.
        assert_eq!(cache.lookup("mgr", 1, frame_fingerprint(b"other")), None);
        // Different principal or id: miss.
        assert_eq!(cache.lookup("other", 1, fp), None);
        assert_eq!(cache.lookup("mgr", 2, fp), None);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn eviction_is_drop_oldest_per_principal() {
        let cache = DedupCache::new(2);
        for id in 1..=3i64 {
            cache.store("mgr", id, id as u64, b"r");
        }
        assert_eq!(cache.lookup("mgr", 1, 1), None, "oldest entry evicted");
        assert!(cache.lookup("mgr", 2, 2).is_some());
        assert!(cache.lookup("mgr", 3, 3).is_some());
        // Another principal has its own budget.
        cache.store("peer", 9, 9, b"r");
        assert!(cache.lookup("peer", 9, 9).is_some());
        assert!(cache.lookup("mgr", 3, 3).is_some());
    }

    #[test]
    fn overwriting_an_id_does_not_grow_the_ring() {
        let cache = DedupCache::new(2);
        cache.store("mgr", 1, 1, b"a");
        cache.store("mgr", 1, 2, b"b");
        cache.store("mgr", 2, 2, b"r");
        // Id 1 was overwritten in place, so ids 1 and 2 both fit.
        assert_eq!(cache.lookup("mgr", 1, 2), Some(b"b".to_vec()));
        assert!(cache.lookup("mgr", 2, 2).is_some());
        assert_eq!(cache.insertions(), 3);
    }

    #[test]
    fn principal_table_is_bounded() {
        let cache = DedupCache::new(4);
        for i in 0..(MAX_PRINCIPALS + 5) {
            cache.store(&format!("mgr-{i}"), 1, 1, b"r");
        }
        assert_eq!(cache.lookup("mgr-0", 1, 1), None, "oldest principal evicted");
        assert!(cache.lookup(&format!("mgr-{}", MAX_PRINCIPALS + 4), 1, 1).is_some());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = DedupCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.store("mgr", 1, 1, b"a");
        cache.store("mgr", 2, 2, b"b");
        assert_eq!(cache.lookup("mgr", 1, 1), None);
        assert!(cache.lookup("mgr", 2, 2).is_some());
    }

    #[test]
    fn fingerprints_differ_on_any_byte() {
        assert_ne!(frame_fingerprint(b"abc"), frame_fingerprint(b"abd"));
        assert_ne!(frame_fingerprint(b""), frame_fingerprint(b"\0"));
    }
}
