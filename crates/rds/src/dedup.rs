//! Exactly-once request semantics: a bounded per-principal
//! duplicate-suppression cache with single-flight execution.
//!
//! A lost *response* is indistinguishable from a lost *request*, so a
//! retrying manager may re-send a frame whose effect already executed.
//! Naively re-running `Instantiate` would create a second dpi; re-running
//! `Terminate` would answer `BadState`. The cache keys each processed
//! request on `(principal, request_id)` and remembers the **encoded
//! response**, so a retried frame is answered by replaying the original
//! bytes — the effect runs at most once, and the manager cannot tell a
//! replay from a first answer (they are byte-identical, trace echo
//! included, because retries re-send the identical frame).
//!
//! Pipelined connections add a twist the serial path never had: two
//! byte-identical copies of one frame (a duplicated delivery, or a
//! retry racing its original) can reach two executor workers *at the
//! same time*. A lookup-then-store cache would miss on both and execute
//! twice, so admission is **single-flight**: [`DedupCache::begin`]
//! atomically claims the key for the first arrival and makes identical
//! concurrent arrivals wait for that execution, then replays its
//! response. [`DedupCache::complete`] publishes the response;
//! [`DedupCache::abandon`] releases a claim whose execution unwound so
//! a later retry can run the request for real.
//!
//! A fingerprint of the full request frame guards the id-reuse hazard: a
//! restarted manager that reuses id 1 for a *different* request hashes
//! differently, misses, and executes normally. Eviction is drop-oldest
//! per principal (insertion order), and the principal table itself is
//! bounded the same way, so memory stays bounded no matter how many
//! managers or ids appear.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Condvar;
use std::time::{Duration, Instant};

/// Entries retained per principal by default.
pub const DEFAULT_DEDUP_CAPACITY: usize = 128;

/// Distinct principals tracked at once (drop-oldest beyond this).
const MAX_PRINCIPALS: usize = 64;

/// How long a duplicate waits on the first execution before reclaiming
/// the key for itself. Only a claim leaked by a killed thread can take
/// this long (panics release via [`DedupCache::abandon`]); reclaiming
/// degrades that pathological case to at-least-once instead of wedging
/// an executor worker forever.
const RECLAIM_AFTER: Duration = Duration::from_secs(5);

/// A cheap stable fingerprint of a request frame (FNV-1a 64) used to
/// distinguish a true retry (identical bytes) from request-id reuse.
pub fn frame_fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What [`DedupCache::begin`] decided for an arriving request frame.
#[derive(Debug)]
pub enum DedupOutcome {
    /// First arrival of these bytes: the caller owns the claim, must
    /// execute the request, and then [`complete`](DedupCache::complete)
    /// (or [`abandon`](DedupCache::abandon) on unwind).
    Execute,
    /// These exact bytes were already answered (possibly after waiting
    /// for a concurrent identical arrival to finish): send this encoded
    /// response without executing anything.
    Replay(Vec<u8>),
}

/// Where one `(principal, request id)` slot stands.
enum Slot {
    /// Claimed by [`DedupCache::begin`]; execution is running somewhere.
    InFlight,
    /// Executed; the encoded response to replay for identical retries.
    Done(Vec<u8>),
}

/// Responses already sent to one principal, keyed by request id.
struct PrincipalEntries {
    /// request id → (request fingerprint, slot).
    map: HashMap<i64, (u64, Slot)>,
    /// Insertion order for drop-oldest eviction.
    order: VecDeque<i64>,
}

/// Bounded duplicate-suppression cache (see the module docs).
pub struct DedupCache {
    inner: Mutex<DedupInner>,
    /// Wakes duplicates blocked in [`DedupCache::begin`] whenever a slot
    /// resolves (complete or abandon).
    resolved: Condvar,
    capacity: usize,
    hits: AtomicU64,
    insertions: AtomicU64,
}

struct DedupInner {
    principals: HashMap<String, PrincipalEntries>,
    principal_order: VecDeque<String>,
}

impl DedupInner {
    fn entries_mut(&mut self, principal: &str) -> &mut PrincipalEntries {
        if !self.principals.contains_key(principal) {
            if self.principals.len() >= MAX_PRINCIPALS {
                if let Some(oldest) = self.principal_order.pop_front() {
                    self.principals.remove(&oldest);
                }
            }
            self.principal_order.push_back(principal.to_string());
            self.principals.insert(
                principal.to_string(),
                PrincipalEntries { map: HashMap::new(), order: VecDeque::new() },
            );
        }
        self.principals.get_mut(principal).expect("just inserted")
    }
}

impl DedupCache {
    /// A cache retaining at most `capacity` responses per principal
    /// (min 1).
    pub fn new(capacity: usize) -> DedupCache {
        DedupCache {
            inner: Mutex::new(DedupInner {
                principals: HashMap::new(),
                principal_order: VecDeque::new(),
            }),
            resolved: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// Admits one request frame: either this caller must execute it
    /// ([`DedupOutcome::Execute`], which atomically claims the key), or
    /// the response already exists and is replayed. An identical frame
    /// whose execution is currently in flight on another thread **blocks
    /// here** until that execution resolves, then replays its response —
    /// never executing the effect a second time.
    ///
    /// Id reuse with different bytes (`fingerprint` mismatch) overwrites
    /// the slot and executes normally, matching a restarted manager.
    pub fn begin(&self, principal: &str, request_id: i64, fingerprint: u64) -> DedupOutcome {
        let mut inner = self.inner.lock();
        // Deadline materialized only if an in-flight claim forces a wait;
        // the hot hit/miss paths never read the clock.
        let mut reclaim_at: Option<Instant> = None;
        loop {
            match inner.principals.get(principal).and_then(|e| e.map.get(&request_id)) {
                Some((stored_fp, Slot::Done(response))) if *stored_fp == fingerprint => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return DedupOutcome::Replay(response.clone());
                }
                Some((stored_fp, Slot::InFlight)) if *stored_fp == fingerprint => {
                    let deadline =
                        *reclaim_at.get_or_insert_with(|| Instant::now() + RECLAIM_AFTER);
                    if Instant::now() >= deadline {
                        // The claim leaked (its thread died without
                        // unwinding). Take it over rather than wedge.
                        inner
                            .entries_mut(principal)
                            .map
                            .insert(request_id, (fingerprint, Slot::InFlight));
                        return DedupOutcome::Execute;
                    }
                    let (guard, _timeout) = self
                        .resolved
                        .wait_timeout(inner, RECLAIM_AFTER)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    inner = guard;
                }
                _ => {
                    // Miss (or id reuse with different bytes): claim it.
                    let capacity = self.capacity;
                    let entries = inner.entries_mut(principal);
                    if entries.map.insert(request_id, (fingerprint, Slot::InFlight)).is_none() {
                        entries.order.push_back(request_id);
                        if entries.order.len() > capacity {
                            if let Some(evicted) = entries.order.pop_front() {
                                entries.map.remove(&evicted);
                            }
                        }
                    }
                    return DedupOutcome::Execute;
                }
            }
        }
    }

    /// Publishes the encoded `response` for a claim taken via
    /// [`begin`](DedupCache::begin), waking any identical duplicates
    /// blocked on it. A slot meanwhile reclaimed for different bytes
    /// (id reuse) is left to its new owner.
    pub fn complete(&self, principal: &str, request_id: i64, fingerprint: u64, response: &[u8]) {
        let mut inner = self.inner.lock();
        let entries = inner.entries_mut(principal);
        match entries.map.get(&request_id) {
            Some((stored_fp, _)) if *stored_fp != fingerprint => {}
            Some(_) => {
                entries.map.insert(request_id, (fingerprint, Slot::Done(response.to_vec())));
            }
            None => {
                // Evicted while executing (capacity pressure): re-insert
                // so retries still replay instead of re-executing.
                entries.map.insert(request_id, (fingerprint, Slot::Done(response.to_vec())));
                entries.order.push_back(request_id);
                if entries.order.len() > self.capacity {
                    if let Some(evicted) = entries.order.pop_front() {
                        entries.map.remove(&evicted);
                    }
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.resolved.notify_all();
    }

    /// Releases a claim whose execution unwound without producing a
    /// response, so a later retry of the same bytes executes for real.
    /// Duplicates blocked on the claim are woken and race to re-claim.
    pub fn abandon(&self, principal: &str, request_id: i64, fingerprint: u64) {
        let mut inner = self.inner.lock();
        if let Some(entries) = inner.principals.get_mut(principal) {
            if let Some((stored_fp, Slot::InFlight)) = entries.map.get(&request_id) {
                if *stored_fp == fingerprint {
                    entries.map.remove(&request_id);
                    // The stale id in `order` is harmless: eviction pops
                    // it as a no-op, and `order` only grows on fresh
                    // inserts, so both stay bounded by `capacity`.
                }
            }
        }
        drop(inner);
        self.resolved.notify_all();
    }

    /// Replays served from the cache since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Responses remembered since creation (including overwrites).
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// The per-principal capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for DedupCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DedupCache")
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("insertions", &self.insertions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// begin + complete in one step, for tests exercising the cache
    /// shape rather than the single-flight window.
    fn seed(cache: &DedupCache, principal: &str, id: i64, fp: u64, response: &[u8]) {
        assert!(matches!(cache.begin(principal, id, fp), DedupOutcome::Execute));
        cache.complete(principal, id, fp, response);
    }

    #[test]
    fn replay_requires_matching_fingerprint() {
        let cache = DedupCache::new(8);
        let fp = frame_fingerprint(b"request-1");
        seed(&cache, "mgr", 1, fp, b"response-1");
        match cache.begin("mgr", 1, fp) {
            DedupOutcome::Replay(r) => assert_eq!(r, b"response-1".to_vec()),
            other => panic!("expected replay, got {other:?}"),
        }
        assert_eq!(cache.hits(), 1);
        // Same id, different bytes: a restarted manager reusing ids —
        // executes (and takes over the slot).
        assert!(matches!(
            cache.begin("mgr", 1, frame_fingerprint(b"other")),
            DedupOutcome::Execute
        ));
        // Different principal or id: miss.
        assert!(matches!(cache.begin("other", 1, fp), DedupOutcome::Execute));
        assert!(matches!(cache.begin("mgr", 2, fp), DedupOutcome::Execute));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn eviction_is_drop_oldest_per_principal() {
        let cache = DedupCache::new(2);
        for id in 1..=3i64 {
            seed(&cache, "mgr", id, id as u64, b"r");
        }
        // The newest two survive; the oldest is gone — and re-claiming
        // it is itself an insert, which evicts the then-oldest (2).
        assert!(matches!(cache.begin("mgr", 3, 3), DedupOutcome::Replay(_)));
        assert!(matches!(cache.begin("mgr", 2, 2), DedupOutcome::Replay(_)));
        assert!(matches!(cache.begin("mgr", 1, 1), DedupOutcome::Execute), "oldest evicted");
        cache.abandon("mgr", 1, 1);
        assert!(matches!(cache.begin("mgr", 3, 3), DedupOutcome::Replay(_)));
        // Another principal has its own budget.
        seed(&cache, "peer", 9, 9, b"r");
        assert!(matches!(cache.begin("peer", 9, 9), DedupOutcome::Replay(_)));
        assert!(matches!(cache.begin("mgr", 3, 3), DedupOutcome::Replay(_)));
    }

    #[test]
    fn overwriting_an_id_does_not_grow_the_ring() {
        let cache = DedupCache::new(2);
        seed(&cache, "mgr", 1, 1, b"a");
        seed(&cache, "mgr", 1, 2, b"b");
        seed(&cache, "mgr", 2, 2, b"r");
        // Id 1 was overwritten in place, so ids 1 and 2 both fit.
        match cache.begin("mgr", 1, 2) {
            DedupOutcome::Replay(r) => assert_eq!(r, b"b".to_vec()),
            other => panic!("expected replay, got {other:?}"),
        }
        assert!(matches!(cache.begin("mgr", 2, 2), DedupOutcome::Replay(_)));
        assert_eq!(cache.insertions(), 3);
    }

    #[test]
    fn principal_table_is_bounded() {
        let cache = DedupCache::new(4);
        for i in 0..(MAX_PRINCIPALS + 5) {
            seed(&cache, &format!("mgr-{i}"), 1, 1, b"r");
        }
        assert!(
            matches!(cache.begin("mgr-0", 1, 1), DedupOutcome::Execute),
            "oldest principal evicted"
        );
        assert!(matches!(
            cache.begin(&format!("mgr-{}", MAX_PRINCIPALS + 4), 1, 1),
            DedupOutcome::Replay(_)
        ));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = DedupCache::new(0);
        assert_eq!(cache.capacity(), 1);
        seed(&cache, "mgr", 1, 1, b"a");
        seed(&cache, "mgr", 2, 2, b"b");
        assert!(matches!(cache.begin("mgr", 2, 2), DedupOutcome::Replay(_)), "newest kept");
        assert!(matches!(cache.begin("mgr", 1, 1), DedupOutcome::Execute), "oldest evicted");
        cache.abandon("mgr", 1, 1);
    }

    #[test]
    fn fingerprints_differ_on_any_byte() {
        assert_ne!(frame_fingerprint(b"abc"), frame_fingerprint(b"abd"));
        assert_ne!(frame_fingerprint(b""), frame_fingerprint(b"\0"));
    }

    #[test]
    fn concurrent_identical_frames_execute_single_flight() {
        // The pipelined-duplicate race: a second identical frame arriving
        // while the first is still executing must wait and replay — not
        // execute a second time.
        let cache = Arc::new(DedupCache::new(8));
        assert!(matches!(cache.begin("mgr", 1, 7), DedupOutcome::Execute));
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.begin("mgr", 1, 7))
        };
        // Give the duplicate time to block on the in-flight claim, then
        // publish the first execution's response.
        std::thread::sleep(Duration::from_millis(50));
        cache.complete("mgr", 1, 7, b"first");
        match waiter.join().expect("waiter thread") {
            DedupOutcome::Replay(r) => assert_eq!(r, b"first".to_vec()),
            other => panic!("duplicate executed instead of replaying: {other:?}"),
        }
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn abandoned_claims_let_retries_execute() {
        let cache = Arc::new(DedupCache::new(8));
        assert!(matches!(cache.begin("mgr", 1, 7), DedupOutcome::Execute));
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.begin("mgr", 1, 7))
        };
        std::thread::sleep(Duration::from_millis(50));
        // The first execution panicked: its guard abandons the claim and
        // the blocked duplicate takes over.
        cache.abandon("mgr", 1, 7);
        assert!(matches!(waiter.join().expect("waiter thread"), DedupOutcome::Execute));
        assert_eq!(cache.hits(), 0);
    }
}
