use ber::BerValue;
use std::fmt;

/// End-to-end correlation context carried (optionally) by every RDS
/// frame: one delegation is one trace from the manager's request to the
/// dpi effects it causes (telemetry spans, notifications, agent log
/// lines, journal records).
///
/// A zero `trace_id` means "no trace" — the codec then emits exactly the
/// legacy frame layout, byte for byte, so untraced messages remain
/// indistinguishable from pre-trace implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The request's correlation id (0 = unset).
    pub trace_id: u64,
    /// The caller's span id, for managers relaying on behalf of a
    /// larger traced operation (0 = this request is the root).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Whether any trace context is present.
    pub fn is_set(&self) -> bool {
        self.trace_id != 0 || self.parent_span_id != 0
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.trace_id)
    }
}

/// One structured entry of the server's audit journal: an RDS operation,
/// lifecycle transition, quota breach or handler panic, with enough
/// context to answer "who did what to which dpi, under which trace, and
/// how did it end".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotone journal sequence number (gaps mean drop-oldest evictions).
    pub seq: u64,
    /// Server clock (hundredths of a second) when recorded.
    pub ticks: u64,
    /// Trace id of the request that caused this event (0 = none).
    pub trace_id: u64,
    /// Acting principal handle (`server` for internally caused events).
    pub principal: String,
    /// What happened: an RDS verb name, `decode_fail.<kind>`,
    /// `lifecycle.<transition>`, `quota.breach` or `panic`.
    pub verb: String,
    /// Target instance id (0 = no dpi involved).
    pub dpi: u64,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Outcome detail (error text, breach dimension, …).
    pub detail: String,
}

/// Identifies a delegated program instance (dpi) on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DpiId(pub u64);

impl fmt::Display for DpiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpi-{}", self.0)
    }
}

/// The lifecycle states of a dpi (the paper's instance state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DpiState {
    /// Instantiated, idle between invocations.
    Ready,
    /// Currently executing an invocation.
    Running,
    /// Suspended: invocations and messages queue until resume.
    Suspended,
    /// Terminated: only observable in listings kept for diagnostics.
    Terminated,
}

impl DpiState {
    /// Stable wire integer.
    pub fn code(self) -> i64 {
        match self {
            DpiState::Ready => 0,
            DpiState::Running => 1,
            DpiState::Suspended => 2,
            DpiState::Terminated => 3,
        }
    }

    /// Parses a wire integer.
    pub fn from_code(code: i64) -> Option<DpiState> {
        Some(match code {
            0 => DpiState::Ready,
            1 => DpiState::Running,
            2 => DpiState::Suspended,
            3 => DpiState::Terminated,
            _ => return None,
        })
    }
}

impl fmt::Display for DpiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DpiState::Ready => "ready",
            DpiState::Running => "running",
            DpiState::Suspended => "suspended",
            DpiState::Terminated => "terminated",
        };
        f.write_str(s)
    }
}

/// One span of a [`RdsResponse::Profile`] tree: a named interval with a
/// parent edge, enough to reconstruct the request's waterfall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the server's telemetry domain).
    pub span_id: u64,
    /// The enclosing span's id (0 = root).
    pub parent_span_id: u64,
    /// Operation name (`rds.request`, `ep.invoke`, …).
    pub name: String,
    /// Start offset, ns since the server's telemetry epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub duration_ns: u64,
}

/// One retained sample (or downsampled bucket) of a
/// [`MetricSeries`]. At 1 s resolution `min == max == avg == last`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricPoint {
    /// Window start, seconds since the server's telemetry epoch.
    pub t_s: u64,
    pub min: u64,
    pub max: u64,
    pub avg: u64,
    pub last: u64,
}

/// One series of a [`RdsResponse::Metrics`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSeries {
    /// Series name (`rds.request` for a counter rate,
    /// `rds.request.p99` for a histogram quantile, …).
    pub name: String,
    /// `rate` | `gauge` | `quantile` (quantiles are nanoseconds).
    pub kind: String,
    /// Points, oldest first.
    pub points: Vec<MetricPoint>,
}

/// One alert rule's state in a [`RdsResponse::Metrics`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertStatus {
    /// The rule as configured (`rds.request.p99>50ms@10s:for=2`).
    pub rule: String,
    /// The series the rule watches.
    pub metric: String,
    /// Currently firing.
    pub firing: bool,
    /// Most recently evaluated value.
    pub value: u64,
    /// When the current firing episode began (0 when not firing).
    pub since_s: u64,
    /// Lifetime fire count.
    pub fired_count: u64,
}

/// One row of a `ListInstances` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpiSummary {
    /// Instance id.
    pub id: DpiId,
    /// Name of the dp it instantiates.
    pub dp_name: String,
    /// Current state.
    pub state: DpiState,
}

/// A request from a delegating manager to an elastic process.
#[derive(Debug, Clone, PartialEq)]
pub enum RdsRequest {
    /// Transfer a delegated program. `language` names the encoding of
    /// `source` ("dpl" for this implementation — the field exists because
    /// elastic processing is language-neutral by design).
    DelegateProgram {
        /// Repository name for the dp.
        dp_name: String,
        /// Source language tag.
        language: String,
        /// Program text.
        source: Vec<u8>,
    },
    /// Remove a dp from the repository.
    DeleteProgram {
        /// Name of the dp to delete.
        dp_name: String,
    },
    /// Create an instance of a stored dp.
    Instantiate {
        /// Name of the dp to instantiate.
        dp_name: String,
    },
    /// Invoke an entry point of a dpi.
    Invoke {
        /// Target instance.
        dpi: DpiId,
        /// Entry-point function name.
        entry: String,
        /// Arguments (BER-encoded values).
        args: Vec<BerValue>,
    },
    /// Pause a dpi.
    Suspend {
        /// Target instance.
        dpi: DpiId,
    },
    /// Resume a suspended dpi.
    Resume {
        /// Target instance.
        dpi: DpiId,
    },
    /// Destroy a dpi.
    Terminate {
        /// Target instance.
        dpi: DpiId,
    },
    /// Post an asynchronous message to a dpi's mailbox.
    SendMessage {
        /// Target instance.
        dpi: DpiId,
        /// Opaque payload the dpi reads with `recv()`.
        payload: Vec<u8>,
    },
    /// List stored dps.
    ListPrograms,
    /// List instances and their states.
    ListInstances,
    /// Read the tail of the server's audit journal.
    ReadJournal {
        /// Upper bound on returned records (newest win).
        max_records: u32,
    },
    /// Read a retained span tree and/or the VM profiler's folded stacks.
    ReadProfile {
        /// Trace id of the span tree to fetch (0 = the most recently
        /// retained tree, anomalous trees first).
        trace_id: u64,
        /// Restrict the folded stacks to one dpi (0 = all profiled
        /// dpis, each line prefixed `dpi-N;`).
        dpi: u64,
    },
    /// Read retained metrics history (time series) and alert states.
    ReadMetrics {
        /// `*`-glob over series names (empty = all).
        pattern: String,
        /// Trailing window in seconds (0 = everything retained).
        range_s: u32,
        /// Requested ring resolution in seconds (1, 10 or 60; the
        /// server rounds down to the nearest ring).
        res_s: u32,
    },
    /// Serialize a *suspended* dpi into a transferable checkpoint blob
    /// (the agent-migration export; non-destructive).
    Checkpoint {
        /// The instance to serialize.
        dpi: DpiId,
    },
    /// Install a checkpoint blob from another server as a suspended
    /// dpi. The blob's single-use nonce is burned on install.
    Restore {
        /// The blob produced by `Checkpoint` elsewhere.
        blob: Vec<u8>,
    },
}

impl RdsRequest {
    /// The wire operation tag (context-constructed tag number).
    pub fn op_tag(&self) -> u8 {
        match self {
            RdsRequest::DelegateProgram { .. } => 0,
            RdsRequest::DeleteProgram { .. } => 1,
            RdsRequest::Instantiate { .. } => 2,
            RdsRequest::Invoke { .. } => 3,
            RdsRequest::Suspend { .. } => 4,
            RdsRequest::Resume { .. } => 5,
            RdsRequest::Terminate { .. } => 6,
            RdsRequest::SendMessage { .. } => 7,
            RdsRequest::ListPrograms => 8,
            RdsRequest::ListInstances => 9,
            RdsRequest::ReadJournal { .. } => 10,
            RdsRequest::ReadProfile { .. } => 11,
            RdsRequest::ReadMetrics { .. } => 12,
            RdsRequest::Checkpoint { .. } => 13,
            RdsRequest::Restore { .. } => 14,
        }
    }

    /// The verb name used for per-verb telemetry metrics
    /// (`rds.verb.<name>`).
    pub fn verb(&self) -> &'static str {
        match self {
            RdsRequest::DelegateProgram { .. } => "delegate",
            RdsRequest::DeleteProgram { .. } => "delete",
            RdsRequest::Instantiate { .. } => "instantiate",
            RdsRequest::Invoke { .. } => "invoke",
            RdsRequest::Suspend { .. } => "suspend",
            RdsRequest::Resume { .. } => "resume",
            RdsRequest::Terminate { .. } => "terminate",
            RdsRequest::SendMessage { .. } => "send_message",
            RdsRequest::ListPrograms => "list_programs",
            RdsRequest::ListInstances => "list_instances",
            RdsRequest::ReadJournal { .. } => "read_journal",
            RdsRequest::ReadProfile { .. } => "read_profile",
            RdsRequest::ReadMetrics { .. } => "read_metrics",
            RdsRequest::Checkpoint { .. } => "checkpoint",
            RdsRequest::Restore { .. } => "restore",
        }
    }

    /// The dp name this request targets, if it names one directly.
    pub fn dp_name(&self) -> Option<&str> {
        match self {
            RdsRequest::DelegateProgram { dp_name, .. }
            | RdsRequest::DeleteProgram { dp_name }
            | RdsRequest::Instantiate { dp_name } => Some(dp_name),
            _ => None,
        }
    }

    /// The dpi this request targets, if it names one directly.
    pub fn dpi(&self) -> Option<DpiId> {
        match self {
            RdsRequest::Invoke { dpi, .. }
            | RdsRequest::Suspend { dpi }
            | RdsRequest::Resume { dpi }
            | RdsRequest::Terminate { dpi }
            | RdsRequest::SendMessage { dpi, .. }
            | RdsRequest::Checkpoint { dpi } => Some(*dpi),
            _ => None,
        }
    }
}

/// A response from an elastic process.
#[derive(Debug, Clone, PartialEq)]
pub enum RdsResponse {
    /// The operation succeeded with nothing to return.
    Ok,
    /// `Instantiate` succeeded.
    Instantiated {
        /// The new instance's id.
        dpi: DpiId,
    },
    /// `Invoke` succeeded.
    Result {
        /// The invocation's return value.
        value: BerValue,
    },
    /// `ListPrograms` result.
    Programs {
        /// Repository dp names, sorted.
        names: Vec<String>,
    },
    /// `ListInstances` result.
    Instances {
        /// One summary per instance.
        instances: Vec<DpiSummary>,
    },
    /// The operation failed.
    Error {
        /// Error category.
        code: crate::ErrorCode,
        /// Detail text.
        message: String,
    },
    /// `ReadJournal` result.
    Journal {
        /// Audit records, oldest first.
        records: Vec<AuditRecord>,
    },
    /// `ReadProfile` result.
    Profile {
        /// Trace id of the returned tree (0 = no tree retained).
        trace_id: u64,
        /// Why the tree was retained (`slow`, `error`, `frozen`,
        /// `reservoir`; the flight recorder appends its trigger, e.g.
        /// `frozen: p99 breach`). Empty when no tree matched.
        kept: String,
        /// The tree's spans, in ring (completion) order.
        spans: Vec<SpanRecord>,
        /// Folded-stack lines from the VM profiler, hottest first.
        stacks: Vec<String>,
    },
    /// `Checkpoint` result: the serialized dpi, installable elsewhere
    /// with `Restore`.
    Checkpointed {
        /// The encoded checkpoint blob.
        blob: Vec<u8>,
    },
    /// `ReadMetrics` result.
    Metrics {
        /// Server time of the query, seconds since the telemetry epoch
        /// (the time base of every [`MetricPoint::t_s`]).
        now_s: u64,
        /// Matching series, name-sorted.
        series: Vec<MetricSeries>,
        /// Every alert rule's current state.
        alerts: Vec<AlertStatus>,
    },
}

impl RdsResponse {
    /// The wire tag of this response variant.
    pub fn op_tag(&self) -> u8 {
        match self {
            RdsResponse::Ok => 0,
            RdsResponse::Instantiated { .. } => 1,
            RdsResponse::Result { .. } => 2,
            RdsResponse::Programs { .. } => 3,
            RdsResponse::Instances { .. } => 4,
            RdsResponse::Error { .. } => 5,
            RdsResponse::Journal { .. } => 6,
            RdsResponse::Profile { .. } => 7,
            RdsResponse::Metrics { .. } => 8,
            RdsResponse::Checkpointed { .. } => 9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpi_state_codes_round_trip() {
        for s in [DpiState::Ready, DpiState::Running, DpiState::Suspended, DpiState::Terminated] {
            assert_eq!(DpiState::from_code(s.code()), Some(s));
        }
        assert_eq!(DpiState::from_code(9), None);
    }

    #[test]
    fn op_tags_are_distinct() {
        let reqs = vec![
            RdsRequest::DelegateProgram {
                dp_name: String::new(),
                language: String::new(),
                source: vec![],
            },
            RdsRequest::DeleteProgram { dp_name: String::new() },
            RdsRequest::Instantiate { dp_name: String::new() },
            RdsRequest::Invoke { dpi: DpiId(0), entry: String::new(), args: vec![] },
            RdsRequest::Suspend { dpi: DpiId(0) },
            RdsRequest::Resume { dpi: DpiId(0) },
            RdsRequest::Terminate { dpi: DpiId(0) },
            RdsRequest::SendMessage { dpi: DpiId(0), payload: vec![] },
            RdsRequest::ListPrograms,
            RdsRequest::ListInstances,
            RdsRequest::ReadJournal { max_records: 0 },
            RdsRequest::ReadProfile { trace_id: 0, dpi: 0 },
            RdsRequest::ReadMetrics { pattern: String::new(), range_s: 0, res_s: 0 },
            RdsRequest::Checkpoint { dpi: DpiId(0) },
            RdsRequest::Restore { blob: vec![] },
        ];
        let mut tags: Vec<u8> = reqs.iter().map(RdsRequest::op_tag).collect();
        tags.dedup();
        assert_eq!(tags.len(), reqs.len());
    }

    #[test]
    fn dp_name_extraction() {
        let r = RdsRequest::Instantiate { dp_name: "health".to_string() };
        assert_eq!(r.dp_name(), Some("health"));
        assert_eq!(RdsRequest::ListPrograms.dp_name(), None);
    }

    #[test]
    fn displays() {
        assert_eq!(DpiId(3).to_string(), "dpi-3");
        assert_eq!(DpiState::Suspended.to_string(), "suspended");
        assert_eq!(
            TraceContext { trace_id: 0xAB, parent_span_id: 0 }.to_string(),
            "00000000000000ab"
        );
    }

    #[test]
    fn dpi_extraction() {
        let r = RdsRequest::Suspend { dpi: DpiId(4) };
        assert_eq!(r.dpi(), Some(DpiId(4)));
        assert_eq!(RdsRequest::ListInstances.dpi(), None);
        assert_eq!(RdsRequest::Instantiate { dp_name: "x".into() }.dpi(), None);
    }

    #[test]
    fn trace_context_is_set() {
        assert!(!TraceContext::default().is_set());
        assert!(TraceContext { trace_id: 1, parent_span_id: 0 }.is_set());
        assert!(TraceContext { trace_id: 0, parent_span_id: 2 }.is_set());
    }
}
