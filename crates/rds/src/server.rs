use crate::{codec, ErrorCode, RdsRequest, RdsResponse};
use mbd_auth::{Acl, Operation, Principal};
use mbd_telemetry::{Telemetry, Timer};

/// Pre-resolved timers for the protocol front-end: BER decode time plus
/// one latency histogram per RDS verb (`rds.decode`, `rds.verb.<name>`
/// — resolved once here so the per-request cost is a clock read and a
/// lock-free record).
#[derive(Debug, Clone)]
struct RdsTimers {
    decode: Timer,
    /// Indexed by [`RdsRequest::op_tag`].
    verbs: [Timer; 10],
}

impl RdsTimers {
    fn new(telemetry: &Telemetry) -> RdsTimers {
        let verb = |name: &str| telemetry.timer(&format!("rds.verb.{name}"));
        RdsTimers {
            decode: telemetry.timer("rds.decode"),
            verbs: [
                verb("delegate"),
                verb("delete"),
                verb("instantiate"),
                verb("invoke"),
                verb("suspend"),
                verb("resume"),
                verb("terminate"),
                verb("send_message"),
                verb("list_programs"),
                verb("list_instances"),
            ],
        }
    }
}

/// The application half of an RDS server: given an authenticated,
/// authorized request, produce a response. The elastic process runtime
/// implements this.
pub trait RdsHandler {
    /// Handles one request from `principal`.
    fn handle(&self, principal: &Principal, request: RdsRequest) -> RdsResponse;
}

impl<F> RdsHandler for F
where
    F: Fn(&Principal, RdsRequest) -> RdsResponse,
{
    fn handle(&self, principal: &Principal, request: RdsRequest) -> RdsResponse {
        self(principal, request)
    }
}

/// Protocol front-end of an elastic process: decodes, authenticates
/// (optional keyed digest), authorizes (handle ACL), dispatches to an
/// [`RdsHandler`], and encodes the response.
pub struct RdsServer<H> {
    handler: H,
    acl: Acl,
    key: Option<Vec<u8>>,
    timers: Option<RdsTimers>,
}

impl<H: std::fmt::Debug> std::fmt::Debug for RdsServer<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdsServer")
            .field("handler", &self.handler)
            .field("authenticated", &self.key.is_some())
            .finish()
    }
}

fn required_operation(req: &RdsRequest) -> Operation {
    match req {
        RdsRequest::DelegateProgram { .. } | RdsRequest::DeleteProgram { .. } => {
            Operation::Delegate
        }
        RdsRequest::Instantiate { .. } => Operation::Instantiate,
        RdsRequest::Invoke { .. } | RdsRequest::SendMessage { .. } => Operation::Invoke,
        RdsRequest::Suspend { .. } | RdsRequest::Resume { .. } | RdsRequest::Terminate { .. } => {
            Operation::Control
        }
        RdsRequest::ListPrograms | RdsRequest::ListInstances => Operation::List,
    }
}

impl<H: RdsHandler> RdsServer<H> {
    /// A server with the prototype's trivial access control (any handle
    /// may do anything) and no digest authentication.
    pub fn open(handler: H) -> RdsServer<H> {
        RdsServer { handler, acl: Acl::allow_by_default(), key: None, timers: None }
    }

    /// A server enforcing `acl`, optionally requiring keyed digests.
    pub fn with_policy(handler: H, acl: Acl, key: Option<Vec<u8>>) -> RdsServer<H> {
        RdsServer { handler, acl, key, timers: None }
    }

    /// Records decode time and per-verb request latency into
    /// `telemetry` (`rds.decode`, `rds.verb.<name>`) for every request
    /// this server processes.
    #[must_use]
    pub fn instrument(mut self, telemetry: &Telemetry) -> RdsServer<H> {
        self.timers = Some(RdsTimers::new(telemetry));
        self
    }

    /// The handler (for embedding servers that need to reach through).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Processes one encoded request into an encoded response.
    ///
    /// Undecodable requests get an encoded `Error` response with request
    /// id 0 (there is nothing better to correlate with).
    pub fn process(&self, bytes: &[u8]) -> Vec<u8> {
        let decode_span = self.timers.as_ref().map(|t| t.decode.start());
        let decoded = codec::decode_request(bytes, self.key.as_deref());
        drop(decode_span);
        let (request, principal, request_id) = match decoded {
            Ok(parts) => parts,
            Err(crate::RdsError::BadDigest) => {
                return codec::encode_response(
                    &RdsResponse::Error {
                        code: ErrorCode::AuthFailed,
                        message: "digest verification failed".to_string(),
                    },
                    0,
                    self.key.as_deref(),
                )
            }
            Err(e) => {
                return codec::encode_response(
                    &RdsResponse::Error { code: ErrorCode::Internal, message: e.to_string() },
                    0,
                    self.key.as_deref(),
                )
            }
        };
        // The verb span covers authorization, dispatch and response
        // encoding — everything the server does for a decoded request.
        let verb_span = self.timers.as_ref().map(|t| t.verbs[request.op_tag() as usize].start());
        let op = required_operation(&request);
        let response = if self.acl.allows(&principal, op, request.dp_name()) {
            self.handler.handle(&principal, request)
        } else {
            RdsResponse::Error {
                code: ErrorCode::AccessDenied,
                message: format!("{principal} may not {op}"),
            }
        };
        let encoded = codec::encode_response(&response, request_id, self.key.as_deref());
        drop(verb_span);
        encoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpiId, RdsError};

    fn echo_handler() -> impl RdsHandler {
        |_p: &Principal, req: RdsRequest| match req {
            RdsRequest::ListPrograms => RdsResponse::Programs { names: vec!["seen".to_string()] },
            RdsRequest::Instantiate { .. } => RdsResponse::Instantiated { dpi: DpiId(1) },
            _ => RdsResponse::Ok,
        }
    }

    #[test]
    fn open_server_dispatches() {
        let server = RdsServer::open(echo_handler());
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 3, None);
        let resp_bytes = server.process(&req);
        let (resp, id) = codec::decode_response(&resp_bytes, None).unwrap();
        assert_eq!(id, 3);
        assert_eq!(resp, RdsResponse::Programs { names: vec!["seen".to_string()] });
    }

    #[test]
    fn acl_denies_unauthorized_operations() {
        let mut acl = Acl::deny_by_default();
        acl.grant(&Principal::new("viewer"), Operation::List);
        let server = RdsServer::with_policy(echo_handler(), acl, None);

        let ok =
            codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("viewer"), 1, None);
        let (resp, _) = codec::decode_response(&server.process(&ok), None).unwrap();
        assert!(matches!(resp, RdsResponse::Programs { .. }));

        let denied = codec::encode_request(
            &RdsRequest::Instantiate { dp_name: "x".to_string() },
            &Principal::new("viewer"),
            2,
            None,
        );
        let (resp, _) = codec::decode_response(&server.process(&denied), None).unwrap();
        assert!(
            matches!(resp, RdsResponse::Error { code: ErrorCode::AccessDenied, .. }),
            "got {resp:?}"
        );
    }

    #[test]
    fn scoped_acl_controls_per_dp_delegation() {
        let mut acl = Acl::deny_by_default();
        acl.grant_scoped(&Principal::new("dev"), Operation::Delegate, "allowed-dp");
        let server = RdsServer::with_policy(echo_handler(), acl, None);
        let mk = |name: &str, id| {
            codec::encode_request(
                &RdsRequest::DelegateProgram {
                    dp_name: name.to_string(),
                    language: "dpl".to_string(),
                    source: vec![],
                },
                &Principal::new("dev"),
                id,
                None,
            )
        };
        let (resp, _) =
            codec::decode_response(&server.process(&mk("allowed-dp", 1)), None).unwrap();
        assert_eq!(resp, RdsResponse::Ok);
        let (resp, _) = codec::decode_response(&server.process(&mk("other-dp", 2)), None).unwrap();
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::AccessDenied, .. }));
    }

    #[test]
    fn keyed_server_rejects_unauthenticated_clients() {
        let server =
            RdsServer::with_policy(echo_handler(), Acl::allow_by_default(), Some(b"k".to_vec()));
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        let resp_bytes = server.process(&req);
        let (resp, id) = codec::decode_response(&resp_bytes, Some(b"k")).unwrap();
        assert_eq!(id, 0);
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::AuthFailed, .. }));
    }

    #[test]
    fn instrumented_server_records_decode_and_per_verb_latency() {
        let tel = Telemetry::new();
        let server = RdsServer::open(echo_handler()).instrument(&tel);
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        server.process(&req);
        server.process(&req);
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("rds.verb.list_programs").unwrap().count(), 2);
        assert_eq!(snap.histogram("rds.decode").unwrap().count(), 2);
        assert!(snap.histogram("rds.verb.invoke").unwrap().is_empty());
        // Undecodable bytes cost a decode attempt but reach no verb.
        server.process(b"not ber");
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("rds.decode").unwrap().count(), 3);
        let verbs: u64 = snap
            .histograms
            .iter()
            .filter(|(n, _)| n.starts_with("rds.verb."))
            .map(|(_, h)| h.count())
            .sum();
        assert_eq!(verbs, 2);
    }

    #[test]
    fn denied_requests_still_count_toward_their_verb() {
        let tel = Telemetry::new();
        let server =
            RdsServer::with_policy(echo_handler(), Acl::deny_by_default(), None).instrument(&tel);
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        let (resp, _) = codec::decode_response(&server.process(&req), None).unwrap();
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::AccessDenied, .. }));
        assert_eq!(tel.snapshot().histogram("rds.verb.list_programs").unwrap().count(), 1);
    }

    #[test]
    fn garbage_bytes_get_an_error_response() {
        let server = RdsServer::open(echo_handler());
        let resp_bytes = server.process(b"not ber");
        let (resp, _) = codec::decode_response(&resp_bytes, None).unwrap();
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::Internal, .. }));
    }

    #[test]
    fn response_decode_fails_for_client_with_wrong_key() {
        let server =
            RdsServer::with_policy(echo_handler(), Acl::allow_by_default(), Some(b"k".to_vec()));
        let req =
            codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, Some(b"k"));
        let resp_bytes = server.process(&req);
        assert_eq!(
            codec::decode_response(&resp_bytes, Some(b"wrong")).unwrap_err(),
            RdsError::BadDigest
        );
    }
}
