use crate::dedup::{frame_fingerprint, DedupCache, DedupOutcome};
use crate::{codec, ErrorCode, RdsRequest, RdsResponse, TraceContext};
use mbd_auth::{Acl, Operation, Principal};
use mbd_telemetry::{Counter, Telemetry, Timer};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

/// Cross-thread timing for one request, measured on the reactor side
/// (socket read interval, executor queue wait) and handed to the worker
/// that processes the frame. Carried as [`Instant`]s, not offsets, so
/// the receiving telemetry domain can place them on its own epoch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobTiming {
    /// When the frame's first bytes were read off the socket.
    pub(crate) recv_start: Instant,
    /// When the frame was completely assembled.
    pub(crate) recv_done: Instant,
    /// When the frame entered the executor queue.
    pub(crate) enqueued: Instant,
    /// When a worker picked it up.
    pub(crate) dequeued: Instant,
}

thread_local! {
    /// Set by the executor's worker loop just before `process`, taken by
    /// `process` to stitch reactor-side intervals into the request tree.
    static JOB_TIMING: Cell<Option<JobTiming>> = const { Cell::new(None) };
}

/// Stages reactor-side timing for the next `process` call on this thread.
pub(crate) fn set_job_timing(timing: JobTiming) {
    JOB_TIMING.with(|t| t.set(Some(timing)));
}

fn take_job_timing() -> Option<JobTiming> {
    JOB_TIMING.with(Cell::take)
}

/// Pre-resolved timers for the protocol front-end: BER decode time plus
/// one latency histogram per RDS verb (`rds.decode`, `rds.verb.<name>`
/// — resolved once here so the per-request cost is a clock read and a
/// lock-free record), plus per-error-kind decode-failure counters
/// (`rds.decode_fail.<kind>`).
///
/// When tracing is enabled on the telemetry domain, these timers also
/// emit the request's span tree: `rds.request` is the server-side root,
/// with `rds.conn.read`, `rds.conn.queue_wait` (from the reactor's
/// [`JobTiming`]), `rds.decode`, `rds.verb.<name>` and `rds.encode` as
/// children, and whatever the handler records (e.g. `ep.invoke` →
/// `ep.vm_run`) nested below the verb.
#[derive(Debug, Clone)]
struct RdsTimers {
    /// The owning domain, for trace capture and tail-sampling retention.
    telemetry: Telemetry,
    /// `rds.request` — the server-side root span of every request.
    request: Timer,
    decode: Timer,
    encode: Timer,
    /// Socket-read interval of the frame (reactor path only).
    conn_read: Timer,
    /// Executor queue wait, from the job's explicit enqueue timestamp.
    conn_queue: Timer,
    /// Indexed by [`RdsRequest::op_tag`].
    verbs: [Timer; 15],
    decode_fail_bad_digest: Counter,
    decode_fail_codec: Counter,
    decode_fail_unknown_op: Counter,
    /// `rds.dedup_hits` — retried frames answered from the
    /// duplicate-suppression cache instead of re-executing.
    dedup_hits: Counter,
}

impl RdsTimers {
    fn new(telemetry: &Telemetry) -> RdsTimers {
        let verb = |name: &str| telemetry.timer(&format!("rds.verb.{name}"));
        RdsTimers {
            telemetry: telemetry.clone(),
            request: telemetry.timer("rds.request"),
            decode: telemetry.timer("rds.decode"),
            encode: telemetry.timer("rds.encode"),
            conn_read: telemetry.timer("rds.conn.read"),
            conn_queue: telemetry.timer("rds.conn.queue_wait"),
            verbs: [
                verb("delegate"),
                verb("delete"),
                verb("instantiate"),
                verb("invoke"),
                verb("suspend"),
                verb("resume"),
                verb("terminate"),
                verb("send_message"),
                verb("list_programs"),
                verb("list_instances"),
                verb("read_journal"),
                verb("read_profile"),
                verb("read_metrics"),
                verb("checkpoint"),
                verb("restore"),
            ],
            decode_fail_bad_digest: telemetry.counter("rds.decode_fail.bad_digest"),
            decode_fail_codec: telemetry.counter("rds.decode_fail.codec"),
            decode_fail_unknown_op: telemetry.counter("rds.decode_fail.unknown_op"),
            dedup_hits: telemetry.counter("rds.dedup_hits"),
        }
    }

    fn decode_fail(&self, kind: &str) -> &Counter {
        match kind {
            "bad_digest" => &self.decode_fail_bad_digest,
            "unknown_op" => &self.decode_fail_unknown_op,
            _ => &self.decode_fail_codec,
        }
    }
}

/// One processed request (or decode failure), as reported to the audit
/// sink installed with [`RdsServer::with_audit`] — the raw material of
/// the audit journal and of per-dpi byte accounting.
#[derive(Debug, Clone)]
pub struct AuditEvent {
    /// Trace id of the request (0 for untraced or undecodable frames).
    pub trace_id: u64,
    /// Claimed principal handle (empty if the frame never decoded).
    pub principal: String,
    /// Verb name, or `decode_fail.<kind>` for undecodable frames.
    pub verb: String,
    /// Target dpi id (0 = the request names no dpi).
    pub dpi: u64,
    /// Whether the response was non-`Error`.
    pub ok: bool,
    /// Error text when `ok` is false, empty otherwise.
    pub detail: String,
    /// Encoded request frame length.
    pub bytes_in: u64,
    /// Encoded response frame length.
    pub bytes_out: u64,
}

/// The application half of an RDS server: given an authenticated,
/// authorized request, produce a response. The elastic process runtime
/// implements this.
pub trait RdsHandler {
    /// Handles one request from `principal`.
    fn handle(&self, principal: &Principal, request: RdsRequest) -> RdsResponse;

    /// Handles one request with its wire trace context. The front-end
    /// has already set the thread's current trace id
    /// ([`mbd_telemetry::current_trace_id`]) for the duration of the
    /// call; the default implementation ignores the explicit context and
    /// delegates to [`RdsHandler::handle`].
    fn handle_traced(
        &self,
        principal: &Principal,
        request: RdsRequest,
        trace: TraceContext,
    ) -> RdsResponse {
        let _ = trace;
        self.handle(principal, request)
    }
}

impl<F> RdsHandler for F
where
    F: Fn(&Principal, RdsRequest) -> RdsResponse,
{
    fn handle(&self, principal: &Principal, request: RdsRequest) -> RdsResponse {
        self(principal, request)
    }
}

/// Protocol front-end of an elastic process: decodes, authenticates
/// (optional keyed digest), authorizes (handle ACL), dispatches to an
/// [`RdsHandler`], and encodes the response.
pub struct RdsServer<H> {
    handler: H,
    acl: Acl,
    key: Option<Vec<u8>>,
    timers: Option<RdsTimers>,
    audit: Option<Arc<dyn Fn(AuditEvent) + Send + Sync>>,
    dedup: Option<DedupCache>,
}

/// An armed single-flight claim on `(principal, request id)`: dropped
/// without being disarmed (the handler unwound), it releases the claim
/// so blocked duplicates and later retries can execute the request for
/// real.
struct DedupClaim<'a> {
    cache: &'a DedupCache,
    principal: String,
    request_id: i64,
    fingerprint: u64,
    armed: bool,
}

impl Drop for DedupClaim<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.abandon(&self.principal, self.request_id, self.fingerprint);
        }
    }
}

impl<H: std::fmt::Debug> std::fmt::Debug for RdsServer<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdsServer")
            .field("handler", &self.handler)
            .field("authenticated", &self.key.is_some())
            .finish()
    }
}

fn required_operation(req: &RdsRequest) -> Operation {
    match req {
        RdsRequest::DelegateProgram { .. } | RdsRequest::DeleteProgram { .. } => {
            Operation::Delegate
        }
        RdsRequest::Instantiate { .. } => Operation::Instantiate,
        RdsRequest::Invoke { .. } | RdsRequest::SendMessage { .. } => Operation::Invoke,
        RdsRequest::Suspend { .. }
        | RdsRequest::Resume { .. }
        | RdsRequest::Terminate { .. }
        | RdsRequest::Checkpoint { .. } => Operation::Control,
        // Installing a checkpoint creates a program and an instance —
        // the delegation privilege.
        RdsRequest::Restore { .. } => Operation::Delegate,
        RdsRequest::ListPrograms
        | RdsRequest::ListInstances
        | RdsRequest::ReadJournal { .. }
        | RdsRequest::ReadProfile { .. }
        | RdsRequest::ReadMetrics { .. } => Operation::List,
    }
}

impl<H: RdsHandler> RdsServer<H> {
    /// A server with the prototype's trivial access control (any handle
    /// may do anything) and no digest authentication.
    pub fn open(handler: H) -> RdsServer<H> {
        RdsServer {
            handler,
            acl: Acl::allow_by_default(),
            key: None,
            timers: None,
            audit: None,
            dedup: None,
        }
    }

    /// A server enforcing `acl`, optionally requiring keyed digests.
    pub fn with_policy(handler: H, acl: Acl, key: Option<Vec<u8>>) -> RdsServer<H> {
        RdsServer { handler, acl, key, timers: None, audit: None, dedup: None }
    }

    /// Enables exactly-once duplicate suppression: each processed
    /// request's encoded response is remembered under
    /// `(principal, request id)` (at most `capacity` per principal,
    /// drop-oldest), and a retried frame — identical bytes — is answered
    /// by replaying the remembered response instead of re-executing the
    /// effect. Replays are journaled as `duplicate_replayed` and counted
    /// as `rds.dedup_hits`. `capacity` 0 disables suppression.
    #[must_use]
    pub fn with_dedup(mut self, capacity: usize) -> RdsServer<H> {
        self.dedup = (capacity > 0).then(|| DedupCache::new(capacity));
        self
    }

    /// Retried frames answered from the dedup cache (0 when duplicate
    /// suppression is disabled).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup.as_ref().map_or(0, DedupCache::hits)
    }

    /// Installs an audit sink called once per processed request (and
    /// once per undecodable frame) with the request's trace id,
    /// principal, verb, target dpi, outcome and frame sizes.
    #[must_use]
    pub fn with_audit(mut self, sink: Arc<dyn Fn(AuditEvent) + Send + Sync>) -> RdsServer<H> {
        self.audit = Some(sink);
        self
    }

    /// Records decode time and per-verb request latency into
    /// `telemetry` (`rds.decode`, `rds.verb.<name>`) for every request
    /// this server processes.
    #[must_use]
    pub fn instrument(mut self, telemetry: &Telemetry) -> RdsServer<H> {
        self.timers = Some(RdsTimers::new(telemetry));
        self
    }

    /// The handler (for embedding servers that need to reach through).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Processes one encoded request into an encoded response.
    ///
    /// Undecodable requests get an encoded `Error` response with request
    /// id 0 (there is nothing better to correlate with); the error kind
    /// is distinguished by the `rds.decode_fail.<kind>` counters and the
    /// audit event.
    pub fn process(&self, bytes: &[u8]) -> Vec<u8> {
        // Reactor-side timing, staged by the worker loop before this
        // call (None on direct/in-process transports). Taken up front so
        // a stale value can never leak into a later request.
        let timing = take_job_timing();
        // Decode is measured with raw instants, not a guard: the trace
        // id is unknown until the frame decodes, so its span is emitted
        // retroactively under the request root below.
        let decode_start = Instant::now();
        let decoded = codec::decode_request_traced(bytes, self.key.as_deref());
        let decode_end = Instant::now();
        let (request, principal, request_id, trace) = match decoded {
            Ok(parts) => parts,
            Err(e) => {
                if let Some(t) = &self.timers {
                    t.decode.record_interval(decode_start, decode_end);
                }
                return self.decode_failure(bytes, &e);
            }
        };
        // Everything the request causes on this thread — spans,
        // notifications, log lines, journal records — is stamped with
        // its trace id until the guard drops; the wire parent seeds the
        // span stack so relayed requests nest under their caller.
        let _trace_scope =
            mbd_telemetry::enter_trace_with_parent(trace.trace_id, trace.parent_span_id);
        if let Some(t) = &self.timers {
            t.telemetry.begin_trace_capture();
        }
        // The server-side root span: socket read, queue wait and decode
        // already happened, so they are stitched in as children with
        // their exact measured intervals.
        let root_span = self.timers.as_ref().map(|t| t.request.start());
        if let Some(t) = &self.timers {
            if let Some(j) = timing {
                t.conn_read.record_interval(j.recv_start, j.recv_done);
                t.conn_queue.record_interval(j.enqueued, j.dequeued);
            }
            t.decode.record_interval(decode_start, decode_end);
        }
        let verb = request.verb();
        let dpi = request.dpi().map_or(0, |d| d.0);
        // Duplicate suppression: a retried frame (identical bytes under
        // the same principal and request id) is answered with the
        // response already sent — the effect ran at most once. Admission
        // is single-flight: a byte-identical copy arriving while the
        // first is still executing (pipelined duplicate delivery) waits
        // inside `begin` and replays that execution's response. Request
        // id 0 is reserved for undecodable frames and never cached.
        let fingerprint = self.dedup.as_ref().map(|_| frame_fingerprint(bytes));
        let mut claim = None;
        if let (Some(cache), Some(fp)) = (&self.dedup, fingerprint) {
            if request_id != 0 {
                match cache.begin(principal.handle(), request_id, fp) {
                    DedupOutcome::Replay(replay) => {
                        if let Some(t) = &self.timers {
                            t.dedup_hits.inc();
                        }
                        if let Some(sink) = &self.audit {
                            sink(AuditEvent {
                                trace_id: trace.trace_id,
                                principal: principal.handle().to_string(),
                                verb: "duplicate_replayed".to_string(),
                                dpi,
                                ok: true,
                                detail: verb.to_string(),
                                bytes_in: bytes.len() as u64,
                                bytes_out: replay.len() as u64,
                            });
                        }
                        if let Some(t) = &self.timers {
                            let duration_ns = root_span.map_or(0, mbd_telemetry::Span::finish);
                            t.telemetry.finish_trace(trace.trace_id, duration_ns, false);
                        }
                        return replay;
                    }
                    DedupOutcome::Execute => {
                        // Held until `complete` disarms it: a panicking
                        // handler must release the claim so retries can
                        // execute for real instead of waiting on a slot
                        // that will never resolve.
                        claim = Some(DedupClaim {
                            cache,
                            principal: principal.handle().to_string(),
                            request_id,
                            fingerprint: fp,
                            armed: true,
                        });
                    }
                }
            }
        }
        // The verb span covers authorization and dispatch; response
        // encoding gets its own span so the tree separates handler time
        // from serialization time.
        let verb_span = self.timers.as_ref().map(|t| t.verbs[request.op_tag() as usize].start());
        let op = required_operation(&request);
        let response = if self.acl.allows(&principal, op, request.dp_name()) {
            self.handler.handle_traced(&principal, request, trace)
        } else {
            RdsResponse::Error {
                code: ErrorCode::AccessDenied,
                message: format!("{principal} may not {op}"),
            }
        };
        drop(verb_span);
        let encode_span = self.timers.as_ref().map(|t| t.encode.start());
        let encoded =
            codec::encode_response_traced(&response, request_id, self.key.as_deref(), trace);
        drop(encode_span);
        if let Some(mut claim) = claim {
            claim.cache.complete(&claim.principal, request_id, claim.fingerprint, &encoded);
            claim.armed = false;
        }
        let errored = matches!(response, RdsResponse::Error { .. });
        if let Some(sink) = &self.audit {
            let (ok, detail) = match &response {
                RdsResponse::Error { code, message } => (false, format!("{code}: {message}")),
                _ => (true, String::new()),
            };
            sink(AuditEvent {
                trace_id: trace.trace_id,
                principal: principal.handle().to_string(),
                verb: verb.to_string(),
                dpi,
                ok,
                detail,
                bytes_in: bytes.len() as u64,
                bytes_out: encoded.len() as u64,
            });
        }
        // Close the root and offer the completed tree to the
        // tail-sampling store (kept if slow, errored, or by reservoir).
        if let Some(t) = &self.timers {
            let duration_ns = root_span.map_or(0, mbd_telemetry::Span::finish);
            t.telemetry.finish_trace(trace.trace_id, duration_ns, errored);
        }
        encoded
    }

    fn decode_failure(&self, bytes: &[u8], err: &crate::RdsError) -> Vec<u8> {
        let (kind, code, message) = match err {
            crate::RdsError::BadDigest => {
                ("bad_digest", ErrorCode::AuthFailed, "digest verification failed".to_string())
            }
            crate::RdsError::UnknownOperation(_) => {
                ("unknown_op", ErrorCode::Internal, err.to_string())
            }
            _ => ("codec", ErrorCode::Internal, err.to_string()),
        };
        if let Some(t) = &self.timers {
            t.decode_fail(kind).inc();
        }
        let encoded =
            codec::encode_response(&RdsResponse::Error { code, message }, 0, self.key.as_deref());
        if let Some(sink) = &self.audit {
            sink(AuditEvent {
                trace_id: 0,
                principal: String::new(),
                verb: format!("decode_fail.{kind}"),
                dpi: 0,
                ok: false,
                detail: err.to_string(),
                bytes_in: bytes.len() as u64,
                bytes_out: encoded.len() as u64,
            });
        }
        encoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpiId, RdsError};

    fn echo_handler() -> impl RdsHandler {
        |_p: &Principal, req: RdsRequest| match req {
            RdsRequest::ListPrograms => RdsResponse::Programs { names: vec!["seen".to_string()] },
            RdsRequest::Instantiate { .. } => RdsResponse::Instantiated { dpi: DpiId(1) },
            _ => RdsResponse::Ok,
        }
    }

    #[test]
    fn open_server_dispatches() {
        let server = RdsServer::open(echo_handler());
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 3, None);
        let resp_bytes = server.process(&req);
        let (resp, id) = codec::decode_response(&resp_bytes, None).unwrap();
        assert_eq!(id, 3);
        assert_eq!(resp, RdsResponse::Programs { names: vec!["seen".to_string()] });
    }

    #[test]
    fn acl_denies_unauthorized_operations() {
        let mut acl = Acl::deny_by_default();
        acl.grant(&Principal::new("viewer"), Operation::List);
        let server = RdsServer::with_policy(echo_handler(), acl, None);

        let ok =
            codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("viewer"), 1, None);
        let (resp, _) = codec::decode_response(&server.process(&ok), None).unwrap();
        assert!(matches!(resp, RdsResponse::Programs { .. }));

        let denied = codec::encode_request(
            &RdsRequest::Instantiate { dp_name: "x".to_string() },
            &Principal::new("viewer"),
            2,
            None,
        );
        let (resp, _) = codec::decode_response(&server.process(&denied), None).unwrap();
        assert!(
            matches!(resp, RdsResponse::Error { code: ErrorCode::AccessDenied, .. }),
            "got {resp:?}"
        );
    }

    #[test]
    fn scoped_acl_controls_per_dp_delegation() {
        let mut acl = Acl::deny_by_default();
        acl.grant_scoped(&Principal::new("dev"), Operation::Delegate, "allowed-dp");
        let server = RdsServer::with_policy(echo_handler(), acl, None);
        let mk = |name: &str, id| {
            codec::encode_request(
                &RdsRequest::DelegateProgram {
                    dp_name: name.to_string(),
                    language: "dpl".to_string(),
                    source: vec![],
                },
                &Principal::new("dev"),
                id,
                None,
            )
        };
        let (resp, _) =
            codec::decode_response(&server.process(&mk("allowed-dp", 1)), None).unwrap();
        assert_eq!(resp, RdsResponse::Ok);
        let (resp, _) = codec::decode_response(&server.process(&mk("other-dp", 2)), None).unwrap();
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::AccessDenied, .. }));
    }

    #[test]
    fn keyed_server_rejects_unauthenticated_clients() {
        let server =
            RdsServer::with_policy(echo_handler(), Acl::allow_by_default(), Some(b"k".to_vec()));
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        let resp_bytes = server.process(&req);
        let (resp, id) = codec::decode_response(&resp_bytes, Some(b"k")).unwrap();
        assert_eq!(id, 0);
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::AuthFailed, .. }));
    }

    #[test]
    fn instrumented_server_records_decode_and_per_verb_latency() {
        let tel = Telemetry::new();
        let server = RdsServer::open(echo_handler()).instrument(&tel);
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        server.process(&req);
        server.process(&req);
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("rds.verb.list_programs").unwrap().count(), 2);
        assert_eq!(snap.histogram("rds.decode").unwrap().count(), 2);
        assert!(snap.histogram("rds.verb.invoke").unwrap().is_empty());
        // Undecodable bytes cost a decode attempt but reach no verb.
        server.process(b"not ber");
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("rds.decode").unwrap().count(), 3);
        let verbs: u64 = snap
            .histograms
            .iter()
            .filter(|(n, _)| n.starts_with("rds.verb."))
            .map(|(_, h)| h.count())
            .sum();
        assert_eq!(verbs, 2);
    }

    #[test]
    fn denied_requests_still_count_toward_their_verb() {
        let tel = Telemetry::new();
        let server =
            RdsServer::with_policy(echo_handler(), Acl::deny_by_default(), None).instrument(&tel);
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        let (resp, _) = codec::decode_response(&server.process(&req), None).unwrap();
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::AccessDenied, .. }));
        assert_eq!(tel.snapshot().histogram("rds.verb.list_programs").unwrap().count(), 1);
    }

    #[test]
    fn garbage_bytes_get_an_error_response() {
        let server = RdsServer::open(echo_handler());
        let resp_bytes = server.process(b"not ber");
        let (resp, _) = codec::decode_response(&resp_bytes, None).unwrap();
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::Internal, .. }));
    }

    #[test]
    fn decode_failures_count_per_error_kind() {
        let tel = Telemetry::new();
        let server =
            RdsServer::with_policy(echo_handler(), Acl::allow_by_default(), Some(b"k".to_vec()))
                .instrument(&tel);
        // Codec garbage.
        server.process(b"not ber");
        // Missing digest against a keyed server.
        let unsigned =
            codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        server.process(&unsigned);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("rds.decode_fail.codec"), Some(1));
        assert_eq!(snap.counter("rds.decode_fail.bad_digest"), Some(1));
        assert_eq!(snap.counter("rds.decode_fail.unknown_op"), Some(0));
    }

    #[test]
    fn audit_sink_sees_requests_and_decode_failures() {
        use std::sync::Mutex;
        let events: Arc<Mutex<Vec<AuditEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let server = RdsServer::open(echo_handler())
            .with_audit(Arc::new(move |ev| sink.lock().unwrap().push(ev)));

        let trace = TraceContext { trace_id: 0xC0FFEE, parent_span_id: 0 };
        let req = codec::encode_request_traced(
            &RdsRequest::Suspend { dpi: DpiId(7) },
            &Principal::new("mgr"),
            1,
            None,
            trace,
        );
        let resp = server.process(&req);
        server.process(b"junk");

        let events = events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].verb, "suspend");
        assert_eq!(events[0].trace_id, 0xC0FFEE);
        assert_eq!(events[0].principal, "mgr");
        assert_eq!(events[0].dpi, 7);
        assert!(events[0].ok);
        assert_eq!(events[0].bytes_in, req.len() as u64);
        assert_eq!(events[0].bytes_out, resp.len() as u64);
        assert_eq!(events[1].verb, "decode_fail.codec");
        assert!(!events[1].ok);
        assert_eq!(events[1].trace_id, 0);
    }

    #[test]
    fn trace_context_is_echoed_and_set_for_the_handler() {
        let server = RdsServer::open(|_p: &Principal, _req: RdsRequest| RdsResponse::Result {
            value: ber::BerValue::Integer(mbd_telemetry::current_trace_id() as i64),
        });
        let trace = TraceContext { trace_id: 0xAB, parent_span_id: 3 };
        let req = codec::encode_request_traced(
            &RdsRequest::ListPrograms,
            &Principal::new("m"),
            9,
            None,
            trace,
        );
        let (resp, id, echoed) =
            codec::decode_response_traced(&server.process(&req), None).unwrap();
        assert_eq!(id, 9);
        assert_eq!(echoed, trace, "server echoes the request's trace context");
        assert_eq!(
            resp,
            RdsResponse::Result { value: ber::BerValue::Integer(0xAB) },
            "handler ran with the thread-local trace id set"
        );
        assert_eq!(mbd_telemetry::current_trace_id(), 0, "guard dropped after process()");
    }

    #[test]
    fn read_journal_requires_list_rights() {
        let mut acl = Acl::deny_by_default();
        acl.grant(&Principal::new("viewer"), Operation::List);
        let server = RdsServer::with_policy(
            |_p: &Principal, req: RdsRequest| match req {
                RdsRequest::ReadJournal { .. } => RdsResponse::Journal { records: vec![] },
                _ => RdsResponse::Ok,
            },
            acl,
            None,
        );
        let mk = |who: &str| {
            codec::encode_request(
                &RdsRequest::ReadJournal { max_records: 5 },
                &Principal::new(who),
                1,
                None,
            )
        };
        let (resp, _) = codec::decode_response(&server.process(&mk("viewer")), None).unwrap();
        assert_eq!(resp, RdsResponse::Journal { records: vec![] });
        let (resp, _) = codec::decode_response(&server.process(&mk("stranger")), None).unwrap();
        assert!(matches!(resp, RdsResponse::Error { code: ErrorCode::AccessDenied, .. }));
    }

    #[test]
    fn duplicate_frame_replays_without_reexecuting() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let executions = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&executions);
        let server = RdsServer::open(move |_p: &Principal, _req: RdsRequest| {
            RdsResponse::Instantiated { dpi: DpiId(seen.fetch_add(1, Ordering::Relaxed) + 1) }
        })
        .with_dedup(16);
        let req = codec::encode_request(
            &RdsRequest::Instantiate { dp_name: "x".to_string() },
            &Principal::new("mgr"),
            1,
            None,
        );
        let first = server.process(&req);
        let replay = server.process(&req);
        assert_eq!(first, replay, "byte-identical replay, not a second execution");
        assert_eq!(executions.load(Ordering::Relaxed), 1);
        assert_eq!(server.dedup_hits(), 1);
    }

    #[test]
    fn distinct_requests_under_a_reused_id_are_not_replayed() {
        let server = RdsServer::open(echo_handler()).with_dedup(16);
        let mk = |name: &str| {
            codec::encode_request(
                &RdsRequest::Instantiate { dp_name: name.to_string() },
                &Principal::new("mgr"),
                1,
                None,
            )
        };
        // A restarted manager reuses id 1 for a different request: the
        // frame fingerprint differs, so it executes normally.
        server.process(&mk("first"));
        server.process(&mk("second"));
        assert_eq!(server.dedup_hits(), 0);
    }

    #[test]
    fn dedup_is_per_principal() {
        let server = RdsServer::open(echo_handler()).with_dedup(16);
        let mk = |who: &str| {
            codec::encode_request(&RdsRequest::ListPrograms, &Principal::new(who), 1, None)
        };
        server.process(&mk("alice"));
        server.process(&mk("bob"));
        assert_eq!(server.dedup_hits(), 0, "same id, different principals: no replay");
        server.process(&mk("alice"));
        assert_eq!(server.dedup_hits(), 1);
    }

    #[test]
    fn replays_count_and_journal_as_duplicate_replayed() {
        use std::sync::Mutex;
        let tel = Telemetry::new();
        let events: Arc<Mutex<Vec<AuditEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let server = RdsServer::open(echo_handler())
            .instrument(&tel)
            .with_dedup(16)
            .with_audit(Arc::new(move |ev| sink.lock().unwrap().push(ev)));
        let trace = TraceContext { trace_id: 0xD0D0, parent_span_id: 0 };
        let req = codec::encode_request_traced(
            &RdsRequest::Suspend { dpi: DpiId(3) },
            &Principal::new("mgr"),
            7,
            None,
            trace,
        );
        server.process(&req);
        server.process(&req);
        assert_eq!(tel.snapshot().counter("rds.dedup_hits"), Some(1));
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].verb, "duplicate_replayed");
        assert_eq!(events[1].detail, "suspend", "the replayed verb is recorded");
        assert_eq!(events[1].trace_id, 0xD0D0);
        assert_eq!(events[1].dpi, 3);
        assert!(events[1].ok);
    }

    #[test]
    fn error_responses_are_replayed_too() {
        // A faulted Invoke must not re-execute on retry: the *error* is
        // the remembered answer.
        use std::sync::atomic::{AtomicU64, Ordering};
        let executions = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&executions);
        let server = RdsServer::open(move |_p: &Principal, _req: RdsRequest| {
            seen.fetch_add(1, Ordering::Relaxed);
            RdsResponse::Error { code: ErrorCode::RuntimeFault, message: "boom".to_string() }
        })
        .with_dedup(16);
        let req = codec::encode_request(
            &RdsRequest::Invoke { dpi: DpiId(1), entry: "f".to_string(), args: vec![] },
            &Principal::new("mgr"),
            2,
            None,
        );
        let a = server.process(&req);
        let b = server.process(&req);
        assert_eq!(a, b);
        assert_eq!(executions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_capacity_disables_dedup() {
        let server = RdsServer::open(echo_handler()).with_dedup(0);
        let req = codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        server.process(&req);
        server.process(&req);
        assert_eq!(server.dedup_hits(), 0);
    }

    #[test]
    fn response_decode_fails_for_client_with_wrong_key() {
        let server =
            RdsServer::with_policy(echo_handler(), Acl::allow_by_default(), Some(b"k".to_vec()));
        let req =
            codec::encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, Some(b"k"));
        let resp_bytes = server.process(&req);
        assert_eq!(
            codec::decode_response(&resp_bytes, Some(b"wrong")).unwrap_err(),
            RdsError::BadDigest
        );
    }
}
