//! Pipelined RDS client: N requests in flight on one connection.
//!
//! [`crate::RdsClient`] is strictly serial — each verb blocks until its
//! response returns, so one connection's throughput is bounded by the
//! round-trip time. The reactor server completes requests out of order
//! (replies are matched by request id, not position), which this module
//! exploits from the client side:
//!
//! * [`FrameDuplex`] — a frame channel whose send and receive halves
//!   are decoupled (unlike [`crate::Transport`], which is lockstep);
//! * [`TcpDuplex`] — the TCP implementation, reusing the reactor's
//!   [`FrameAssembler`](crate::reactor::FrameAssembler) for incremental
//!   reassembly and able to re-dial its peer;
//! * [`RdsPipeline`] — a windowed client: up to `window` encoded
//!   requests outstanding, replies accepted in any order, with the same
//!   fault-tolerance contract as the serial client — every re-send is
//!   the **identical encoded frame** (same request id, same trace id),
//!   so the server's dedup cache replays instead of re-executing, and
//!   `Busy` sheds back off under the configured [`RetryPolicy`].
//!
//! Late or duplicated replies (a retried request can be answered twice)
//! are recognized by id and dropped silently; an undecodable reply means
//! the stream's framing can no longer be trusted, so the pipeline
//! reconnects and re-sends everything still pending. See `docs/RDS.md`
//! for the full framing/pipelining state machine.

use crate::reactor::FrameAssembler;
use crate::retry::splitmix64;
use crate::tcp::write_frame;
use crate::{codec, RdsError, RdsRequest, RdsResponse, RetryPolicy, TraceContext};
use mbd_auth::Principal;
use mbd_telemetry::{Counter, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

fn io_err(e: std::io::Error) -> RdsError {
    RdsError::Transport { message: e.to_string() }
}

/// A bidirectional frame channel with decoupled halves: frames are sent
/// without awaiting a reply, and received in whatever order the peer
/// produces them.
pub trait FrameDuplex {
    /// Queues/writes one frame toward the peer.
    ///
    /// # Errors
    ///
    /// Connection failures as [`RdsError::Transport`].
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), RdsError>;

    /// Waits up to `timeout` for one frame; `Ok(None)` when none
    /// arrived in time (the connection is still fine). A zero timeout
    /// is a pure poll: return whatever is already available without
    /// waiting at all.
    ///
    /// # Errors
    ///
    /// A broken or closed connection — after which [`reconnect`]
    /// (if supported) must be called before further use.
    ///
    /// [`reconnect`]: FrameDuplex::reconnect
    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, RdsError>;

    /// Re-establishes the channel after an error. Implementations that
    /// cannot (e.g. an accepted socket) keep the default.
    ///
    /// # Errors
    ///
    /// [`RdsError::Transport`] when unsupported or the peer is gone.
    fn reconnect(&mut self) -> Result<(), RdsError> {
        Err(RdsError::Transport { message: "this duplex cannot reconnect".to_string() })
    }
}

/// [`FrameDuplex`] over TCP: blocking writes, timeout-bounded reads
/// through a [`FrameAssembler`] (a read deadline may split a frame; the
/// assembler keeps the partial bytes), and re-dialing of the original
/// peer on demand.
#[derive(Debug)]
pub struct TcpDuplex {
    stream: Option<TcpStream>,
    peer: SocketAddr,
    assembler: FrameAssembler,
    /// Complete frames read but not yet handed out.
    ready: VecDeque<Vec<u8>>,
    reconnects: u64,
}

impl TcpDuplex {
    /// Connects to an RDS server.
    ///
    /// # Errors
    ///
    /// Connection failures as [`RdsError::Transport`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpDuplex, RdsError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let peer = stream.peer_addr().map_err(io_err)?;
        Ok(TcpDuplex {
            stream: Some(stream),
            peer,
            assembler: FrameAssembler::new(),
            ready: VecDeque::new(),
            reconnects: 0,
        })
    }

    /// The server's address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Successful re-dials after the initial connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }
}

impl FrameDuplex for TcpDuplex {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), RdsError> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| RdsError::Transport { message: "not connected".to_string() })?;
        write_frame(stream, bytes).inspect_err(|_| self.stream = None)
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, RdsError> {
        if let Some(frame) = self.ready.pop_front() {
            return Ok(Some(frame));
        }
        // A zero timeout is a pure poll: read in nonblocking mode so a
        // quiet socket costs nothing (a 1 ms "short" read timeout per
        // poll would dominate a pipelined submit loop).
        let nonblocking = timeout.is_zero();
        let deadline = Instant::now() + timeout;
        loop {
            let Some(stream) = self.stream.as_mut() else {
                return Err(RdsError::Transport { message: "not connected".to_string() });
            };
            if nonblocking {
                stream.set_nonblocking(true).map_err(io_err)?;
            } else {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Ok(None);
                }
                // set_read_timeout rejects zero; 1 ms is the floor.
                stream
                    .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                    .map_err(io_err)?;
            }
            let mut chunk = [0u8; 64 * 1024];
            let read = stream.read(&mut chunk);
            if nonblocking {
                // Leave the socket blocking for send_frame and for any
                // later timed receive.
                stream.set_nonblocking(false).map_err(io_err)?;
            }
            match read {
                Ok(0) => {
                    self.stream = None;
                    return Err(RdsError::Transport {
                        message: "server closed the connection".to_string(),
                    });
                }
                Ok(n) => match self.assembler.push(&chunk[..n]) {
                    Ok(frames) => {
                        self.ready.extend(frames);
                        if let Some(frame) = self.ready.pop_front() {
                            return Ok(Some(frame));
                        }
                        // Partial frame — keep reading until the deadline.
                    }
                    Err(e) => {
                        self.stream = None;
                        return Err(e);
                    }
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.stream = None;
                    return Err(io_err(e));
                }
            }
        }
    }

    fn reconnect(&mut self) -> Result<(), RdsError> {
        self.stream = None;
        // Any partial frame belonged to the dead connection; complete
        // frames already assembled are still valid responses.
        self.assembler = FrameAssembler::new();
        let stream = TcpStream::connect(self.peer).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        self.stream = Some(stream);
        self.reconnects += 1;
        Ok(())
    }
}

struct Pending {
    /// The exact encoded frame — every re-send repeats these bytes.
    frame: Vec<u8>,
    started: Instant,
    /// Send attempts so far (first send included).
    attempts: u32,
}

/// A windowed, fault-tolerant pipelining client (see the module docs).
///
/// # Examples
///
/// ```no_run
/// use rds::{RdsPipeline, RdsRequest, TcpDuplex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let duplex = TcpDuplex::connect("127.0.0.1:4700")?;
/// let mut pipe = RdsPipeline::new(duplex, "noc-mgr").with_window(8);
/// for _ in 0..100 {
///     pipe.submit(&RdsRequest::ListPrograms)?;
/// }
/// for (id, result) in pipe.drain() {
///     println!("#{id}: {:?}", result?);
/// }
/// # Ok(())
/// # }
/// ```
pub struct RdsPipeline<D> {
    duplex: D,
    principal: Principal,
    key: Option<Vec<u8>>,
    next_id: i64,
    window: usize,
    retry: RetryPolicy,
    /// How long one blocking receive waits before the pipeline treats
    /// the stream as stalled and re-probes (re-sends) what is pending.
    recv_timeout: Duration,
    pending: HashMap<i64, Pending>,
    completed: Vec<(i64, Result<RdsResponse, RdsError>)>,
    trace_seed: u64,
    retries: u64,
    retry_counter: Option<Counter>,
}

impl<D: std::fmt::Debug> std::fmt::Debug for RdsPipeline<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdsPipeline")
            .field("duplex", &self.duplex)
            .field("principal", &self.principal)
            .field("window", &self.window)
            .field("in_flight", &self.pending.len())
            .finish()
    }
}

impl<D: FrameDuplex> RdsPipeline<D> {
    /// Creates an unauthenticated pipeline acting as `principal`, with
    /// a window of 8 and no retries.
    pub fn new(duplex: D, principal: &str) -> RdsPipeline<D> {
        RdsPipeline {
            duplex,
            principal: Principal::new(principal),
            key: None,
            next_id: 1,
            window: 8,
            retry: RetryPolicy::none(),
            recv_timeout: Duration::from_secs(5),
            pending: HashMap::new(),
            completed: Vec::new(),
            trace_seed: crate::client::trace_seed(),
            retries: 0,
            retry_counter: None,
        }
    }

    /// Creates a pipeline that signs requests with `key` (MD5 keyed
    /// digest).
    pub fn with_key(duplex: D, principal: &str, key: Vec<u8>) -> RdsPipeline<D> {
        let mut p = RdsPipeline::new(duplex, principal);
        p.key = Some(key);
        p
    }

    /// Bounds the in-flight window: [`submit`](RdsPipeline::submit)
    /// blocks (completing older requests) once `window` requests are
    /// outstanding. A window of 1 degenerates to the serial client.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> RdsPipeline<D> {
        self.window = window.max(1);
        self
    }

    /// Installs a retry policy, with the same semantics as
    /// [`crate::RdsClient::with_retry`]: delivery failures (stalled
    /// stream, broken connection, damaged reply, `Busy` shed) re-send
    /// the identical encoded frame until the attempt or deadline budget
    /// runs out — dedup-safe by construction.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> RdsPipeline<D> {
        self.retry = policy;
        self
    }

    /// How long a blocking receive waits before the stream counts as
    /// stalled and pending frames are re-probed (default 5 s).
    #[must_use]
    pub fn with_recv_timeout(mut self, timeout: Duration) -> RdsPipeline<D> {
        self.recv_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Counts this pipeline's re-sends into `telemetry` as
    /// `rds.retries` (also readable via [`RdsPipeline::retries`]).
    #[must_use]
    pub fn instrument(mut self, telemetry: &Telemetry) -> RdsPipeline<D> {
        self.retry_counter = Some(telemetry.counter("rds.retries"));
        self
    }

    /// Requests submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Frames re-sent since this pipeline was created.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The underlying duplex — e.g. to read a [`TcpDuplex`]'s reconnect
    /// count.
    pub fn duplex(&self) -> &D {
        &self.duplex
    }

    fn count_retry(&mut self) {
        self.retries += 1;
        if let Some(counter) = &self.retry_counter {
            counter.inc();
        }
    }

    /// Encodes and sends `req`, returning its request id immediately;
    /// the response is collected later by [`drain`](RdsPipeline::drain)
    /// (or an interleaved blocking receive when the window is full).
    ///
    /// # Errors
    ///
    /// Unrecoverable transport failures; per-request failures surface
    /// in `drain`'s results instead.
    pub fn submit(&mut self, req: &RdsRequest) -> Result<i64, RdsError> {
        while self.pending.len() >= self.window {
            self.pump(true)?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let mixed = splitmix64(self.trace_seed ^ (id as u64).rotate_left(32));
        let trace = TraceContext { trace_id: mixed.max(1), parent_span_id: 0 };
        let bytes =
            codec::encode_request_traced(req, &self.principal, id, self.key.as_deref(), trace);
        self.pending.insert(id, Pending { frame: bytes, started: Instant::now(), attempts: 1 });
        let frame = self.pending[&id].frame.clone();
        if self.duplex.send_frame(&frame).is_err() {
            self.recover()?;
        }
        Ok(id)
    }

    /// Completes every outstanding request and returns all collected
    /// `(request id, result)` pairs in submission (= id) order. Requests
    /// that exhausted their retry budget yield `Err` entries; the call
    /// itself never fails.
    pub fn drain(&mut self) -> Vec<(i64, Result<RdsResponse, RdsError>)> {
        while !self.pending.is_empty() {
            if let Err(e) = self.pump(true) {
                // recover() already expired what it could; an error here
                // means the channel is gone for good — fail the rest.
                let msg = e.to_string();
                let mut dead: Vec<i64> = self.pending.drain().map(|(id, _)| id).collect();
                dead.sort_unstable();
                for id in dead {
                    self.completed.push((
                        id,
                        Err(RdsError::Transport { message: format!("connection lost: {msg}") }),
                    ));
                }
            }
        }
        self.completed.sort_by_key(|(id, _)| *id);
        std::mem::take(&mut self.completed)
    }

    /// Collects any responses that have already arrived without
    /// blocking; pairs are in submission order.
    pub fn poll_completed(&mut self) -> Vec<(i64, Result<RdsResponse, RdsError>)> {
        // Drain everything immediately available, then hand out results.
        loop {
            let before = (self.pending.len(), self.completed.len());
            let _ = self.pump(false);
            if (self.pending.len(), self.completed.len()) == before {
                break;
            }
        }
        self.completed.sort_by_key(|(id, _)| *id);
        std::mem::take(&mut self.completed)
    }

    /// One receive step: `block` waits up to the recv timeout, else
    /// returns immediately when no frame is ready.
    fn pump(&mut self, block: bool) -> Result<(), RdsError> {
        let timeout = if block { self.recv_timeout } else { Duration::ZERO };
        match self.duplex.recv_frame(timeout) {
            Ok(Some(frame)) => self.dispatch(&frame),
            Ok(None) => {
                if block {
                    self.on_stall()
                } else {
                    Ok(())
                }
            }
            Err(_) => self.recover(),
        }
    }

    /// Routes one received frame to its pending request.
    fn dispatch(&mut self, frame: &[u8]) -> Result<(), RdsError> {
        let Ok((resp, id, _trace)) = codec::decode_response_traced(frame, self.key.as_deref())
        else {
            // Damaged or unverifiable bytes: the stream's framing can no
            // longer be trusted — resynchronize wholesale.
            return self.recover();
        };
        if !self.pending.contains_key(&id) {
            // A stale reply: a re-sent request was answered twice, or the
            // request already expired locally. Ignoring it is what makes
            // retries safe — ids are never reused within a pipeline.
            return Ok(());
        }
        match resp {
            RdsResponse::Error { code, message } => {
                let err = RdsError::Remote { code, message };
                let entry = &self.pending[&id];
                let expired = self.retry.deadline.is_some_and(|d| entry.started.elapsed() >= d);
                let exhausted = entry.attempts >= self.retry.max_attempts.max(1);
                if RetryPolicy::is_retryable(&err) && !expired && !exhausted {
                    // Busy: the server promises no effect happened. Back
                    // off, then re-send the identical frame.
                    let backoff = self.retry.backoff_for(entry.attempts);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    let frame = entry.frame.clone();
                    self.pending.get_mut(&id).expect("checked above").attempts += 1;
                    self.count_retry();
                    if self.duplex.send_frame(&frame).is_err() {
                        return self.recover();
                    }
                } else {
                    self.pending.remove(&id);
                    self.completed.push((id, Err(err)));
                }
            }
            other => {
                self.pending.remove(&id);
                self.completed.push((id, Ok(other)));
            }
        }
        Ok(())
    }

    /// Nothing arrived for a full recv window: assume in-flight frames
    /// (or their replies) were lost and re-probe, expiring requests
    /// whose budget ran out. Re-sent bytes are identical, so a server
    /// that *did* execute them replays from its dedup cache.
    fn on_stall(&mut self) -> Result<(), RdsError> {
        let mut resend = Vec::new();
        for (&id, entry) in &self.pending {
            let expired = self.retry.deadline.is_some_and(|d| entry.started.elapsed() >= d);
            if expired || entry.attempts >= self.retry.max_attempts.max(1) {
                resend.push((id, None));
            } else {
                resend.push((id, Some(entry.frame.clone())));
            }
        }
        resend.sort_unstable_by_key(|(id, _)| *id);
        for (id, frame) in resend {
            match frame {
                None => {
                    let entry = self.pending.remove(&id).expect("collected from pending");
                    self.completed.push((
                        id,
                        Err(RdsError::Transport {
                            message: format!(
                                "request {id} got no response after {} attempt(s)",
                                entry.attempts
                            ),
                        }),
                    ));
                }
                Some(frame) => {
                    self.pending.get_mut(&id).expect("still pending").attempts += 1;
                    self.count_retry();
                    if self.duplex.send_frame(&frame).is_err() {
                        return self.recover();
                    }
                }
            }
        }
        Ok(())
    }

    /// The connection failed: expire out-of-budget requests, reconnect,
    /// and re-send everything still pending (byte-identical).
    ///
    /// # Errors
    ///
    /// When reconnecting keeps failing until no pending request has
    /// budget left (the last connect error).
    fn recover(&mut self) -> Result<(), RdsError> {
        loop {
            // Expire requests whose budget is gone.
            let mut expired: Vec<i64> = self
                .pending
                .iter()
                .filter(|(_, e)| {
                    e.attempts >= self.retry.max_attempts.max(1)
                        || self.retry.deadline.is_some_and(|d| e.started.elapsed() >= d)
                })
                .map(|(&id, _)| id)
                .collect();
            expired.sort_unstable();
            for id in expired {
                let entry = self.pending.remove(&id).expect("collected from pending");
                self.completed.push((
                    id,
                    Err(RdsError::Transport {
                        message: format!(
                            "connection lost; request {id} out of budget after {} attempt(s)",
                            entry.attempts
                        ),
                    }),
                ));
            }
            if self.pending.is_empty() {
                return Ok(());
            }
            let min_attempts =
                self.pending.values().map(|e| e.attempts).min().expect("pending non-empty");
            let backoff = self.retry.backoff_for(min_attempts);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            match self.duplex.reconnect() {
                Ok(()) => {
                    let mut ids: Vec<i64> = self.pending.keys().copied().collect();
                    ids.sort_unstable();
                    let mut send_failed = false;
                    for id in ids {
                        let frame = self.pending[&id].frame.clone();
                        self.pending.get_mut(&id).expect("still pending").attempts += 1;
                        self.count_retry();
                        if self.duplex.send_frame(&frame).is_err() {
                            send_failed = true;
                            break;
                        }
                    }
                    if !send_failed {
                        return Ok(());
                    }
                    // Fresh connection died mid-resend — loop and expire
                    // by the budgets just spent.
                }
                Err(e) => {
                    // A failed reconnect consumes one attempt from every
                    // pending request, so this loop terminates.
                    for entry in self.pending.values_mut() {
                        entry.attempts += 1;
                    }
                    let all_spent =
                        self.pending.values().all(|p| p.attempts >= self.retry.max_attempts.max(1));
                    if all_spent {
                        let mut ids: Vec<i64> = self.pending.drain().map(|(id, _)| id).collect();
                        ids.sort_unstable();
                        for id in ids {
                            self.completed.push((
                                id,
                                Err(RdsError::Transport {
                                    message: format!("connection lost: {e}"),
                                }),
                            ));
                        }
                        return Err(e);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{TcpServer, TcpServerConfig};
    use crate::{ErrorCode, RdsServer};
    use std::sync::Arc;

    fn rds_tcp_server(workers: usize, backlog: usize) -> TcpServer {
        TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers, backlog, ..TcpServerConfig::default() },
            {
                let rds = Arc::new(RdsServer::open(|_p: &Principal, req: RdsRequest| match req {
                    RdsRequest::ReadJournal { max_records } => {
                        std::thread::sleep(Duration::from_millis(u64::from(max_records % 4) * 5));
                        RdsResponse::Ok
                    }
                    RdsRequest::ListPrograms => {
                        RdsResponse::Programs { names: vec!["dp".to_string()] }
                    }
                    _ => RdsResponse::Ok,
                }));
                move |bytes: &[u8]| rds.process(bytes)
            },
        )
        .unwrap()
    }

    #[test]
    fn window_of_requests_completes_out_of_order_delivery() {
        let server = rds_tcp_server(4, 64);
        let duplex = TcpDuplex::connect(server.local_addr()).unwrap();
        let mut pipe = RdsPipeline::new(duplex, "mgr").with_window(8);
        let mut submitted = Vec::new();
        for i in 0..40u32 {
            submitted.push(pipe.submit(&RdsRequest::ReadJournal { max_records: i }).unwrap());
        }
        let results = pipe.drain();
        assert_eq!(results.len(), 40);
        let ids: Vec<i64> = results.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, submitted, "drain returns submission order");
        for (id, result) in results {
            assert!(matches!(result, Ok(RdsResponse::Ok)), "#{id}: {result:?}");
        }
        server.shutdown();
    }

    #[test]
    fn window_is_bounded() {
        let server = rds_tcp_server(2, 64);
        let duplex = TcpDuplex::connect(server.local_addr()).unwrap();
        let mut pipe = RdsPipeline::new(duplex, "mgr").with_window(3);
        for i in 0..10u32 {
            pipe.submit(&RdsRequest::ReadJournal { max_records: i }).unwrap();
            assert!(pipe.in_flight() <= 3, "window respected");
        }
        assert_eq!(pipe.drain().len(), 10);
        server.shutdown();
    }

    #[test]
    fn window_of_one_degenerates_to_serial() {
        let server = rds_tcp_server(2, 64);
        let duplex = TcpDuplex::connect(server.local_addr()).unwrap();
        let mut pipe = RdsPipeline::new(duplex, "mgr").with_window(1);
        for _ in 0..5 {
            pipe.submit(&RdsRequest::ListPrograms).unwrap();
        }
        let results = pipe.drain();
        assert!(results.iter().all(|(_, r)| matches!(r, Ok(RdsResponse::Programs { .. }))));
        server.shutdown();
    }

    #[test]
    fn busy_sheds_are_retried_with_identical_frames() {
        // One worker, one queue slot: a window of 6 slow requests
        // guarantees sheds. With retries enabled every request must
        // still complete exactly once.
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 1, backlog: 1, ..TcpServerConfig::default() },
            {
                let rds = Arc::new(RdsServer::open(|_p: &Principal, _req: RdsRequest| {
                    std::thread::sleep(Duration::from_millis(20));
                    RdsResponse::Ok
                }));
                move |bytes: &[u8]| rds.process(bytes)
            },
        )
        .unwrap();
        let duplex = TcpDuplex::connect(server.local_addr()).unwrap();
        let mut pipe = RdsPipeline::new(duplex, "mgr").with_window(6).with_retry(RetryPolicy {
            max_attempts: 50,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            deadline: Some(Duration::from_secs(30)),
            jitter_seed: 11,
        });
        for _ in 0..12 {
            pipe.submit(&RdsRequest::ListInstances).unwrap();
        }
        let results = pipe.drain();
        assert_eq!(results.len(), 12);
        for (id, result) in &results {
            assert!(matches!(result, Ok(RdsResponse::Ok)), "#{id}: {result:?}");
        }
        assert!(server.sheds() > 0, "the tiny tier must have shed something");
        assert!(pipe.retries() >= server.sheds(), "every shed was retried");
        server.shutdown();
    }

    #[test]
    fn busy_without_retry_budget_surfaces_as_remote_error() {
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 1, backlog: 1, ..TcpServerConfig::default() },
            {
                let rds = Arc::new(RdsServer::open(|_p: &Principal, _req: RdsRequest| {
                    std::thread::sleep(Duration::from_millis(150));
                    RdsResponse::Ok
                }));
                move |bytes: &[u8]| rds.process(bytes)
            },
        )
        .unwrap();
        let duplex = TcpDuplex::connect(server.local_addr()).unwrap();
        let mut pipe = RdsPipeline::new(duplex, "mgr").with_window(8);
        for _ in 0..8 {
            pipe.submit(&RdsRequest::ListInstances).unwrap();
        }
        let results = pipe.drain();
        let busy = results
            .iter()
            .filter(|(_, r)| matches!(r, Err(RdsError::Remote { code: ErrorCode::Busy, .. })))
            .count();
        assert!(busy > 0, "no retry policy: sheds surface to the caller");
        assert_eq!(results.len(), 8, "every request gets exactly one outcome");
        server.shutdown();
    }

    #[test]
    fn reconnect_resends_pending_and_dedup_keeps_effects_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Handler counts executions; the server's dedup cache must absorb
        // the re-sent frames after we kill the connection mid-window.
        let executions = Arc::new(AtomicU64::new(0));
        let counted = Arc::clone(&executions);
        let server = TcpServer::spawn_with(
            "127.0.0.1:0",
            TcpServerConfig { workers: 2, ..TcpServerConfig::default() },
            {
                let rds = Arc::new(RdsServer::open(move |_p: &Principal, req: RdsRequest| {
                    if matches!(req, RdsRequest::SendMessage { .. }) {
                        counted.fetch_add(1, Ordering::Relaxed);
                    }
                    RdsResponse::Ok
                }));
                move |bytes: &[u8]| rds.process(bytes)
            },
        )
        .unwrap();
        let duplex = TcpDuplex::connect(server.local_addr()).unwrap();
        let mut pipe = RdsPipeline::new(duplex, "mgr")
            .with_window(4)
            .with_recv_timeout(Duration::from_millis(200))
            .with_retry(RetryPolicy {
                max_attempts: 6,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(10),
                deadline: Some(Duration::from_secs(10)),
                jitter_seed: 3,
            });
        let dpi = crate::DpiId(1);
        for i in 0..4u8 {
            pipe.submit(&RdsRequest::SendMessage { dpi, payload: vec![i] }).unwrap();
        }
        // Let the server answer, then stall the stream so the pipeline
        // re-probes; dedup replays rather than re-executes.
        std::thread::sleep(Duration::from_millis(50));
        for i in 4..8u8 {
            pipe.submit(&RdsRequest::SendMessage { dpi, payload: vec![i] }).unwrap();
        }
        let results = pipe.drain();
        assert_eq!(results.len(), 8);
        for (id, result) in &results {
            assert!(matches!(result, Ok(RdsResponse::Ok)), "#{id}: {result:?}");
        }
        assert_eq!(executions.load(Ordering::Relaxed), 8, "exactly-once effects");
        server.shutdown();
    }

    #[test]
    fn keyed_pipeline_round_trips() {
        let key = b"secret".to_vec();
        let server = TcpServer::spawn("127.0.0.1:0", {
            let rds = Arc::new(RdsServer::with_policy(
                |_p: &Principal, _req: RdsRequest| RdsResponse::Ok,
                mbd_auth::Acl::allow_by_default(),
                Some(b"secret".to_vec()),
            ));
            move |bytes: &[u8]| rds.process(bytes)
        })
        .unwrap();
        let duplex = TcpDuplex::connect(server.local_addr()).unwrap();
        let mut pipe = RdsPipeline::with_key(duplex, "mgr", key).with_window(4);
        for _ in 0..8 {
            pipe.submit(&RdsRequest::ListInstances).unwrap();
        }
        let results = pipe.drain();
        assert!(results.iter().all(|(_, r)| r.is_ok()), "{results:?}");
        server.shutdown();
    }

    #[test]
    fn stale_duplicate_replies_are_ignored() {
        // A duplex that duplicates every response frame.
        struct Doubling(TcpDuplex, VecDeque<Vec<u8>>);
        impl FrameDuplex for Doubling {
            fn send_frame(&mut self, bytes: &[u8]) -> Result<(), RdsError> {
                self.0.send_frame(bytes)
            }
            fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, RdsError> {
                if let Some(f) = self.1.pop_front() {
                    return Ok(Some(f));
                }
                let out = self.0.recv_frame(timeout)?;
                if let Some(f) = &out {
                    self.1.push_back(f.clone());
                }
                Ok(out)
            }
            fn reconnect(&mut self) -> Result<(), RdsError> {
                self.0.reconnect()
            }
        }
        let server = rds_tcp_server(2, 64);
        let duplex = Doubling(TcpDuplex::connect(server.local_addr()).unwrap(), VecDeque::new());
        let mut pipe = RdsPipeline::new(duplex, "mgr").with_window(4);
        for _ in 0..10 {
            pipe.submit(&RdsRequest::ListPrograms).unwrap();
        }
        let results = pipe.drain();
        assert_eq!(results.len(), 10, "duplicates add no extra outcomes");
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        server.shutdown();
    }
}
