//! Wire encoding of RDS messages.
//!
//! Every message is `SEQUENCE { OCTET STRING digest, payload }` where
//! `payload` is itself a BER SEQUENCE. When a shared key is in use, the
//! digest is `MD5(key ‖ payload-bytes)`; otherwise it is empty. Because
//! the encoder is deterministic, the receiver re-extracts the raw payload
//! bytes and verifies the digest before decoding.
//!
//! Request payload: `SEQUENCE { version, request-id, principal, [op]{...} }`.
//! Response payload: `SEQUENCE { version, request-id, [tag]{...} }`.

use crate::{DpiId, DpiState, DpiSummary, ErrorCode, RdsError, RdsRequest, RdsResponse};
use ber::{BerReader, BerWriter, Tag};
use mbd_auth::Principal;

/// Protocol version this implementation speaks.
pub const RDS_VERSION: i64 = 1;

fn seal(payload: Vec<u8>, key: Option<&[u8]>) -> Vec<u8> {
    let digest: Vec<u8> = match key {
        Some(k) => mbd_auth::keyed_digest(k, &payload).to_vec(),
        None => Vec::new(),
    };
    let mut w = BerWriter::new();
    w.write_sequence(|w| {
        w.write_octet_string(&digest);
        w.write_raw(&payload);
    });
    w.into_bytes()
}

fn unseal<'a>(bytes: &'a [u8], key: Option<&[u8]>) -> Result<&'a [u8], RdsError> {
    let mut r = BerReader::new(bytes);
    let (digest, payload) = r.read_sequence(|r| {
        let digest = r.read_octet_string()?.to_vec();
        let payload = r.read_raw_value()?;
        Ok((digest, payload))
    })?;
    r.expect_end()?;
    if let Some(k) = key {
        let expected: [u8; 16] = digest.as_slice().try_into().map_err(|_| RdsError::BadDigest)?;
        if !mbd_auth::verify_keyed_digest(k, payload, &expected) {
            return Err(RdsError::BadDigest);
        }
    }
    Ok(payload)
}

/// Encodes a request.
///
/// `key` enables digest authentication (both ends must share it).
pub fn encode_request(
    req: &RdsRequest,
    principal: &Principal,
    request_id: i64,
    key: Option<&[u8]>,
) -> Vec<u8> {
    let mut w = BerWriter::new();
    w.write_sequence(|w| {
        w.write_i64(RDS_VERSION);
        w.write_i64(request_id);
        w.write_octet_string(principal.handle().as_bytes());
        w.write_constructed(Tag::context(req.op_tag()), |w| match req {
            RdsRequest::DelegateProgram { dp_name, language, source } => {
                w.write_octet_string(dp_name.as_bytes());
                w.write_octet_string(language.as_bytes());
                w.write_octet_string(source);
            }
            RdsRequest::DeleteProgram { dp_name } | RdsRequest::Instantiate { dp_name } => {
                w.write_octet_string(dp_name.as_bytes());
            }
            RdsRequest::Invoke { dpi, entry, args } => {
                w.write_i64(dpi.0 as i64);
                w.write_octet_string(entry.as_bytes());
                w.write_sequence(|w| {
                    for a in args {
                        w.write_value(a);
                    }
                });
            }
            RdsRequest::Suspend { dpi }
            | RdsRequest::Resume { dpi }
            | RdsRequest::Terminate { dpi } => {
                w.write_i64(dpi.0 as i64);
            }
            RdsRequest::SendMessage { dpi, payload } => {
                w.write_i64(dpi.0 as i64);
                w.write_octet_string(payload);
            }
            RdsRequest::ListPrograms | RdsRequest::ListInstances => {}
        });
    });
    seal(w.into_bytes(), key)
}

/// Decodes and (if `key` is given) authenticates a request.
///
/// Returns the request, the claimed principal, and the request id.
///
/// # Errors
///
/// [`RdsError::Codec`] on malformed bytes, [`RdsError::BadDigest`] on
/// authentication failure, [`RdsError::UnknownOperation`] on a bad tag.
pub fn decode_request(
    bytes: &[u8],
    key: Option<&[u8]>,
) -> Result<(RdsRequest, Principal, i64), RdsError> {
    let payload = unseal(bytes, key)?;
    let mut r = BerReader::new(payload);
    let out = r.read_sequence(|r| {
        let _version = r.read_i64()?;
        let request_id = r.read_i64()?;
        let principal = String::from_utf8_lossy(r.read_octet_string()?).into_owned();
        let tag = r.peek_tag()?;
        let op = tag.number();
        let req = r.read_constructed(tag, |r| {
            Ok(match op {
                0 => Some(RdsRequest::DelegateProgram {
                    dp_name: read_string(r)?,
                    language: read_string(r)?,
                    source: r.read_octet_string()?.to_vec(),
                }),
                1 => Some(RdsRequest::DeleteProgram { dp_name: read_string(r)? }),
                2 => Some(RdsRequest::Instantiate { dp_name: read_string(r)? }),
                3 => Some(RdsRequest::Invoke {
                    dpi: DpiId(r.read_i64()? as u64),
                    entry: read_string(r)?,
                    args: r.read_sequence(|r| {
                        let mut args = Vec::new();
                        while !r.at_end() {
                            args.push(r.read_value()?);
                        }
                        Ok(args)
                    })?,
                }),
                4 => Some(RdsRequest::Suspend { dpi: DpiId(r.read_i64()? as u64) }),
                5 => Some(RdsRequest::Resume { dpi: DpiId(r.read_i64()? as u64) }),
                6 => Some(RdsRequest::Terminate { dpi: DpiId(r.read_i64()? as u64) }),
                7 => Some(RdsRequest::SendMessage {
                    dpi: DpiId(r.read_i64()? as u64),
                    payload: r.read_octet_string()?.to_vec(),
                }),
                8 => Some(RdsRequest::ListPrograms),
                9 => Some(RdsRequest::ListInstances),
                _ => {
                    // Drain so expect_end passes; flag after.
                    while !r.at_end() {
                        r.read_value()?;
                    }
                    None
                }
            })
        })?;
        Ok((req, principal, request_id, op))
    })?;
    r.expect_end()?;
    let (req, principal, request_id, op) = out;
    let req = req.ok_or(RdsError::UnknownOperation(op))?;
    Ok((req, Principal::new(principal), request_id))
}

/// Encodes a response to request `request_id`.
pub fn encode_response(resp: &RdsResponse, request_id: i64, key: Option<&[u8]>) -> Vec<u8> {
    let mut w = BerWriter::new();
    w.write_sequence(|w| {
        w.write_i64(RDS_VERSION);
        w.write_i64(request_id);
        w.write_constructed(Tag::context(resp.op_tag()), |w| match resp {
            RdsResponse::Ok => {}
            RdsResponse::Instantiated { dpi } => w.write_i64(dpi.0 as i64),
            RdsResponse::Result { value } => w.write_value(value),
            RdsResponse::Programs { names } => w.write_sequence(|w| {
                for n in names {
                    w.write_octet_string(n.as_bytes());
                }
            }),
            RdsResponse::Instances { instances } => w.write_sequence(|w| {
                for i in instances {
                    w.write_sequence(|w| {
                        w.write_i64(i.id.0 as i64);
                        w.write_octet_string(i.dp_name.as_bytes());
                        w.write_i64(i.state.code());
                    });
                }
            }),
            RdsResponse::Error { code, message } => {
                w.write_i64(code.code());
                w.write_octet_string(message.as_bytes());
            }
        });
    });
    seal(w.into_bytes(), key)
}

/// Decodes and (if keyed) authenticates a response; returns it with its
/// request id.
///
/// # Errors
///
/// As for [`decode_request`].
pub fn decode_response(bytes: &[u8], key: Option<&[u8]>) -> Result<(RdsResponse, i64), RdsError> {
    let payload = unseal(bytes, key)?;
    let mut r = BerReader::new(payload);
    let out = r.read_sequence(|r| {
        let _version = r.read_i64()?;
        let request_id = r.read_i64()?;
        let tag = r.peek_tag()?;
        let op = tag.number();
        let resp = r.read_constructed(tag, |r| {
            Ok(match op {
                0 => Some(RdsResponse::Ok),
                1 => Some(RdsResponse::Instantiated { dpi: DpiId(r.read_i64()? as u64) }),
                2 => Some(RdsResponse::Result { value: r.read_value()? }),
                3 => Some(RdsResponse::Programs {
                    names: r.read_sequence(|r| {
                        let mut names = Vec::new();
                        while !r.at_end() {
                            names.push(read_string(r)?);
                        }
                        Ok(names)
                    })?,
                }),
                4 => Some(RdsResponse::Instances {
                    instances: r.read_sequence(|r| {
                        let mut out = Vec::new();
                        while !r.at_end() {
                            out.push(r.read_sequence(|r| {
                                let id = DpiId(r.read_i64()? as u64);
                                let dp_name = read_string(r)?;
                                let state = DpiState::from_code(r.read_i64()?)
                                    .ok_or(ber::BerError::BadInteger)?;
                                Ok(DpiSummary { id, dp_name, state })
                            })?);
                        }
                        Ok(out)
                    })?,
                }),
                5 => Some(RdsResponse::Error {
                    code: ErrorCode::from_code(r.read_i64()?),
                    message: read_string(r)?,
                }),
                _ => {
                    while !r.at_end() {
                        r.read_value()?;
                    }
                    None
                }
            })
        })?;
        Ok((resp, request_id, op))
    })?;
    r.expect_end()?;
    let (resp, request_id, op) = out;
    let resp = resp.ok_or(RdsError::UnknownOperation(op))?;
    Ok((resp, request_id))
}

fn read_string(r: &mut BerReader<'_>) -> Result<String, ber::BerError> {
    Ok(String::from_utf8_lossy(r.read_octet_string()?).into_owned())
}

/// The encoded size of a delegation request for `source` — used by the
/// crossover experiment to charge the one-time cost of moving the agent.
pub fn delegation_wire_cost(dp_name: &str, source: &[u8]) -> usize {
    encode_request(
        &RdsRequest::DelegateProgram {
            dp_name: dp_name.to_string(),
            language: "dpl".to_string(),
            source: source.to_vec(),
        },
        &Principal::new("sizing"),
        0,
        None,
    )
    .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ber::BerValue;

    fn all_requests() -> Vec<RdsRequest> {
        vec![
            RdsRequest::DelegateProgram {
                dp_name: "health".to_string(),
                language: "dpl".to_string(),
                source: b"fn main() { return 1; }".to_vec(),
            },
            RdsRequest::DeleteProgram { dp_name: "health".to_string() },
            RdsRequest::Instantiate { dp_name: "health".to_string() },
            RdsRequest::Invoke {
                dpi: DpiId(42),
                entry: "main".to_string(),
                args: vec![
                    BerValue::Integer(5),
                    BerValue::OctetString(b"x".to_vec()),
                    BerValue::Sequence(vec![BerValue::Null]),
                ],
            },
            RdsRequest::Suspend { dpi: DpiId(1) },
            RdsRequest::Resume { dpi: DpiId(1) },
            RdsRequest::Terminate { dpi: DpiId(1) },
            RdsRequest::SendMessage { dpi: DpiId(7), payload: vec![1, 2, 3] },
            RdsRequest::ListPrograms,
            RdsRequest::ListInstances,
        ]
    }

    fn all_responses() -> Vec<RdsResponse> {
        vec![
            RdsResponse::Ok,
            RdsResponse::Instantiated { dpi: DpiId(9) },
            RdsResponse::Result { value: BerValue::Integer(123) },
            RdsResponse::Programs { names: vec!["a".to_string(), "b".to_string()] },
            RdsResponse::Instances {
                instances: vec![
                    DpiSummary { id: DpiId(1), dp_name: "a".to_string(), state: DpiState::Ready },
                    DpiSummary {
                        id: DpiId(2),
                        dp_name: "b".to_string(),
                        state: DpiState::Suspended,
                    },
                ],
            },
            RdsResponse::Error {
                code: ErrorCode::NoSuchProgram,
                message: "dp `x` unknown".to_string(),
            },
        ]
    }

    #[test]
    fn requests_round_trip_unauthenticated() {
        for req in all_requests() {
            let bytes = encode_request(&req, &Principal::new("mgr"), 55, None);
            let (decoded, principal, id) = decode_request(&bytes, None).unwrap();
            assert_eq!(decoded, req);
            assert_eq!(principal.handle(), "mgr");
            assert_eq!(id, 55);
        }
    }

    #[test]
    fn responses_round_trip_unauthenticated() {
        for resp in all_responses() {
            let bytes = encode_response(&resp, 77, None);
            let (decoded, id) = decode_response(&bytes, None).unwrap();
            assert_eq!(decoded, resp);
            assert_eq!(id, 77);
        }
    }

    #[test]
    fn keyed_round_trip_and_tamper_detection() {
        let key = b"shared-secret";
        for req in all_requests() {
            let mut bytes = encode_request(&req, &Principal::new("mgr"), 1, Some(key));
            assert!(decode_request(&bytes, Some(key)).is_ok());
            // Wrong key fails.
            assert_eq!(decode_request(&bytes, Some(b"other")).unwrap_err(), RdsError::BadDigest);
            // Bit-flip in the payload fails.
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            assert!(matches!(
                decode_request(&bytes, Some(key)),
                Err(RdsError::BadDigest | RdsError::Codec(_))
            ));
        }
    }

    #[test]
    fn unauthenticated_receiver_accepts_keyed_messages() {
        // Digest present but receiver not verifying: still decodable.
        let req = RdsRequest::ListPrograms;
        let bytes = encode_request(&req, &Principal::new("m"), 2, Some(b"k"));
        assert!(decode_request(&bytes, None).is_ok());
    }

    #[test]
    fn keyed_receiver_rejects_unauthenticated_messages() {
        let req = RdsRequest::ListPrograms;
        let bytes = encode_request(&req, &Principal::new("m"), 2, None);
        assert_eq!(decode_request(&bytes, Some(b"k")).unwrap_err(), RdsError::BadDigest);
    }

    #[test]
    fn unknown_operation_tag_rejected() {
        // Hand-build a payload with op tag 15.
        let mut w = BerWriter::new();
        w.write_sequence(|w| {
            w.write_i64(RDS_VERSION);
            w.write_i64(1);
            w.write_octet_string(b"m");
            w.write_constructed(Tag::context(15), |_| {});
        });
        let bytes = seal(w.into_bytes(), None);
        assert_eq!(decode_request(&bytes, None).unwrap_err(), RdsError::UnknownOperation(15));
    }

    #[test]
    fn truncated_messages_rejected() {
        let bytes = encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        for cut in 1..bytes.len() {
            assert!(decode_request(&bytes[..cut], None).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn delegation_wire_cost_scales_with_source() {
        let small = delegation_wire_cost("dp", b"fn main() {}");
        let big = delegation_wire_cost("dp", &vec![b'x'; 10_000]);
        assert!(big > small + 9_000);
    }
}
