//! Wire encoding of RDS messages.
//!
//! Every message is `SEQUENCE { OCTET STRING digest, payload }` where
//! `payload` is itself a BER SEQUENCE. When a shared key is in use, the
//! digest is `MD5(key ‖ payload-bytes)`; otherwise it is empty. Because
//! the encoder is deterministic, the receiver re-extracts the raw payload
//! bytes and verifies the digest before decoding.
//!
//! Request payload: `SEQUENCE { version, request-id, principal, [op]{...} }`.
//! Response payload: `SEQUENCE { version, request-id, [tag]{...} }`.
//!
//! # Trace context
//!
//! A frame may carry an optional [`TraceContext`]. The pre-trace payload
//! sequences are *closed*: the original decoders call `expect_end()`
//! inside every sequence, so appending a field anywhere in the payload
//! would break them. The digest octet string is the one field whose
//! *content* old receivers never parse structurally, so the trace rides
//! there as a suffix:
//!
//! ```text
//! digest-field := legacy-digest ‖ trace-suffix
//! legacy-digest := ""            (unkeyed)  |  16-byte MD5 (keyed)
//! trace-suffix  := ""  |  "MBDT" ‖ trace_id:u64be ‖ parent_span_id:u64be
//! ```
//!
//! Field lengths 0/16/20/36 disambiguate the four combinations. An unset
//! trace emits no suffix, so untraced frames are byte-identical to the
//! legacy format. When keyed, the digest is `MD5(key ‖ trace-suffix ‖
//! payload)` — the trace bytes are authenticated (with an empty suffix
//! this degenerates to the legacy digest). Compatibility matrix: old
//! frames always decode here; traced frames decode on old *unkeyed*
//! receivers (they skip digest content); traced frames are rejected by
//! old *keyed* receivers, which require exactly 16 digest bytes — keyed
//! fleets must upgrade receivers before enabling tracing on senders.

use crate::{
    AuditRecord, DpiId, DpiState, DpiSummary, ErrorCode, RdsError, RdsRequest, RdsResponse,
    TraceContext,
};
use ber::{BerReader, BerWriter, Tag};
use mbd_auth::Principal;

/// Protocol version this implementation speaks.
pub const RDS_VERSION: i64 = 1;

/// Marks the start of a trace-context suffix in the digest field.
const TRACE_MAGIC: &[u8; 4] = b"MBDT";
/// Encoded trace-suffix length: magic + two big-endian u64s.
const TRACE_SUFFIX_LEN: usize = 20;

fn trace_suffix(trace: TraceContext) -> Vec<u8> {
    if !trace.is_set() {
        return Vec::new();
    }
    let mut s = Vec::with_capacity(TRACE_SUFFIX_LEN);
    s.extend_from_slice(TRACE_MAGIC);
    s.extend_from_slice(&trace.trace_id.to_be_bytes());
    s.extend_from_slice(&trace.parent_span_id.to_be_bytes());
    s
}

/// Splits a digest field into `(legacy-digest, raw-suffix, trace)`.
fn split_trace(field: &[u8]) -> (&[u8], &[u8], TraceContext) {
    if field.len() >= TRACE_SUFFIX_LEN {
        let at = field.len() - TRACE_SUFFIX_LEN;
        let (legacy, suffix) = field.split_at(at);
        if &suffix[..TRACE_MAGIC.len()] == TRACE_MAGIC {
            let trace = TraceContext {
                trace_id: u64::from_be_bytes(suffix[4..12].try_into().expect("8 bytes")),
                parent_span_id: u64::from_be_bytes(suffix[12..20].try_into().expect("8 bytes")),
            };
            return (legacy, suffix, trace);
        }
    }
    (field, &[], TraceContext::default())
}

fn seal_traced(payload: Vec<u8>, key: Option<&[u8]>, trace: TraceContext) -> Vec<u8> {
    let suffix = trace_suffix(trace);
    let mut field: Vec<u8> = match key {
        Some(k) => {
            let mut signed = Vec::with_capacity(suffix.len() + payload.len());
            signed.extend_from_slice(&suffix);
            signed.extend_from_slice(&payload);
            mbd_auth::keyed_digest(k, &signed).to_vec()
        }
        None => Vec::new(),
    };
    field.extend_from_slice(&suffix);
    let mut w = BerWriter::new();
    w.write_sequence(|w| {
        w.write_octet_string(&field);
        w.write_raw(&payload);
    });
    w.into_bytes()
}

#[cfg(test)]
fn seal(payload: Vec<u8>, key: Option<&[u8]>) -> Vec<u8> {
    seal_traced(payload, key, TraceContext::default())
}

fn unseal_traced<'a>(
    bytes: &'a [u8],
    key: Option<&[u8]>,
) -> Result<(&'a [u8], TraceContext), RdsError> {
    let mut r = BerReader::new(bytes);
    let (field, payload) = r.read_sequence(|r| {
        let field = r.read_octet_string()?.to_vec();
        let payload = r.read_raw_value()?;
        Ok((field, payload))
    })?;
    r.expect_end()?;
    let (digest, suffix, trace) = split_trace(&field);
    if let Some(k) = key {
        let expected: [u8; 16] = digest.try_into().map_err(|_| RdsError::BadDigest)?;
        let mut signed = Vec::with_capacity(suffix.len() + payload.len());
        signed.extend_from_slice(suffix);
        signed.extend_from_slice(payload);
        if !mbd_auth::verify_keyed_digest(k, &signed, &expected) {
            return Err(RdsError::BadDigest);
        }
    }
    Ok((payload, trace))
}

/// Encodes a request.
///
/// `key` enables digest authentication (both ends must share it).
pub fn encode_request(
    req: &RdsRequest,
    principal: &Principal,
    request_id: i64,
    key: Option<&[u8]>,
) -> Vec<u8> {
    encode_request_traced(req, principal, request_id, key, TraceContext::default())
}

/// Encodes a request carrying `trace` (see the module docs for the
/// backward-compatible layout; an unset trace yields the legacy frame).
pub fn encode_request_traced(
    req: &RdsRequest,
    principal: &Principal,
    request_id: i64,
    key: Option<&[u8]>,
    trace: TraceContext,
) -> Vec<u8> {
    let mut w = BerWriter::new();
    w.write_sequence(|w| {
        w.write_i64(RDS_VERSION);
        w.write_i64(request_id);
        w.write_octet_string(principal.handle().as_bytes());
        w.write_constructed(Tag::context(req.op_tag()), |w| match req {
            RdsRequest::DelegateProgram { dp_name, language, source } => {
                w.write_octet_string(dp_name.as_bytes());
                w.write_octet_string(language.as_bytes());
                w.write_octet_string(source);
            }
            RdsRequest::DeleteProgram { dp_name } | RdsRequest::Instantiate { dp_name } => {
                w.write_octet_string(dp_name.as_bytes());
            }
            RdsRequest::Invoke { dpi, entry, args } => {
                w.write_i64(dpi.0 as i64);
                w.write_octet_string(entry.as_bytes());
                w.write_sequence(|w| {
                    for a in args {
                        w.write_value(a);
                    }
                });
            }
            RdsRequest::Suspend { dpi }
            | RdsRequest::Resume { dpi }
            | RdsRequest::Terminate { dpi } => {
                w.write_i64(dpi.0 as i64);
            }
            RdsRequest::SendMessage { dpi, payload } => {
                w.write_i64(dpi.0 as i64);
                w.write_octet_string(payload);
            }
            RdsRequest::ListPrograms | RdsRequest::ListInstances => {}
            RdsRequest::ReadJournal { max_records } => {
                w.write_i64(i64::from(*max_records));
            }
            RdsRequest::ReadProfile { trace_id, dpi } => {
                w.write_i64(*trace_id as i64);
                w.write_i64(*dpi as i64);
            }
            RdsRequest::ReadMetrics { pattern, range_s, res_s } => {
                w.write_octet_string(pattern.as_bytes());
                w.write_i64(i64::from(*range_s));
                w.write_i64(i64::from(*res_s));
            }
            RdsRequest::Checkpoint { dpi } => {
                w.write_i64(dpi.0 as i64);
            }
            RdsRequest::Restore { blob } => {
                w.write_octet_string(blob);
            }
        });
    });
    seal_traced(w.into_bytes(), key, trace)
}

/// Decodes and (if `key` is given) authenticates a request.
///
/// Returns the request, the claimed principal, and the request id.
///
/// # Errors
///
/// [`RdsError::Codec`] on malformed bytes, [`RdsError::BadDigest`] on
/// authentication failure, [`RdsError::UnknownOperation`] on a bad tag.
pub fn decode_request(
    bytes: &[u8],
    key: Option<&[u8]>,
) -> Result<(RdsRequest, Principal, i64), RdsError> {
    decode_request_traced(bytes, key).map(|(req, p, id, _)| (req, p, id))
}

/// [`decode_request`], additionally returning the frame's trace context
/// (unset for legacy frames).
///
/// # Errors
///
/// As for [`decode_request`]; a tampered trace suffix fails keyed
/// authentication with [`RdsError::BadDigest`].
pub fn decode_request_traced(
    bytes: &[u8],
    key: Option<&[u8]>,
) -> Result<(RdsRequest, Principal, i64, TraceContext), RdsError> {
    let (payload, trace) = unseal_traced(bytes, key)?;
    let mut r = BerReader::new(payload);
    let out = r.read_sequence(|r| {
        let _version = r.read_i64()?;
        let request_id = r.read_i64()?;
        let principal = String::from_utf8_lossy(r.read_octet_string()?).into_owned();
        let tag = r.peek_tag()?;
        let op = tag.number();
        let req = r.read_constructed(tag, |r| {
            Ok(match op {
                0 => Some(RdsRequest::DelegateProgram {
                    dp_name: read_string(r)?,
                    language: read_string(r)?,
                    source: r.read_octet_string()?.to_vec(),
                }),
                1 => Some(RdsRequest::DeleteProgram { dp_name: read_string(r)? }),
                2 => Some(RdsRequest::Instantiate { dp_name: read_string(r)? }),
                3 => Some(RdsRequest::Invoke {
                    dpi: DpiId(r.read_i64()? as u64),
                    entry: read_string(r)?,
                    args: r.read_sequence(|r| {
                        let mut args = Vec::new();
                        while !r.at_end() {
                            args.push(r.read_value()?);
                        }
                        Ok(args)
                    })?,
                }),
                4 => Some(RdsRequest::Suspend { dpi: DpiId(r.read_i64()? as u64) }),
                5 => Some(RdsRequest::Resume { dpi: DpiId(r.read_i64()? as u64) }),
                6 => Some(RdsRequest::Terminate { dpi: DpiId(r.read_i64()? as u64) }),
                7 => Some(RdsRequest::SendMessage {
                    dpi: DpiId(r.read_i64()? as u64),
                    payload: r.read_octet_string()?.to_vec(),
                }),
                8 => Some(RdsRequest::ListPrograms),
                9 => Some(RdsRequest::ListInstances),
                10 => Some(RdsRequest::ReadJournal {
                    max_records: r.read_i64()?.clamp(0, i64::from(u32::MAX)) as u32,
                }),
                11 => Some(RdsRequest::ReadProfile {
                    trace_id: r.read_i64()? as u64,
                    dpi: r.read_i64()? as u64,
                }),
                12 => Some(RdsRequest::ReadMetrics {
                    pattern: read_string(r)?,
                    range_s: r.read_i64()?.clamp(0, i64::from(u32::MAX)) as u32,
                    res_s: r.read_i64()?.clamp(0, i64::from(u32::MAX)) as u32,
                }),
                13 => Some(RdsRequest::Checkpoint { dpi: DpiId(r.read_i64()? as u64) }),
                14 => Some(RdsRequest::Restore { blob: r.read_octet_string()?.to_vec() }),
                _ => {
                    // Drain so expect_end passes; flag after.
                    while !r.at_end() {
                        r.read_value()?;
                    }
                    None
                }
            })
        })?;
        Ok((req, principal, request_id, op))
    })?;
    r.expect_end()?;
    let (req, principal, request_id, op) = out;
    let req = req.ok_or(RdsError::UnknownOperation(op))?;
    Ok((req, Principal::new(principal), request_id, trace))
}

/// Encodes a response to request `request_id`.
pub fn encode_response(resp: &RdsResponse, request_id: i64, key: Option<&[u8]>) -> Vec<u8> {
    encode_response_traced(resp, request_id, key, TraceContext::default())
}

/// Encodes a response echoing `trace` back to the requester (an unset
/// trace yields the legacy frame).
pub fn encode_response_traced(
    resp: &RdsResponse,
    request_id: i64,
    key: Option<&[u8]>,
    trace: TraceContext,
) -> Vec<u8> {
    let mut w = BerWriter::new();
    w.write_sequence(|w| {
        w.write_i64(RDS_VERSION);
        w.write_i64(request_id);
        w.write_constructed(Tag::context(resp.op_tag()), |w| match resp {
            RdsResponse::Ok => {}
            RdsResponse::Instantiated { dpi } => w.write_i64(dpi.0 as i64),
            RdsResponse::Result { value } => w.write_value(value),
            RdsResponse::Programs { names } => w.write_sequence(|w| {
                for n in names {
                    w.write_octet_string(n.as_bytes());
                }
            }),
            RdsResponse::Instances { instances } => w.write_sequence(|w| {
                for i in instances {
                    w.write_sequence(|w| {
                        w.write_i64(i.id.0 as i64);
                        w.write_octet_string(i.dp_name.as_bytes());
                        w.write_i64(i.state.code());
                    });
                }
            }),
            RdsResponse::Error { code, message } => {
                w.write_i64(code.code());
                w.write_octet_string(message.as_bytes());
            }
            RdsResponse::Journal { records } => w.write_sequence(|w| {
                for rec in records {
                    w.write_sequence(|w| {
                        w.write_i64(rec.seq as i64);
                        w.write_i64(rec.ticks as i64);
                        w.write_i64(rec.trace_id as i64);
                        w.write_octet_string(rec.principal.as_bytes());
                        w.write_octet_string(rec.verb.as_bytes());
                        w.write_i64(rec.dpi as i64);
                        w.write_i64(i64::from(rec.ok));
                        w.write_octet_string(rec.detail.as_bytes());
                    });
                }
            }),
            RdsResponse::Profile { trace_id, kept, spans, stacks } => {
                w.write_i64(*trace_id as i64);
                w.write_octet_string(kept.as_bytes());
                w.write_sequence(|w| {
                    for s in spans {
                        w.write_sequence(|w| {
                            w.write_i64(s.trace_id as i64);
                            w.write_i64(s.span_id as i64);
                            w.write_i64(s.parent_span_id as i64);
                            w.write_octet_string(s.name.as_bytes());
                            w.write_i64(s.start_ns as i64);
                            w.write_i64(s.duration_ns as i64);
                        });
                    }
                });
                w.write_sequence(|w| {
                    for line in stacks {
                        w.write_octet_string(line.as_bytes());
                    }
                });
            }
            RdsResponse::Checkpointed { blob } => w.write_octet_string(blob),
            RdsResponse::Metrics { now_s, series, alerts } => {
                w.write_i64(*now_s as i64);
                w.write_sequence(|w| {
                    for s in series {
                        w.write_sequence(|w| {
                            w.write_octet_string(s.name.as_bytes());
                            w.write_octet_string(s.kind.as_bytes());
                            w.write_sequence(|w| {
                                for p in &s.points {
                                    w.write_sequence(|w| {
                                        w.write_i64(p.t_s as i64);
                                        w.write_i64(p.min as i64);
                                        w.write_i64(p.max as i64);
                                        w.write_i64(p.avg as i64);
                                        w.write_i64(p.last as i64);
                                    });
                                }
                            });
                        });
                    }
                });
                w.write_sequence(|w| {
                    for a in alerts {
                        w.write_sequence(|w| {
                            w.write_octet_string(a.rule.as_bytes());
                            w.write_octet_string(a.metric.as_bytes());
                            w.write_i64(i64::from(a.firing));
                            w.write_i64(a.value as i64);
                            w.write_i64(a.since_s as i64);
                            w.write_i64(a.fired_count as i64);
                        });
                    }
                });
            }
        });
    });
    seal_traced(w.into_bytes(), key, trace)
}

/// Decodes and (if keyed) authenticates a response; returns it with its
/// request id.
///
/// # Errors
///
/// As for [`decode_request`].
pub fn decode_response(bytes: &[u8], key: Option<&[u8]>) -> Result<(RdsResponse, i64), RdsError> {
    decode_response_traced(bytes, key).map(|(resp, id, _)| (resp, id))
}

/// [`decode_response`], additionally returning the echoed trace context
/// (unset for legacy frames).
///
/// # Errors
///
/// As for [`decode_response`].
pub fn decode_response_traced(
    bytes: &[u8],
    key: Option<&[u8]>,
) -> Result<(RdsResponse, i64, TraceContext), RdsError> {
    let (payload, trace) = unseal_traced(bytes, key)?;
    let mut r = BerReader::new(payload);
    let out = r.read_sequence(|r| {
        let _version = r.read_i64()?;
        let request_id = r.read_i64()?;
        let tag = r.peek_tag()?;
        let op = tag.number();
        let resp = r.read_constructed(tag, |r| {
            Ok(match op {
                0 => Some(RdsResponse::Ok),
                1 => Some(RdsResponse::Instantiated { dpi: DpiId(r.read_i64()? as u64) }),
                2 => Some(RdsResponse::Result { value: r.read_value()? }),
                3 => Some(RdsResponse::Programs {
                    names: r.read_sequence(|r| {
                        let mut names = Vec::new();
                        while !r.at_end() {
                            names.push(read_string(r)?);
                        }
                        Ok(names)
                    })?,
                }),
                4 => Some(RdsResponse::Instances {
                    instances: r.read_sequence(|r| {
                        let mut out = Vec::new();
                        while !r.at_end() {
                            out.push(r.read_sequence(|r| {
                                let id = DpiId(r.read_i64()? as u64);
                                let dp_name = read_string(r)?;
                                let state = DpiState::from_code(r.read_i64()?)
                                    .ok_or(ber::BerError::BadInteger)?;
                                Ok(DpiSummary { id, dp_name, state })
                            })?);
                        }
                        Ok(out)
                    })?,
                }),
                5 => Some(RdsResponse::Error {
                    code: ErrorCode::from_code(r.read_i64()?),
                    message: read_string(r)?,
                }),
                7 => Some(RdsResponse::Profile {
                    trace_id: r.read_i64()? as u64,
                    kept: read_string(r)?,
                    spans: r.read_sequence(|r| {
                        let mut out = Vec::new();
                        while !r.at_end() {
                            out.push(r.read_sequence(|r| {
                                Ok(crate::SpanRecord {
                                    trace_id: r.read_i64()? as u64,
                                    span_id: r.read_i64()? as u64,
                                    parent_span_id: r.read_i64()? as u64,
                                    name: read_string(r)?,
                                    start_ns: r.read_i64()? as u64,
                                    duration_ns: r.read_i64()? as u64,
                                })
                            })?);
                        }
                        Ok(out)
                    })?,
                    stacks: r.read_sequence(|r| {
                        let mut out = Vec::new();
                        while !r.at_end() {
                            out.push(read_string(r)?);
                        }
                        Ok(out)
                    })?,
                }),
                6 => Some(RdsResponse::Journal {
                    records: r.read_sequence(|r| {
                        let mut out = Vec::new();
                        while !r.at_end() {
                            out.push(r.read_sequence(|r| {
                                Ok(AuditRecord {
                                    seq: r.read_i64()? as u64,
                                    ticks: r.read_i64()? as u64,
                                    trace_id: r.read_i64()? as u64,
                                    principal: read_string(r)?,
                                    verb: read_string(r)?,
                                    dpi: r.read_i64()? as u64,
                                    ok: r.read_i64()? != 0,
                                    detail: read_string(r)?,
                                })
                            })?);
                        }
                        Ok(out)
                    })?,
                }),
                8 => Some(RdsResponse::Metrics {
                    now_s: r.read_i64()? as u64,
                    series: r.read_sequence(|r| {
                        let mut out = Vec::new();
                        while !r.at_end() {
                            out.push(r.read_sequence(|r| {
                                let name = read_string(r)?;
                                let kind = read_string(r)?;
                                let points = r.read_sequence(|r| {
                                    let mut pts = Vec::new();
                                    while !r.at_end() {
                                        pts.push(r.read_sequence(|r| {
                                            Ok(crate::MetricPoint {
                                                t_s: r.read_i64()? as u64,
                                                min: r.read_i64()? as u64,
                                                max: r.read_i64()? as u64,
                                                avg: r.read_i64()? as u64,
                                                last: r.read_i64()? as u64,
                                            })
                                        })?);
                                    }
                                    Ok(pts)
                                })?;
                                Ok(crate::MetricSeries { name, kind, points })
                            })?);
                        }
                        Ok(out)
                    })?,
                    alerts: r.read_sequence(|r| {
                        let mut out = Vec::new();
                        while !r.at_end() {
                            out.push(r.read_sequence(|r| {
                                Ok(crate::AlertStatus {
                                    rule: read_string(r)?,
                                    metric: read_string(r)?,
                                    firing: r.read_i64()? != 0,
                                    value: r.read_i64()? as u64,
                                    since_s: r.read_i64()? as u64,
                                    fired_count: r.read_i64()? as u64,
                                })
                            })?);
                        }
                        Ok(out)
                    })?,
                }),
                9 => Some(RdsResponse::Checkpointed { blob: r.read_octet_string()?.to_vec() }),
                _ => {
                    while !r.at_end() {
                        r.read_value()?;
                    }
                    None
                }
            })
        })?;
        Ok((resp, request_id, op))
    })?;
    r.expect_end()?;
    let (resp, request_id, op) = out;
    let resp = resp.ok_or(RdsError::UnknownOperation(op))?;
    Ok((resp, request_id, trace))
}

/// Extracts just the request id from an encoded frame without
/// authenticating or fully decoding it — requests and responses share
/// the `SEQUENCE { version, request-id, … }` payload prefix. The
/// reactor uses this so a shed `Busy` frame can name the request it
/// sheds; `None` for frames that are not RDS messages at all.
pub fn peek_request_id(bytes: &[u8]) -> Option<i64> {
    fn skip_rest(r: &mut BerReader<'_>) -> Result<(), ber::BerError> {
        while !r.at_end() {
            r.read_raw_value()?;
        }
        Ok(())
    }
    let mut r = BerReader::new(bytes);
    let id = r
        .read_sequence(|r| {
            let _digest = r.read_octet_string()?;
            let payload = r.read_raw_value()?;
            let mut p = BerReader::new(payload);
            let id = p.read_sequence(|p| {
                let _version = p.read_i64()?;
                let id = p.read_i64()?;
                skip_rest(p)?;
                Ok(id)
            })?;
            p.expect_end()?;
            skip_rest(r)?;
            Ok(id)
        })
        .ok()?;
    r.expect_end().ok()?;
    Some(id)
}

fn read_string(r: &mut BerReader<'_>) -> Result<String, ber::BerError> {
    Ok(String::from_utf8_lossy(r.read_octet_string()?).into_owned())
}

/// The encoded size of a delegation request for `source` — used by the
/// crossover experiment to charge the one-time cost of moving the agent.
pub fn delegation_wire_cost(dp_name: &str, source: &[u8]) -> usize {
    encode_request(
        &RdsRequest::DelegateProgram {
            dp_name: dp_name.to_string(),
            language: "dpl".to_string(),
            source: source.to_vec(),
        },
        &Principal::new("sizing"),
        0,
        None,
    )
    .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ber::BerValue;

    fn all_requests() -> Vec<RdsRequest> {
        vec![
            RdsRequest::DelegateProgram {
                dp_name: "health".to_string(),
                language: "dpl".to_string(),
                source: b"fn main() { return 1; }".to_vec(),
            },
            RdsRequest::DeleteProgram { dp_name: "health".to_string() },
            RdsRequest::Instantiate { dp_name: "health".to_string() },
            RdsRequest::Invoke {
                dpi: DpiId(42),
                entry: "main".to_string(),
                args: vec![
                    BerValue::Integer(5),
                    BerValue::OctetString(b"x".to_vec()),
                    BerValue::Sequence(vec![BerValue::Null]),
                ],
            },
            RdsRequest::Suspend { dpi: DpiId(1) },
            RdsRequest::Resume { dpi: DpiId(1) },
            RdsRequest::Terminate { dpi: DpiId(1) },
            RdsRequest::SendMessage { dpi: DpiId(7), payload: vec![1, 2, 3] },
            RdsRequest::ListPrograms,
            RdsRequest::ListInstances,
            RdsRequest::ReadJournal { max_records: 64 },
            RdsRequest::ReadProfile { trace_id: 0xFEED, dpi: 3 },
            RdsRequest::ReadMetrics { pattern: "rds.verb.*".to_string(), range_s: 120, res_s: 10 },
            RdsRequest::Checkpoint { dpi: DpiId(11) },
            RdsRequest::Restore { blob: vec![0x30, 0x03, 0x02, 0x01, 0x01] },
        ]
    }

    fn all_responses() -> Vec<RdsResponse> {
        vec![
            RdsResponse::Ok,
            RdsResponse::Instantiated { dpi: DpiId(9) },
            RdsResponse::Result { value: BerValue::Integer(123) },
            RdsResponse::Programs { names: vec!["a".to_string(), "b".to_string()] },
            RdsResponse::Instances {
                instances: vec![
                    DpiSummary { id: DpiId(1), dp_name: "a".to_string(), state: DpiState::Ready },
                    DpiSummary {
                        id: DpiId(2),
                        dp_name: "b".to_string(),
                        state: DpiState::Suspended,
                    },
                ],
            },
            RdsResponse::Error {
                code: ErrorCode::NoSuchProgram,
                message: "dp `x` unknown".to_string(),
            },
            RdsResponse::Journal {
                records: vec![
                    AuditRecord {
                        seq: 1,
                        ticks: 200,
                        trace_id: 0xDEAD_BEEF,
                        principal: "mgr".to_string(),
                        verb: "invoke".to_string(),
                        dpi: 3,
                        ok: true,
                        detail: String::new(),
                    },
                    AuditRecord {
                        seq: 2,
                        ticks: 201,
                        trace_id: 0,
                        principal: "server".to_string(),
                        verb: "quota.breach".to_string(),
                        dpi: 3,
                        ok: false,
                        detail: "busy_ns 1000 > 500".to_string(),
                    },
                ],
            },
            RdsResponse::Profile {
                trace_id: 0xFACE,
                kept: "slow".to_string(),
                spans: vec![
                    crate::SpanRecord {
                        trace_id: 0xFACE,
                        span_id: 2,
                        parent_span_id: 1,
                        name: "ep.invoke".to_string(),
                        start_ns: 500,
                        duration_ns: 900,
                    },
                    crate::SpanRecord {
                        trace_id: 0xFACE,
                        span_id: 1,
                        parent_span_id: 0,
                        name: "rds.request".to_string(),
                        start_ns: 100,
                        duration_ns: 2_000,
                    },
                ],
                stacks: vec!["dpi-3;main;leaf@12 340".to_string()],
            },
            RdsResponse::Metrics {
                now_s: 95,
                series: vec![
                    crate::MetricSeries {
                        name: "rds.request".to_string(),
                        kind: "rate".to_string(),
                        points: vec![
                            crate::MetricPoint { t_s: 93, min: 10, max: 10, avg: 10, last: 10 },
                            crate::MetricPoint { t_s: 94, min: 12, max: 12, avg: 12, last: 12 },
                        ],
                    },
                    crate::MetricSeries {
                        name: "rds.request.p99".to_string(),
                        kind: "quantile".to_string(),
                        points: vec![crate::MetricPoint {
                            t_s: 90,
                            min: 8_000,
                            max: 131_000,
                            avg: 40_000,
                            last: 9_000,
                        }],
                    },
                ],
                alerts: vec![crate::AlertStatus {
                    rule: "rds.request.p99>50ms:for=2".to_string(),
                    metric: "rds.request.p99".to_string(),
                    firing: true,
                    value: 131_000,
                    since_s: 91,
                    fired_count: 2,
                }],
            },
            RdsResponse::Checkpointed { blob: vec![0xDE, 0xAD, 0xBE, 0xEF] },
        ]
    }

    #[test]
    fn requests_round_trip_unauthenticated() {
        for req in all_requests() {
            let bytes = encode_request(&req, &Principal::new("mgr"), 55, None);
            let (decoded, principal, id) = decode_request(&bytes, None).unwrap();
            assert_eq!(decoded, req);
            assert_eq!(principal.handle(), "mgr");
            assert_eq!(id, 55);
        }
    }

    #[test]
    fn responses_round_trip_unauthenticated() {
        for resp in all_responses() {
            let bytes = encode_response(&resp, 77, None);
            let (decoded, id) = decode_response(&bytes, None).unwrap();
            assert_eq!(decoded, resp);
            assert_eq!(id, 77);
        }
    }

    #[test]
    fn keyed_round_trip_and_tamper_detection() {
        let key = b"shared-secret";
        for req in all_requests() {
            let mut bytes = encode_request(&req, &Principal::new("mgr"), 1, Some(key));
            assert!(decode_request(&bytes, Some(key)).is_ok());
            // Wrong key fails.
            assert_eq!(decode_request(&bytes, Some(b"other")).unwrap_err(), RdsError::BadDigest);
            // Bit-flip in the payload fails.
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            assert!(matches!(
                decode_request(&bytes, Some(key)),
                Err(RdsError::BadDigest | RdsError::Codec(_))
            ));
        }
    }

    #[test]
    fn unauthenticated_receiver_accepts_keyed_messages() {
        // Digest present but receiver not verifying: still decodable.
        let req = RdsRequest::ListPrograms;
        let bytes = encode_request(&req, &Principal::new("m"), 2, Some(b"k"));
        assert!(decode_request(&bytes, None).is_ok());
    }

    #[test]
    fn keyed_receiver_rejects_unauthenticated_messages() {
        let req = RdsRequest::ListPrograms;
        let bytes = encode_request(&req, &Principal::new("m"), 2, None);
        assert_eq!(decode_request(&bytes, Some(b"k")).unwrap_err(), RdsError::BadDigest);
    }

    #[test]
    fn unknown_operation_tag_rejected() {
        // Hand-build a payload with op tag 15.
        let mut w = BerWriter::new();
        w.write_sequence(|w| {
            w.write_i64(RDS_VERSION);
            w.write_i64(1);
            w.write_octet_string(b"m");
            w.write_constructed(Tag::context(15), |_| {});
        });
        let bytes = seal(w.into_bytes(), None);
        assert_eq!(decode_request(&bytes, None).unwrap_err(), RdsError::UnknownOperation(15));
    }

    #[test]
    fn truncated_messages_rejected() {
        let bytes = encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 1, None);
        for cut in 1..bytes.len() {
            assert!(decode_request(&bytes[..cut], None).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn delegation_wire_cost_scales_with_source() {
        let small = delegation_wire_cost("dp", b"fn main() {}");
        let big = delegation_wire_cost("dp", &vec![b'x'; 10_000]);
        assert!(big > small + 9_000);
    }

    // ---- trace-context backward compatibility ----------------------------

    const TRACE: TraceContext = TraceContext { trace_id: 0x1122_3344_5566_7788, parent_span_id: 9 };

    /// The pre-trace sealer, reimplemented exactly as released: digest is
    /// empty or `MD5(key ‖ payload)`, nothing else in the field.
    fn old_seal(payload: Vec<u8>, key: Option<&[u8]>) -> Vec<u8> {
        let digest: Vec<u8> = match key {
            Some(k) => mbd_auth::keyed_digest(k, &payload).to_vec(),
            None => Vec::new(),
        };
        let mut w = BerWriter::new();
        w.write_sequence(|w| {
            w.write_octet_string(&digest);
            w.write_raw(&payload);
        });
        w.into_bytes()
    }

    /// The pre-trace unsealer, reimplemented exactly as released: a keyed
    /// receiver requires the digest field to be exactly 16 bytes.
    fn old_unseal(bytes: &[u8], key: Option<&[u8]>) -> Result<Vec<u8>, RdsError> {
        let mut r = BerReader::new(bytes);
        let (digest, payload) = r.read_sequence(|r| {
            let digest = r.read_octet_string()?.to_vec();
            let payload = r.read_raw_value()?.to_vec();
            Ok((digest, payload))
        })?;
        r.expect_end()?;
        if let Some(k) = key {
            let expected: [u8; 16] =
                digest.as_slice().try_into().map_err(|_| RdsError::BadDigest)?;
            if !mbd_auth::verify_keyed_digest(k, &payload, &expected) {
                return Err(RdsError::BadDigest);
            }
        }
        Ok(payload)
    }

    #[test]
    fn traced_requests_round_trip() {
        for key in [None, Some(b"shared-secret".as_slice())] {
            for req in all_requests() {
                let bytes = encode_request_traced(&req, &Principal::new("mgr"), 5, key, TRACE);
                let (decoded, principal, id, trace) = decode_request_traced(&bytes, key).unwrap();
                assert_eq!(decoded, req);
                assert_eq!(principal.handle(), "mgr");
                assert_eq!(id, 5);
                assert_eq!(trace, TRACE);
            }
        }
    }

    #[test]
    fn traced_responses_round_trip() {
        for key in [None, Some(b"shared-secret".as_slice())] {
            for resp in all_responses() {
                let bytes = encode_response_traced(&resp, 8, key, TRACE);
                let (decoded, id, trace) = decode_response_traced(&bytes, key).unwrap();
                assert_eq!(decoded, resp);
                assert_eq!(id, 8);
                assert_eq!(trace, TRACE);
            }
        }
    }

    #[test]
    fn unset_trace_is_byte_identical_to_legacy_frames() {
        for key in [None, Some(b"k".as_slice())] {
            for req in all_requests() {
                let principal = Principal::new("mgr");
                let legacy = encode_request(&req, &principal, 3, key);
                let traced =
                    encode_request_traced(&req, &principal, 3, key, TraceContext::default());
                assert_eq!(legacy, traced);
            }
        }
    }

    #[test]
    fn old_frames_decode_with_unset_trace() {
        // Old client → new server: legacy frames must decode and report
        // no trace, keyed or not.
        for key in [None, Some(b"k".as_slice())] {
            let payload = {
                let mut w = BerWriter::new();
                w.write_sequence(|w| {
                    w.write_i64(RDS_VERSION);
                    w.write_i64(11);
                    w.write_octet_string(b"mgr");
                    w.write_constructed(Tag::context(8), |_| {});
                });
                w.into_bytes()
            };
            let bytes = old_seal(payload, key);
            let (req, _, id, trace) = decode_request_traced(&bytes, key).unwrap();
            assert_eq!(req, RdsRequest::ListPrograms);
            assert_eq!(id, 11);
            assert!(!trace.is_set());
        }
    }

    #[test]
    fn old_unkeyed_decoder_accepts_traced_frames() {
        // New client → old server (no key): old receivers ignore the
        // digest field's content, so the trace suffix passes through.
        let req = RdsRequest::ListInstances;
        let bytes = encode_request_traced(&req, &Principal::new("m"), 4, None, TRACE);
        let payload = old_unseal(&bytes, None).unwrap();
        // The payload itself is unchanged legacy BER: the old request
        // decoder (today's, fed a re-sealed legacy frame) accepts it.
        let (decoded, _, id) = decode_request(&old_seal(payload, None), None).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(id, 4);
    }

    #[test]
    fn old_keyed_decoder_rejects_traced_frames() {
        // The documented gap: a 36-byte digest field fails the old
        // receiver's exact-16-byte check. Keyed fleets upgrade receivers
        // before enabling tracing on senders.
        let key = b"shared-secret";
        let bytes = encode_request_traced(
            &RdsRequest::ListPrograms,
            &Principal::new("m"),
            4,
            Some(key),
            TRACE,
        );
        assert_eq!(old_unseal(&bytes, Some(key)).unwrap_err(), RdsError::BadDigest);
        // Untraced frames from the new encoder still pass.
        let bytes = encode_request(&RdsRequest::ListPrograms, &Principal::new("m"), 4, Some(key));
        assert!(old_unseal(&bytes, Some(key)).is_ok());
    }

    #[test]
    fn trace_suffix_is_authenticated_when_keyed() {
        let key = b"shared-secret";
        let mut bytes = encode_request_traced(
            &RdsRequest::ListPrograms,
            &Principal::new("m"),
            4,
            Some(key),
            TRACE,
        );
        // Flip a bit inside the trace id (right after the magic marker).
        let magic_at = bytes
            .windows(TRACE_MAGIC.len())
            .position(|w| w == TRACE_MAGIC)
            .expect("traced frame carries the magic");
        bytes[magic_at + TRACE_MAGIC.len()] ^= 0x01;
        assert_eq!(decode_request_traced(&bytes, Some(key)).unwrap_err(), RdsError::BadDigest);
    }

    #[test]
    fn trace_rides_responses_too() {
        let bytes = encode_response_traced(&RdsResponse::Ok, 2, None, TRACE);
        assert!(old_unseal(&bytes, None).is_ok(), "old unkeyed receivers accept traced responses");
        let (_, _, trace) = decode_response_traced(&bytes, None).unwrap();
        assert_eq!(trace, TRACE);
    }
}
