use crate::retry::splitmix64;
use crate::{
    codec, AuditRecord, DpiId, DpiSummary, RdsError, RdsRequest, RdsResponse, RetryPolicy,
    TraceContext, Transport,
};
use ber::BerValue;
use mbd_auth::Principal;
use mbd_telemetry::{Counter, Telemetry};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Distinguishes clients constructed in the same wall-clock instant (or
/// after the clock fallback): each construction consumes one value, and
/// the seed mixes it in, so two clients can never share a trace-id
/// stream.
static CLIENT_SEQ: AtomicU64 = AtomicU64::new(1);

pub(crate) fn trace_seed() -> u64 {
    let wall = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    splitmix64(wall) ^ splitmix64(CLIENT_SEQ.fetch_add(1, Ordering::Relaxed))
}

/// A delegating manager's stub for one elastic process.
///
/// The client owns the request-id counter and the (optional) shared key;
/// every verb is a typed method over [`Transport::request`].
///
/// # Examples
///
/// ```no_run
/// use rds::{RdsClient, LoopbackTransport};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let transport = LoopbackTransport::new(|_: &[u8]| Vec::new());
/// let client = RdsClient::new(transport, "noc-mgr");
/// client.delegate("health", "fn health() { return 100; }")?;
/// let dpi = client.instantiate("health")?;
/// let v = client.invoke(dpi, "health", &[])?;
/// # Ok(())
/// # }
/// ```
pub struct RdsClient<T> {
    transport: T,
    principal: Principal,
    key: Option<Vec<u8>>,
    next_id: AtomicI64,
    trace_seed: u64,
    last_trace: AtomicU64,
    retry: RetryPolicy,
    retries: AtomicU64,
    retry_counter: Option<Counter>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for RdsClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdsClient")
            .field("transport", &self.transport)
            .field("principal", &self.principal)
            .field("authenticated", &self.key.is_some())
            .finish()
    }
}

impl<T: Transport> RdsClient<T> {
    /// Creates an unauthenticated client acting as `principal`.
    pub fn new(transport: T, principal: &str) -> RdsClient<T> {
        RdsClient {
            transport,
            principal: Principal::new(principal),
            key: None,
            next_id: AtomicI64::new(1),
            trace_seed: trace_seed(),
            last_trace: AtomicU64::new(0),
            retry: RetryPolicy::none(),
            retries: AtomicU64::new(0),
            retry_counter: None,
        }
    }

    /// Creates a client that signs requests with `key` (MD5 keyed digest).
    pub fn with_key(transport: T, principal: &str, key: Vec<u8>) -> RdsClient<T> {
        RdsClient {
            transport,
            principal: Principal::new(principal),
            key: Some(key),
            next_id: AtomicI64::new(1),
            trace_seed: trace_seed(),
            last_trace: AtomicU64::new(0),
            retry: RetryPolicy::none(),
            retries: AtomicU64::new(0),
            retry_counter: None,
        }
    }

    /// Installs a retry policy: delivery failures (transport errors,
    /// damaged responses, `Busy` sheds) are retried with the policy's
    /// backoff until its attempt or deadline budget runs out. Retries
    /// re-send the **identical encoded frame** — same request id and
    /// trace id — so a server with duplicate suppression replays the
    /// original response instead of re-executing the effect.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> RdsClient<T> {
        self.retry = policy;
        self
    }

    /// Counts this client's retries into `telemetry` as `rds.retries`
    /// (also readable via [`RdsClient::retries`]).
    #[must_use]
    pub fn instrument(mut self, telemetry: &Telemetry) -> RdsClient<T> {
        self.retry_counter = Some(telemetry.counter("rds.retries"));
        self
    }

    /// Re-sent frames since this client was created.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// This client's principal handle.
    pub fn principal(&self) -> &Principal {
        &self.principal
    }

    /// The underlying transport — e.g. to read a
    /// [`FaultTransport`](crate::FaultTransport)'s injection counters or
    /// a [`TcpTransport`](crate::TcpTransport)'s reconnect count.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The trace id of the most recent request this client sent (0
    /// before the first request). Correlate it with the server's
    /// telemetry spans, `mbdDpiAccounting` row, and audit journal.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace.load(Ordering::Relaxed)
    }

    /// A fresh non-zero trace id for request `id`.
    fn fresh_trace_id(&self, id: i64) -> u64 {
        let mixed = splitmix64(self.trace_seed ^ (id as u64).rotate_left(32));
        if mixed == 0 {
            1
        } else {
            mixed
        }
    }

    fn roundtrip(&self, req: &RdsRequest) -> Result<RdsResponse, RdsError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let trace = TraceContext { trace_id: self.fresh_trace_id(id), parent_span_id: 0 };
        self.last_trace.store(trace.trace_id, Ordering::Relaxed);
        // Encoded once: every attempt re-sends these exact bytes, so the
        // request id and trace id are stable across retries and the
        // server's dedup cache can recognize a replay.
        let bytes =
            codec::encode_request_traced(req, &self.principal, id, self.key.as_deref(), trace);
        let started = Instant::now();
        let mut attempt = 1u32;
        loop {
            match self.exchange(&bytes, id) {
                Ok(resp) => return Ok(resp),
                Err(err) => {
                    let out_of_attempts = attempt >= self.retry.max_attempts.max(1);
                    let expired = self.retry.deadline.is_some_and(|d| started.elapsed() >= d);
                    if out_of_attempts || expired || !RetryPolicy::is_retryable(&err) {
                        return Err(err);
                    }
                    let backoff = self.retry.backoff_for(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(counter) = &self.retry_counter {
                        counter.inc();
                    }
                }
            }
        }
    }

    /// One send/receive of an already-encoded frame.
    fn exchange(&self, bytes: &[u8], id: i64) -> Result<RdsResponse, RdsError> {
        let resp_bytes = self.transport.request(bytes)?;
        let (resp, resp_id, _echo) =
            codec::decode_response_traced(&resp_bytes, self.key.as_deref())?;
        if let RdsResponse::Error { code, message } = resp {
            return Err(RdsError::Remote { code, message });
        }
        if resp_id != id {
            return Err(RdsError::RequestIdMismatch { expected: id, found: resp_id });
        }
        Ok(resp)
    }

    fn expect_ok(&self, req: &RdsRequest) -> Result<(), RdsError> {
        match self.roundtrip(req)? {
            RdsResponse::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Delegates DPL source to the server's repository as `dp_name`.
    ///
    /// # Errors
    ///
    /// `Remote(TranslationFailed)` if the server's translator rejects the
    /// program; transport/codec errors otherwise.
    pub fn delegate(&self, dp_name: &str, source: &str) -> Result<(), RdsError> {
        self.expect_ok(&RdsRequest::DelegateProgram {
            dp_name: dp_name.to_string(),
            language: "dpl".to_string(),
            source: source.as_bytes().to_vec(),
        })
    }

    /// Removes `dp_name` from the repository.
    ///
    /// # Errors
    ///
    /// `Remote(NoSuchProgram)` if absent.
    pub fn delete(&self, dp_name: &str) -> Result<(), RdsError> {
        self.expect_ok(&RdsRequest::DeleteProgram { dp_name: dp_name.to_string() })
    }

    /// Creates an instance of `dp_name` and returns its id.
    ///
    /// # Errors
    ///
    /// `Remote(NoSuchProgram)` if the dp is absent.
    pub fn instantiate(&self, dp_name: &str) -> Result<DpiId, RdsError> {
        match self.roundtrip(&RdsRequest::Instantiate { dp_name: dp_name.to_string() })? {
            RdsResponse::Instantiated { dpi } => Ok(dpi),
            other => Err(unexpected(&other)),
        }
    }

    /// Invokes `entry` on `dpi` and returns its value.
    ///
    /// # Errors
    ///
    /// `Remote(RuntimeFault)` if the invocation faulted or exceeded its
    /// budget; `Remote(BadState)` if the dpi is suspended/terminated.
    pub fn invoke(&self, dpi: DpiId, entry: &str, args: &[BerValue]) -> Result<BerValue, RdsError> {
        let req = RdsRequest::Invoke { dpi, entry: entry.to_string(), args: args.to_vec() };
        match self.roundtrip(&req)? {
            RdsResponse::Result { value } => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// Suspends `dpi`.
    ///
    /// # Errors
    ///
    /// `Remote(BadState)` unless the dpi is ready.
    pub fn suspend(&self, dpi: DpiId) -> Result<(), RdsError> {
        self.expect_ok(&RdsRequest::Suspend { dpi })
    }

    /// Resumes `dpi`.
    ///
    /// # Errors
    ///
    /// `Remote(BadState)` unless the dpi is suspended.
    pub fn resume(&self, dpi: DpiId) -> Result<(), RdsError> {
        self.expect_ok(&RdsRequest::Resume { dpi })
    }

    /// Terminates `dpi`.
    ///
    /// # Errors
    ///
    /// `Remote(NoSuchInstance)` if it never existed.
    pub fn terminate(&self, dpi: DpiId) -> Result<(), RdsError> {
        self.expect_ok(&RdsRequest::Terminate { dpi })
    }

    /// Posts an asynchronous message to `dpi`'s mailbox.
    ///
    /// # Errors
    ///
    /// `Remote(NoSuchInstance)` / `Remote(BadState)`.
    pub fn send_message(&self, dpi: DpiId, payload: &[u8]) -> Result<(), RdsError> {
        self.expect_ok(&RdsRequest::SendMessage { dpi, payload: payload.to_vec() })
    }

    /// Serializes a *suspended* dpi into a transferable checkpoint blob
    /// (install it on another server with [`RdsClient::restore`]).
    ///
    /// # Errors
    ///
    /// `Remote(BadState)` unless the dpi is suspended,
    /// `Remote(NoSuchInstance)`.
    pub fn checkpoint(&self, dpi: DpiId) -> Result<Vec<u8>, RdsError> {
        match self.roundtrip(&RdsRequest::Checkpoint { dpi })? {
            RdsResponse::Checkpointed { blob } => Ok(blob),
            other => Err(unexpected(&other)),
        }
    }

    /// Installs a checkpoint blob as a suspended dpi; resume it to
    /// continue the agent where the source server left off.
    ///
    /// # Errors
    ///
    /// `Remote(BadState)` on a reused nonce or an occupied dpi id,
    /// `Remote(TranslationFailed)` on an undecodable blob.
    pub fn restore(&self, blob: &[u8]) -> Result<DpiId, RdsError> {
        match self.roundtrip(&RdsRequest::Restore { blob: blob.to_vec() })? {
            RdsResponse::Instantiated { dpi } => Ok(dpi),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists the dp names stored in the repository.
    ///
    /// # Errors
    ///
    /// Transport/codec errors.
    pub fn list_programs(&self) -> Result<Vec<String>, RdsError> {
        match self.roundtrip(&RdsRequest::ListPrograms)? {
            RdsResponse::Programs { names } => Ok(names),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists instances with their states.
    ///
    /// # Errors
    ///
    /// Transport/codec errors.
    pub fn list_instances(&self) -> Result<Vec<DpiSummary>, RdsError> {
        match self.roundtrip(&RdsRequest::ListInstances)? {
            RdsResponse::Instances { instances } => Ok(instances),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads up to `max_records` of the newest audit-journal records
    /// (oldest first).
    ///
    /// # Errors
    ///
    /// `Remote(AccessDenied)` without `list` rights; transport/codec
    /// errors otherwise.
    pub fn read_journal(&self, max_records: u32) -> Result<Vec<AuditRecord>, RdsError> {
        match self.roundtrip(&RdsRequest::ReadJournal { max_records })? {
            RdsResponse::Journal { records } => Ok(records),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads a retained span tree (`trace_id` 0 = the most recently
    /// retained, anomalous trees first) and the VM profiler's folded
    /// stacks (`dpi` 0 = all profiled instances). Returns the whole
    /// [`RdsResponse::Profile`] payload as
    /// `(trace_id, kept, spans, stacks)`.
    ///
    /// # Errors
    ///
    /// `Remote(AccessDenied)` without `list` rights; transport/codec
    /// errors otherwise.
    #[allow(clippy::type_complexity)]
    pub fn read_profile(
        &self,
        trace_id: u64,
        dpi: u64,
    ) -> Result<(u64, String, Vec<crate::SpanRecord>, Vec<String>), RdsError> {
        match self.roundtrip(&RdsRequest::ReadProfile { trace_id, dpi })? {
            RdsResponse::Profile { trace_id, kept, spans, stacks } => {
                Ok((trace_id, kept, spans, stacks))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Reads retained metrics history: series whose names match the
    /// `*`-glob `pattern` (empty = all), restricted to the trailing
    /// `range_s` seconds (0 = everything) at ring resolution `res_s`
    /// (1, 10 or 60). Returns the whole [`RdsResponse::Metrics`]
    /// payload as `(now_s, series, alerts)`.
    ///
    /// # Errors
    ///
    /// `Remote(AccessDenied)` without `list` rights; transport/codec
    /// errors otherwise.
    #[allow(clippy::type_complexity)]
    pub fn read_metrics(
        &self,
        pattern: &str,
        range_s: u32,
        res_s: u32,
    ) -> Result<(u64, Vec<crate::MetricSeries>, Vec<crate::AlertStatus>), RdsError> {
        let req = RdsRequest::ReadMetrics { pattern: pattern.to_string(), range_s, res_s };
        match self.roundtrip(&req)? {
            RdsResponse::Metrics { now_s, series, alerts } => Ok((now_s, series, alerts)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &RdsResponse) -> RdsError {
    RdsError::Transport { message: format!("unexpected response variant {:?}", resp.op_tag()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorCode, LoopbackTransport, RdsHandler, RdsServer};
    use std::sync::Arc;

    fn demo_server() -> Arc<RdsServer<impl RdsHandler + Send + Sync>> {
        Arc::new(RdsServer::open(|_p: &Principal, req: RdsRequest| match req {
            RdsRequest::DelegateProgram { dp_name, .. } if dp_name == "bad" => RdsResponse::Error {
                code: ErrorCode::TranslationFailed,
                message: "rejected".to_string(),
            },
            RdsRequest::DelegateProgram { .. } => RdsResponse::Ok,
            RdsRequest::Instantiate { .. } => RdsResponse::Instantiated { dpi: DpiId(5) },
            RdsRequest::Invoke { args, .. } => {
                RdsResponse::Result { value: BerValue::Integer(args.len() as i64) }
            }
            RdsRequest::ListPrograms => RdsResponse::Programs { names: vec!["dp".to_string()] },
            RdsRequest::ListInstances => RdsResponse::Instances { instances: vec![] },
            _ => RdsResponse::Ok,
        }))
    }

    fn client_for(
        server: Arc<RdsServer<impl RdsHandler + Send + Sync + 'static>>,
    ) -> RdsClient<LoopbackTransport> {
        let transport = LoopbackTransport::new(move |bytes: &[u8]| server.process(bytes));
        RdsClient::new(transport, "mgr")
    }

    #[test]
    fn full_verb_round_trip() {
        let client = client_for(demo_server());
        client.delegate("dp", "fn main() {}").unwrap();
        let dpi = client.instantiate("dp").unwrap();
        assert_eq!(dpi, DpiId(5));
        let v = client.invoke(dpi, "main", &[BerValue::Integer(1), BerValue::Null]).unwrap();
        assert_eq!(v, BerValue::Integer(2));
        client.suspend(dpi).unwrap();
        client.resume(dpi).unwrap();
        client.send_message(dpi, b"hello").unwrap();
        client.terminate(dpi).unwrap();
        client.delete("dp").unwrap();
        assert_eq!(client.list_programs().unwrap(), vec!["dp".to_string()]);
        assert!(client.list_instances().unwrap().is_empty());
    }

    #[test]
    fn remote_errors_surface_typed() {
        let client = client_for(demo_server());
        let err = client.delegate("bad", "###").unwrap_err();
        assert!(matches!(err, RdsError::Remote { code: ErrorCode::TranslationFailed, .. }));
    }

    #[test]
    fn request_ids_increment_across_calls() {
        let client = client_for(demo_server());
        // Two calls must both succeed: ids must match per call.
        client.list_programs().unwrap();
        client.list_programs().unwrap();
    }

    #[test]
    fn keyed_client_against_keyed_server() {
        let server = Arc::new(RdsServer::with_policy(
            |_p: &Principal, _req: RdsRequest| RdsResponse::Ok,
            mbd_auth::Acl::allow_by_default(),
            Some(b"secret".to_vec()),
        ));
        let s2 = Arc::clone(&server);
        let transport = LoopbackTransport::new(move |bytes: &[u8]| s2.process(bytes));
        let client = RdsClient::with_key(transport, "mgr", b"secret".to_vec());
        client.delegate("dp", "x").unwrap();

        // A client with the wrong key cannot even read the error response.
        let s3 = Arc::clone(&server);
        let transport = LoopbackTransport::new(move |bytes: &[u8]| s3.process(bytes));
        let bad = RdsClient::with_key(transport, "mgr", b"wrong".to_vec());
        assert!(matches!(
            bad.delegate("dp", "x").unwrap_err(),
            RdsError::BadDigest | RdsError::Remote { .. }
        ));
    }

    #[test]
    fn every_request_carries_a_fresh_nonzero_trace_id() {
        let client = client_for(demo_server());
        assert_eq!(client.last_trace_id(), 0, "no request sent yet");
        client.list_programs().unwrap();
        let first = client.last_trace_id();
        client.list_programs().unwrap();
        let second = client.last_trace_id();
        assert_ne!(first, 0);
        assert_ne!(second, 0);
        assert_ne!(first, second, "each request gets its own trace id");
    }

    #[test]
    fn read_journal_round_trips() {
        let record = crate::AuditRecord {
            seq: 9,
            ticks: 100,
            trace_id: 0xFEED,
            principal: "mgr".to_string(),
            verb: "invoke".to_string(),
            dpi: 2,
            ok: true,
            detail: String::new(),
        };
        let rec = record.clone();
        let server = Arc::new(RdsServer::open(move |_: &Principal, req: RdsRequest| match req {
            RdsRequest::ReadJournal { max_records } => {
                assert_eq!(max_records, 16);
                RdsResponse::Journal { records: vec![rec.clone()] }
            }
            _ => RdsResponse::Ok,
        }));
        let client = client_for(server);
        assert_eq!(client.read_journal(16).unwrap(), vec![record]);
    }

    /// A transport that fails the first `failures` requests, then
    /// delegates to a demo server.
    fn flaky_transport(
        failures: u64,
        server: Arc<RdsServer<impl RdsHandler + Send + Sync + 'static>>,
    ) -> LoopbackTransport {
        use std::sync::atomic::AtomicU64;
        let remaining = AtomicU64::new(failures);
        LoopbackTransport::new(move |bytes: &[u8]| {
            if remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                panic!("simulated transport failure");
            }
            server.process(bytes)
        })
    }

    /// LoopbackTransport propagates handler panics as panics, so wrap it
    /// to surface them as transport errors instead.
    struct Catching(LoopbackTransport);
    impl Transport for Catching {
        fn request(&self, bytes: &[u8]) -> Result<Vec<u8>, RdsError> {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.0.request(bytes)))
                .unwrap_or_else(|_| Err(RdsError::Transport { message: "link failed".to_string() }))
        }
    }

    fn fast_retry(attempts: u32) -> crate::RetryPolicy {
        crate::RetryPolicy {
            max_attempts: attempts,
            base_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
            deadline: None,
            jitter_seed: 1,
        }
    }

    #[test]
    fn retry_policy_survives_transient_transport_failures() {
        let t = Catching(flaky_transport(2, demo_server()));
        let client = RdsClient::new(t, "mgr").with_retry(fast_retry(4));
        assert_eq!(client.list_programs().unwrap(), vec!["dp".to_string()]);
        assert_eq!(client.retries(), 2, "two failures cost two retries");
    }

    #[test]
    fn attempts_are_bounded() {
        let t = Catching(flaky_transport(10, demo_server()));
        let client = RdsClient::new(t, "mgr").with_retry(fast_retry(3));
        assert!(matches!(client.list_programs().unwrap_err(), RdsError::Transport { .. }));
        assert_eq!(client.retries(), 2, "3 attempts = first try + 2 retries");
    }

    #[test]
    fn remote_errors_are_not_retried() {
        let client = client_for(demo_server());
        let client = client.with_retry(fast_retry(5));
        assert!(matches!(
            client.delegate("bad", "###").unwrap_err(),
            RdsError::Remote { code: ErrorCode::TranslationFailed, .. }
        ));
        assert_eq!(client.retries(), 0, "an authoritative answer is final");
    }

    #[test]
    fn an_expired_deadline_stops_retrying() {
        let t = Catching(flaky_transport(10, demo_server()));
        let policy =
            crate::RetryPolicy { deadline: Some(std::time::Duration::ZERO), ..fast_retry(5) };
        let client = RdsClient::new(t, "mgr").with_retry(policy);
        assert!(client.list_programs().is_err());
        assert_eq!(client.retries(), 0, "deadline expired before the first retry");
    }

    #[test]
    fn retries_reach_shared_telemetry() {
        let tel = mbd_telemetry::Telemetry::new();
        let t = Catching(flaky_transport(1, demo_server()));
        let client = RdsClient::new(t, "mgr").with_retry(fast_retry(4)).instrument(&tel);
        client.list_programs().unwrap();
        assert_eq!(tel.snapshot().counter("rds.retries"), Some(1));
    }

    #[test]
    fn retries_preserve_request_and_trace_ids() {
        use parking_lot::Mutex;
        // Record every frame the transport carries; fail the first one.
        let frames: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&frames);
        let server = demo_server();
        let t = Catching(LoopbackTransport::new(move |bytes: &[u8]| {
            seen.lock().push(bytes.to_vec());
            if seen.lock().len() == 1 {
                panic!("first delivery lost");
            }
            server.process(bytes)
        }));
        let client = RdsClient::new(t, "mgr").with_retry(fast_retry(3));
        client.list_programs().unwrap();
        let frames = frames.lock();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], frames[1], "the retry re-sends the identical frame");
    }

    #[test]
    fn concurrent_clients_mint_distinct_trace_streams() {
        // Even when constructed back-to-back (same wall-clock nanosecond
        // on a coarse clock), the process-wide counter keeps seeds apart.
        let a = client_for(demo_server());
        let b = client_for(demo_server());
        a.list_programs().unwrap();
        b.list_programs().unwrap();
        assert_ne!(a.last_trace_id(), b.last_trace_id());
    }

    #[test]
    fn list_instances_round_trips_through_real_server() {
        use crate::DpiState;
        let server = Arc::new(RdsServer::open(|_: &Principal, req: RdsRequest| match req {
            RdsRequest::ListInstances => RdsResponse::Instances {
                instances: vec![DpiSummary {
                    id: DpiId(3),
                    dp_name: "health".to_string(),
                    state: DpiState::Running,
                }],
            },
            _ => RdsResponse::Ok,
        }));
        let client = client_for(server);
        let list = client.list_instances().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].state, DpiState::Running);
    }
}
