//! Property tests for the VDL: render/reparse fidelity, parser
//! robustness, and evaluation safety over arbitrary stores.

use ber::BerValue;
use proptest::prelude::*;
use snmp::MibStore;
use vdl::{parse_view, smi};

/// A structured generator of valid view texts.
fn arb_view_text() -> impl Strategy<Value = String> {
    let col = 1u32..6;
    let cmp = prop_oneof![Just(">"), Just("<"), Just("=="), Just(">="), Just("<="), Just("!=")];
    (
        "[a-z][a-z0-9_]{0,10}",
        col.clone(),
        cmp,
        -1000i64..1000,
        proptest::collection::vec(1u32..6, 1..4),
        any::<bool>(),
    )
        .prop_map(|(name, wcol, op, lit, sel_cols, aggregate)| {
            let mut out = format!("view {name}\nfrom t = 1.3.6.1.4.1.77.1\n");
            out.push_str(&format!("where t.{wcol} {op} {lit}\n"));
            if aggregate {
                let items: Vec<String> =
                    sel_cols.iter().map(|c| format!("sum(t.{c}) as s{c}")).collect();
                out.push_str(&format!("select {}, count() as n\n", items.join(", ")));
            } else {
                let items: Vec<String> =
                    sel_cols.iter().map(|c| format!("t.{c} as c{c}")).collect();
                out.push_str(&format!("select {}\n", items.join(", ")));
            }
            out
        })
}

fn arb_store() -> impl Strategy<Value = MibStore> {
    proptest::collection::vec((1u32..6, 1u32..20, any::<i32>()), 0..40).prop_map(|cells| {
        let store = MibStore::new();
        let entry: ber::Oid = "1.3.6.1.4.1.77.1".parse().unwrap();
        for (col, row, v) in cells {
            let _ = store.set_scalar(entry.child(col).child(row), BerValue::Integer(i64::from(v)));
        }
        store
    })
}

proptest! {
    #[test]
    fn generated_views_parse_and_render_round_trip(text in arb_view_text()) {
        let view = parse_view(&text).expect("generated views are valid");
        let rendered = smi::to_vdl_text(&view);
        let reparsed = parse_view(&rendered).expect("rendered views reparse");
        prop_assert_eq!(&reparsed.name, &view.name);
        prop_assert_eq!(reparsed.select.len(), view.select.len());
        prop_assert_eq!(&reparsed.where_clause, &view.where_clause);
        prop_assert_eq!(&reparsed.group_by, &view.group_by);
    }

    #[test]
    fn parser_never_panics(text in "\\PC{0,300}") {
        let _ = parse_view(&text);
    }

    #[test]
    fn evaluation_never_panics_and_respects_projection_arity(
        text in arb_view_text(),
        store in arb_store(),
    ) {
        let mcva = vdl::Mcva::new(store);
        mcva.define("v", &text).expect("valid view");
        // Integer-only stores cannot type-fault these comparisons.
        let result = mcva.evaluate("v").expect("evaluates");
        let view = parse_view(&text).expect("valid");
        for row in &result.rows {
            prop_assert_eq!(row.len(), view.select.len());
        }
    }

    #[test]
    fn where_clause_filters_consistently(store in arb_store(), threshold in -500i64..500) {
        let mcva = vdl::Mcva::new(store);
        mcva.define(
            "above",
            &format!("view above from t = 1.3.6.1.4.1.77.1 where t.1 > {threshold} select t.1"),
        )
        .expect("valid");
        mcva.define("all", "view all from t = 1.3.6.1.4.1.77.1 select t.1")
            .expect("valid");
        let above = mcva.evaluate("above").expect("evaluates");
        let all = mcva.evaluate("all").expect("evaluates");
        // Every selected row is above threshold…
        for row in &above.rows {
            if let vdl::CellValue::Int(v) = row[0] {
                prop_assert!(v > threshold);
            }
        }
        // …and the counts agree with a manual filter of the full view.
        let expected = all
            .rows
            .iter()
            .filter(|r| matches!(r[0], vdl::CellValue::Int(v) if v > threshold))
            .count();
        prop_assert_eq!(above.rows.len(), expected);
    }

    #[test]
    fn smi_generation_never_panics_and_always_dwarfs_vdl(text in arb_view_text()) {
        let view = parse_view(&text).expect("valid");
        let vdl_size = smi::measure(&smi::to_vdl_text(&view));
        let smi_size = smi::measure(&smi::to_smi_spec(&view));
        prop_assert!(smi_size.lines > vdl_size.lines * 4);
    }
}
