//! VDL — the View Definition Language over SNMP MIBs.
//!
//! Chapter 5 of the thesis extends MbD with **MIB views**: computations
//! over MIB data — projections, selections, joins and aggregates —
//! evaluated *at the agent* by a delegated view-evaluation service, so a
//! manager retrieves one computed result instead of walking raw tables
//! across the network. Unlike the SMI-extension approach of Arai &
//! Yemini, the VDL leaves the SMI untouched: views are defined in a small
//! query language and compiled by the server.
//!
//! A view definition looks like:
//!
//! ```text
//! view suspicious_conns
//! from c = 1.3.6.1.2.1.6.13.1
//! where c.1 == 5 && c.5 < 1024
//! select c.4 as remote_addr, c.5 as remote_port
//! ```
//!
//! - `from` binds an alias to a MIB table (by its `Entry` OID); a second
//!   table may be joined with `join b = <oid> on <expr>`.
//! - `where` filters rows; `select` projects expressions (arithmetic,
//!   comparisons, `a.N` column refs, `index(a)` for the row index).
//! - Aggregates `sum/avg/min/max/count` with optional `group by` turn the
//!   view into a summary — the "computations over MIB data" of the paper;
//!   `order by <output-column> [desc]` and `limit N` give top-N views
//!   (e.g. the heaviest-dropping virtual circuits of an ATM switch).
//!
//! [`Mcva`] (the *MIB Computations of Views Agent*) stores compiled views,
//! evaluates them on demand — optionally against an instantaneous
//! [snapshot](snmp::MibStore::snapshot) for transient phenomena — and can
//! **materialize** results back into the MIB as v-mib objects so legacy
//! SNMP managers can read computed views with plain `Get`.
//!
//! [`smi`] generates the equivalent SMI-extension specification text for a
//! view, reproducing the thesis's spec-economy comparison (its Figure 5.10
//! vs 5.19).
//!
//! # Examples
//!
//! ```
//! use snmp::MibStore;
//! use vdl::{Mcva, CellValue};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mib = MibStore::new();
//! snmp::mib2::install_atm_vc_table(&mib, 50)?;
//!
//! let mcva = Mcva::new(mib);
//! mcva.define(
//!     "dropping",
//!     "view dropping\n\
//!      from vc = 1.3.6.1.4.1.353.2.5.1\n\
//!      where vc.3 > 0\n\
//!      select vc.1 as id, vc.3 as dropped",
//! )?;
//! let result = mcva.evaluate("dropping")?;
//! assert_eq!(result.columns, vec!["id", "dropped"]);
//! for row in &result.rows {
//!     assert!(matches!(row[1], CellValue::Int(n) if n > 0));
//! }
//! # Ok(())
//! # }
//! ```

pub mod smi;

mod ast;
mod error;
mod eval;
mod mcva;
mod parser;
mod table;

pub use ast::{AggFunc, ViewDef};
pub use error::VdlError;
pub use eval::{CellValue, ViewResult};
pub use mcva::Mcva;
pub use parser::parse_view;
pub use table::{read_table, Row};
