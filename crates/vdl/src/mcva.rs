//! The MIB Computations of Views Agent.

use crate::eval::{evaluate, ViewResult};
use crate::{parse_view, VdlError, ViewDef};
use ber::{BerValue, Oid};
use parking_lot::RwLock;
use snmp::MibStore;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Root of the materialized-view subtree in the v-mib
/// (`enterprises.20100.2`).
pub fn vmib_root() -> Oid {
    "1.3.6.1.4.1.20100.2".parse().expect("static oid")
}

/// The **MCVA**: holds compiled view definitions over one MIB, evaluates
/// them on demand, takes *snapshot* evaluations for transient phenomena,
/// and can materialize results into the MIB as v-mib objects readable by
/// plain SNMP.
///
/// This is the specialized delegated agent of thesis §5: it runs next to
/// the data, so a manager pays one request per *view* instead of one
/// `GetNext` per *instance*.
#[derive(Clone)]
pub struct Mcva {
    mib: MibStore,
    views: Arc<RwLock<BTreeMap<String, CompiledView>>>,
}

#[derive(Debug, Clone)]
struct CompiledView {
    def: ViewDef,
    /// Arc assigned under [`vmib_root`] for materialization.
    vmib_arc: u32,
}

impl fmt::Debug for Mcva {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mcva").field("views", &self.views.read().len()).finish()
    }
}

impl Mcva {
    /// Creates an MCVA over `mib`.
    pub fn new(mib: MibStore) -> Mcva {
        Mcva { mib, views: Arc::new(RwLock::new(BTreeMap::new())) }
    }

    /// The MIB this agent computes over.
    pub fn mib(&self) -> &MibStore {
        &self.mib
    }

    /// Compiles and stores a view definition under `name`.
    ///
    /// # Errors
    ///
    /// [`VdlError::ViewExists`] on duplicates; parse/validation errors
    /// from [`parse_view`].
    pub fn define(&self, name: &str, source: &str) -> Result<(), VdlError> {
        let def = parse_view(source)?;
        let mut views = self.views.write();
        if views.contains_key(name) {
            return Err(VdlError::ViewExists { name: name.to_string() });
        }
        let vmib_arc = views.len() as u32 + 1;
        views.insert(name.to_string(), CompiledView { def, vmib_arc });
        Ok(())
    }

    /// Removes a view definition.
    ///
    /// # Errors
    ///
    /// [`VdlError::NoSuchView`] if absent.
    pub fn undefine(&self, name: &str) -> Result<(), VdlError> {
        self.views
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| VdlError::NoSuchView { name: name.to_string() })
    }

    /// Sorted names of defined views.
    pub fn names(&self) -> Vec<String> {
        self.views.read().keys().cloned().collect()
    }

    /// The parsed definition of `name`, if defined.
    pub fn definition(&self, name: &str) -> Option<ViewDef> {
        self.views.read().get(name).map(|c| c.def.clone())
    }

    fn compiled(&self, name: &str) -> Result<CompiledView, VdlError> {
        self.views
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| VdlError::NoSuchView { name: name.to_string() })
    }

    /// Evaluates `name` against the live MIB.
    ///
    /// # Errors
    ///
    /// [`VdlError::NoSuchView`] or evaluation errors.
    pub fn evaluate(&self, name: &str) -> Result<ViewResult, VdlError> {
        let c = self.compiled(name)?;
        evaluate(&c.def, &self.mib)
    }

    /// Evaluates `name` against an instantaneous snapshot of the tables
    /// it reads — the thesis's *view snapshots*, which capture transient
    /// states (e.g. short-lived TCP connections) that a remote walk would
    /// smear or miss.
    ///
    /// # Errors
    ///
    /// As for [`Mcva::evaluate`].
    pub fn evaluate_snapshot(&self, name: &str) -> Result<ViewResult, VdlError> {
        let c = self.compiled(name)?;
        // Snapshot exactly the subtrees the view touches, atomically per
        // table (the store snapshot is taken under one lock).
        let snap = MibStore::new();
        copy_subtree(&self.mib, &snap, &c.def.from.entry);
        if let Some((binding, _)) = &c.def.join {
            copy_subtree(&self.mib, &snap, &binding.entry);
        }
        evaluate(&c.def, &snap)
    }

    /// Evaluates `name` and writes the result into the MIB under
    /// `enterprises.20100.2.<view-arc>` as v-mib objects:
    /// `...<col>.<row>` cells plus `...0.0` holding the row count. Legacy
    /// SNMP managers can then read the computed view with plain Get/walk.
    ///
    /// Returns the root OID of the materialized view.
    ///
    /// # Errors
    ///
    /// As for [`Mcva::evaluate`].
    pub fn materialize(&self, name: &str) -> Result<Oid, VdlError> {
        let c = self.compiled(name)?;
        let result = evaluate(&c.def, &self.mib)?;
        let root = vmib_root().child(c.vmib_arc);
        // Clear any previous materialization.
        for (oid, _) in self.mib.walk(&root) {
            self.mib.remove(&oid);
        }
        self.mib
            .set_scalar(root.child(0).child(0), BerValue::Integer(result.rows.len() as i64))
            .ok();
        for (r, row) in result.rows.iter().enumerate() {
            for (col, cell) in row.iter().enumerate() {
                let oid = root.child(col as u32 + 1).child(r as u32 + 1);
                self.mib.remove(&oid);
                self.mib.set_scalar(oid, cell.to_ber()).ok();
            }
        }
        Ok(root)
    }
}

fn copy_subtree(from: &MibStore, to: &MibStore, prefix: &Oid) {
    let snap = from.snapshot(prefix);
    snap.for_each(|oid, value| {
        let _ = to.set_scalar(oid.clone(), value.clone());
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellValue;
    use snmp::mib2;

    fn mcva() -> Mcva {
        let mib = MibStore::new();
        mib2::install_interfaces(&mib, 3, 10_000_000).unwrap();
        mib.counter_add(&mib2::if_in_octets(1), 500).unwrap();
        mib.counter_add(&mib2::if_in_octets(3), 1500).unwrap();
        Mcva::new(mib)
    }

    const BUSY: &str = "view busy from i = 1.3.6.1.2.1.2.2.1 \
                        where i.10 > 100 select i.2 as name, i.10 as octets";

    #[test]
    fn define_evaluate_undefine() {
        let m = mcva();
        m.define("busy", BUSY).unwrap();
        assert_eq!(m.names(), vec!["busy".to_string()]);
        assert!(m.definition("busy").is_some());
        let r = m.evaluate("busy").unwrap();
        assert_eq!(r.rows.len(), 2);
        m.undefine("busy").unwrap();
        assert!(matches!(m.evaluate("busy"), Err(VdlError::NoSuchView { .. })));
        assert!(matches!(m.undefine("busy"), Err(VdlError::NoSuchView { .. })));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let m = mcva();
        m.define("busy", BUSY).unwrap();
        assert!(matches!(m.define("busy", BUSY), Err(VdlError::ViewExists { .. })));
    }

    #[test]
    fn bad_definition_rejected_at_define_time() {
        let m = mcva();
        assert!(m.define("bad", "view bad from a = 1.2.3 select z.1").is_err());
        assert!(m.names().is_empty());
    }

    #[test]
    fn live_evaluation_tracks_mib_changes() {
        let m = mcva();
        m.define("busy", BUSY).unwrap();
        assert_eq!(m.evaluate("busy").unwrap().rows.len(), 2);
        m.mib().counter_add(&mib2::if_in_octets(2), 9_999).unwrap();
        assert_eq!(m.evaluate("busy").unwrap().rows.len(), 3);
    }

    #[test]
    fn snapshot_evaluation_is_isolated_from_later_changes() {
        let m = mcva();
        m.define("busy", BUSY).unwrap();
        // Snapshot, then change the live MIB: snapshot result is computed
        // from the frozen copy regardless.
        let r1 = m.evaluate_snapshot("busy").unwrap();
        m.mib().counter_add(&mib2::if_in_octets(2), 9_999).unwrap();
        let r2 = m.evaluate_snapshot("busy").unwrap();
        assert_eq!(r1.rows.len(), 2);
        assert_eq!(r2.rows.len(), 3);
    }

    #[test]
    fn materialize_publishes_vmib_objects() {
        let m = mcva();
        m.define("busy", BUSY).unwrap();
        let root = m.materialize("busy").unwrap();
        assert_eq!(root, vmib_root().child(1));
        // Row count cell.
        assert_eq!(m.mib().get(&root.child(0).child(0)), Some(BerValue::Integer(2)));
        // First column, first row: "eth0".
        assert_eq!(m.mib().get(&root.child(1).child(1)), Some(BerValue::from("eth0")));
        // Second column, second row: 1500.
        assert_eq!(m.mib().get(&root.child(2).child(2)), Some(BerValue::Integer(1500)));
        // A plain SNMP agent can serve the view.
        let agent = snmp::agent::SnmpAgent::new("public", m.mib().clone());
        let mut mgr = snmp::manager::SnmpManager::new("public");
        let rows = mgr.walk(&root, |req| agent.handle(req)).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn rematerialization_clears_stale_rows() {
        let m = mcva();
        m.define("busy", BUSY).unwrap();
        let root = m.materialize("busy").unwrap();
        // Shrink the result set, re-materialize.
        m.mib().remove(&mib2::if_in_octets(3));
        let root2 = m.materialize("busy").unwrap();
        assert_eq!(root, root2);
        assert_eq!(m.mib().get(&root.child(0).child(0)), Some(BerValue::Integer(1)));
        assert_eq!(m.mib().get(&root.child(1).child(2)), None, "stale row must be gone");
    }

    #[test]
    fn snapshot_catches_transient_rows() {
        // A transient TCP connection: present at snapshot time, gone by
        // the time a slow poller would have walked the table.
        let mib = MibStore::new();
        let m = Mcva::new(mib.clone());
        m.define(
            "conns",
            "view conns from c = 1.3.6.1.2.1.6.13.1 \
             where c.1 == 5 select c.4 as remote",
        )
        .unwrap();
        let conn = mib2::TcpConn {
            state: mib2::tcp_state::ESTABLISHED,
            local: ([10, 0, 0, 1], 23),
            remote: ([172, 16, 0, 99], 40000),
        };
        mib2::install_tcp_conn(&mib, conn).unwrap();
        let snap = m.evaluate_snapshot("conns").unwrap();
        mib2::remove_tcp_conn(&mib, conn); // the intruder disconnects
        let live = m.evaluate("conns").unwrap();
        assert_eq!(snap.rows.len(), 1);
        assert_eq!(snap.rows[0][0], CellValue::Str("172.16.0.99".to_string()));
        assert!(live.rows.is_empty());
    }
}
