//! Generation of the equivalent SMI-extension specification for a view.
//!
//! The thesis contrasts its 5-line VDL definitions with the same view
//! expressed as SMI macro extensions (the Arai & Yemini approach), which
//! "results in very long and detailed specifications". This module
//! mechanically generates that long form — one `OBJECT-TYPE` macro per
//! output column plus the table/entry scaffolding and a `VIEW-EXPRESSION`
//! clause per computed expression — so the spec-economy comparison
//! (thesis Fig. 5.10 vs 5.19) can be reproduced quantitatively.

use crate::ast::{BinOp, Expr, SelectItem, ViewDef};

fn expr_text(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => v.to_string(),
        Expr::Str(s) => format!("\"{s}\""),
        Expr::Bool(b) => b.to_string(),
        Expr::Col { alias, col } => format!("{alias}.{col}"),
        Expr::Index { alias } => format!("index({alias})"),
        Expr::Neg(inner) => format!("-{}", expr_text(inner)),
        Expr::Not(inner) => format!("!{}", expr_text(inner)),
        Expr::Binary { op, lhs, rhs } => {
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {} {})", expr_text(lhs), op, expr_text(rhs))
        }
        Expr::Agg { func, expr } => match expr {
            Some(e) => format!("{func}({})", expr_text(e)),
            None => format!("{func}()"),
        },
    }
}

fn syntax_of(item: &SelectItem) -> &'static str {
    // A crude but deterministic inference, as an SMI author would pick.
    match &item.expr {
        Expr::Str(_) | Expr::Index { .. } => "DisplayString",
        Expr::Agg { .. } | Expr::Binary { .. } | Expr::Int(_) | Expr::Neg(_) => "Integer32",
        Expr::Float(_) => "DisplayString",
        Expr::Col { .. } => "Integer32",
        Expr::Bool(_) | Expr::Not(_) => "TruthValue",
    }
}

/// Renders `view` as an SMI-extension module specification.
pub fn to_smi_spec(view: &ViewDef) -> String {
    let v = &view.name;
    let mut out = String::new();
    let mut push = |s: &str| {
        out.push_str(s);
        out.push('\n');
    };
    push(&format!("{}-VIEW-MIB DEFINITIONS ::= BEGIN", v.to_uppercase()));
    push("");
    push("IMPORTS");
    push("    MODULE-IDENTITY, OBJECT-TYPE, Integer32");
    push("        FROM SNMPv2-SMI");
    push("    DisplayString, TruthValue");
    push("        FROM SNMPv2-TC");
    push("    viewExtensions");
    push("        FROM VIEW-EXTENSION-MIB;");
    push("");
    push(&format!("{v}ViewModule MODULE-IDENTITY"));
    push("    LAST-UPDATED \"9506010000Z\"");
    push("    ORGANIZATION \"Distributed Computing and Communications Lab\"");
    push("    CONTACT-INFO \"MbD server administrator\"");
    push("    DESCRIPTION");
    push(&format!("        \"SMI-extension definition of view {v},"));
    push(&format!("         derived from base table {}", view.from.entry));
    if let Some((b, on)) = &view.join {
        push(&format!("         joined with {} on {}", b.entry, expr_text(on)));
    }
    if let Some(w) = &view.where_clause {
        push(&format!("         restricted to rows satisfying {}", expr_text(w)));
    }
    push("        \"");
    push(&format!("    ::= {{ viewExtensions {} }}", 1));
    push("");
    push(&format!("{v}Table OBJECT-TYPE"));
    push(&format!("    SYNTAX      SEQUENCE OF {}Entry", capitalize(v)));
    push("    MAX-ACCESS  not-accessible");
    push("    STATUS      current");
    push("    DESCRIPTION");
    push(&format!("        \"The conceptual table holding view {v}.\""));
    push(&format!("    ::= {{ {v}ViewModule 1 }}"));
    push("");
    push(&format!("{v}Entry OBJECT-TYPE"));
    push(&format!("    SYNTAX      {}Entry", capitalize(v)));
    push("    MAX-ACCESS  not-accessible");
    push("    STATUS      current");
    push("    DESCRIPTION");
    push(&format!("        \"A row of view {v}.\""));
    push(&format!("    INDEX       {{ {v}RowIndex }}"));
    push(&format!("    ::= {{ {v}Table 1 }}"));
    push("");
    push(&format!("{}Entry ::= SEQUENCE {{", capitalize(v)));
    push(&format!("    {v}RowIndex    Integer32,"));
    for (i, item) in view.select.iter().enumerate() {
        let comma = if i + 1 == view.select.len() { "" } else { "," };
        push(&format!("    {v}{}    {}{}", capitalize(&item.name), syntax_of(item), comma));
    }
    push("}");
    push("");
    push(&format!("{v}RowIndex OBJECT-TYPE"));
    push("    SYNTAX      Integer32 (1..2147483647)");
    push("    MAX-ACCESS  not-accessible");
    push("    STATUS      current");
    push("    DESCRIPTION");
    push("        \"Arbitrary monotone row index assigned at evaluation time.\"");
    push(&format!("    ::= {{ {v}Entry 1 }}"));
    for (i, item) in view.select.iter().enumerate() {
        push("");
        push(&format!("{v}{} OBJECT-TYPE", capitalize(&item.name)));
        push(&format!("    SYNTAX      {}", syntax_of(item)));
        push("    MAX-ACCESS  read-only");
        push("    STATUS      current");
        push("    DESCRIPTION");
        push(&format!("        \"Column {} of view {v}.\"", item.name));
        push("    VIEW-EXPRESSION");
        push(&format!("        \"{}\"", expr_text(&item.expr)));
        if !view.group_by.is_empty() {
            let keys: Vec<String> = view.group_by.iter().map(expr_text).collect();
            push("    VIEW-GROUPING");
            push(&format!("        \"{}\"", keys.join(", ")));
        }
        push(&format!("    ::= {{ {v}Entry {} }}", i + 2));
    }
    push("");
    push("END");
    out
}

/// Renders `view` back as canonical VDL text (the compact form), for the
/// line/token comparison.
pub fn to_vdl_text(view: &ViewDef) -> String {
    let mut out = String::new();
    out.push_str(&format!("view {}\n", view.name));
    out.push_str(&format!("from {} = {}\n", view.from.alias, view.from.entry));
    if let Some((b, on)) = &view.join {
        out.push_str(&format!("join {} = {} on {}\n", b.alias, b.entry, expr_text(on)));
    }
    if let Some(w) = &view.where_clause {
        out.push_str(&format!("where {}\n", expr_text(w)));
    }
    let sels: Vec<String> =
        view.select.iter().map(|s| format!("{} as {}", expr_text(&s.expr), s.name)).collect();
    out.push_str(&format!("select {}\n", sels.join(", ")));
    if !view.group_by.is_empty() {
        let keys: Vec<String> = view.group_by.iter().map(expr_text).collect();
        out.push_str(&format!("group by {}\n", keys.join(", ")));
    }
    if !view.order_by.is_empty() {
        let keys: Vec<String> = view
            .order_by
            .iter()
            .map(|k| if k.descending { format!("{} desc", k.column) } else { k.column.clone() })
            .collect();
        out.push_str(&format!("order by {}\n", keys.join(", ")));
    }
    if let Some(n) = view.limit {
        out.push_str(&format!("limit {n}\n"));
    }
    out
}

/// Line/character statistics for the spec-economy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecSize {
    /// Non-blank lines.
    pub lines: usize,
    /// Total characters.
    pub chars: usize,
}

/// Measures a specification text.
pub fn measure(spec: &str) -> SpecSize {
    SpecSize { lines: spec.lines().filter(|l| !l.trim().is_empty()).count(), chars: spec.len() }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_view;

    const EXAMPLE: &str = "view busy\n\
                           from i = 1.3.6.1.2.1.2.2.1\n\
                           where i.10 > 1000000\n\
                           select i.2 as name, i.10 * 8 / i.5 as load\n";

    #[test]
    fn smi_spec_is_much_longer_than_vdl() {
        let view = parse_view(EXAMPLE).unwrap();
        let vdl = to_vdl_text(&view);
        let smi = to_smi_spec(&view);
        let vdl_size = measure(&vdl);
        let smi_size = measure(&smi);
        assert!(vdl_size.lines <= 5, "vdl should stay compact, got {}", vdl_size.lines);
        assert!(
            smi_size.lines >= 8 * vdl_size.lines,
            "smi ({}) should dwarf vdl ({})",
            smi_size.lines,
            vdl_size.lines
        );
    }

    #[test]
    fn vdl_round_trip_reparses() {
        let view = parse_view(EXAMPLE).unwrap();
        let text = to_vdl_text(&view);
        let reparsed = parse_view(&text).unwrap();
        assert_eq!(reparsed.name, view.name);
        assert_eq!(reparsed.select.len(), view.select.len());
        assert_eq!(reparsed.where_clause, view.where_clause);
    }

    #[test]
    fn smi_spec_contains_one_object_type_per_column_plus_scaffolding() {
        let view = parse_view(EXAMPLE).unwrap();
        let smi = to_smi_spec(&view);
        let count = smi.matches("OBJECT-TYPE").count();
        // IMPORTS mention + table + entry + row index + 2 columns.
        assert_eq!(count, 6);
        assert!(smi.contains("VIEW-EXPRESSION"));
        assert!(smi.contains("((i.10 * 8) / i.5)"));
    }

    #[test]
    fn grouped_views_emit_grouping_clause() {
        let view = parse_view(
            "view g from c = 1.3.6.1.2.1.6.13.1 select c.4 as r, count() as n group by c.4",
        )
        .unwrap();
        let smi = to_smi_spec(&view);
        assert!(smi.contains("VIEW-GROUPING"));
        let vdl = to_vdl_text(&view);
        assert!(vdl.contains("group by c.4"));
    }

    #[test]
    fn join_views_mention_both_tables() {
        let view = parse_view(
            "view j from a = 1.2.3 join b = 1.2.4 on index(a) == index(b) select a.1 as x",
        )
        .unwrap();
        let smi = to_smi_spec(&view);
        assert!(smi.contains("1.2.3"));
        assert!(smi.contains("1.2.4"));
        let vdl = to_vdl_text(&view);
        let reparsed = parse_view(&vdl).unwrap();
        assert!(reparsed.join.is_some());
    }

    #[test]
    fn measure_counts_nonblank_lines() {
        let s = measure("a\n\n b\n");
        assert_eq!(s.lines, 2);
        assert_eq!(s.chars, 6);
    }
}
