//! Evaluation of compiled views against a [`MibStore`].

use crate::ast::{AggFunc, BinOp, Expr, ViewDef};
use crate::table::{read_table, Row};
use crate::VdlError;
use ber::BerValue;
use snmp::MibStore;
use std::collections::BTreeMap;
use std::fmt;

/// A cell of a view result.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// Integer (SNMP INTEGER/Counter/Gauge/TimeTicks all normalize here).
    Int(i64),
    /// Float (ratios, averages).
    Float(f64),
    /// String (octet strings, OIDs, IP addresses, row indices).
    Str(String),
    /// Boolean (comparison results).
    Bool(bool),
    /// Missing column or absent value.
    Nil,
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellValue::Int(v) => write!(f, "{v}"),
            CellValue::Float(v) => write!(f, "{v:.4}"),
            CellValue::Str(s) => write!(f, "{s}"),
            CellValue::Bool(b) => write!(f, "{b}"),
            CellValue::Nil => write!(f, "-"),
        }
    }
}

impl CellValue {
    /// Total ordering for `order by`: Nil < Bool < numbers < Str (numbers
    /// compare across Int/Float; NaN sorts last among numbers).
    pub fn total_cmp(&self, other: &CellValue) -> std::cmp::Ordering {
        fn rank(v: &CellValue) -> u8 {
            match v {
                CellValue::Nil => 0,
                CellValue::Bool(_) => 1,
                CellValue::Int(_) | CellValue::Float(_) => 2,
                CellValue::Str(_) => 3,
            }
        }
        match (self, other) {
            (CellValue::Bool(a), CellValue::Bool(b)) => a.cmp(b),
            (CellValue::Str(a), CellValue::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap_or(f64::NAN), b.as_f64().unwrap_or(f64::NAN));
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            CellValue::Int(v) => Some(*v as f64),
            CellValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    fn from_ber(v: &BerValue) -> CellValue {
        match v {
            BerValue::Integer(i) => CellValue::Int(*i),
            BerValue::Counter32(c) | BerValue::Gauge32(c) | BerValue::TimeTicks(c) => {
                CellValue::Int(i64::from(*c))
            }
            BerValue::OctetString(b) | BerValue::Opaque(b) => {
                CellValue::Str(String::from_utf8_lossy(b).into_owned())
            }
            BerValue::Null => CellValue::Nil,
            BerValue::ObjectId(o) => CellValue::Str(o.to_string()),
            BerValue::IpAddress(a) => {
                CellValue::Str(format!("{}.{}.{}.{}", a[0], a[1], a[2], a[3]))
            }
            BerValue::Sequence(_) | BerValue::ContextConstructed(_, _) => CellValue::Nil,
        }
    }

    /// Converts to a BER value for materialization into a MIB.
    pub fn to_ber(&self) -> BerValue {
        match self {
            CellValue::Int(v) => BerValue::Integer(*v),
            CellValue::Float(v) => BerValue::OctetString(format!("{v}").into_bytes()),
            CellValue::Str(s) => BerValue::OctetString(s.clone().into_bytes()),
            CellValue::Bool(b) => BerValue::Integer(i64::from(*b)),
            CellValue::Nil => BerValue::Null,
        }
    }
}

/// The result of evaluating a view: named columns and rows of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewResult {
    /// Output column names, in select order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<CellValue>>,
}

impl ViewResult {
    /// Renders the result as an aligned text table (for examples/demos).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(CellValue::to_string).collect()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// One input row: per-alias table rows.
struct Scope<'a> {
    bindings: Vec<(&'a str, &'a Row)>,
}

impl<'a> Scope<'a> {
    fn row(&self, alias: &str) -> Result<&'a Row, VdlError> {
        self.bindings
            .iter()
            .find(|(a, _)| *a == alias)
            .map(|(_, r)| *r)
            .ok_or_else(|| VdlError::UnknownAlias { alias: alias.to_string() })
    }
}

fn type_err(msg: impl Into<String>) -> VdlError {
    VdlError::Type { message: msg.into() }
}

fn eval_scalar(e: &Expr, scope: &Scope<'_>) -> Result<CellValue, VdlError> {
    match e {
        Expr::Int(v) => Ok(CellValue::Int(*v)),
        Expr::Float(v) => Ok(CellValue::Float(*v)),
        Expr::Str(s) => Ok(CellValue::Str(s.clone())),
        Expr::Bool(b) => Ok(CellValue::Bool(*b)),
        Expr::Col { alias, col } => {
            let row = scope.row(alias)?;
            Ok(row.get(*col).map_or(CellValue::Nil, CellValue::from_ber))
        }
        Expr::Index { alias } => Ok(CellValue::Str(scope.row(alias)?.index_string())),
        Expr::Neg(inner) => match eval_scalar(inner, scope)? {
            CellValue::Int(v) => Ok(CellValue::Int(-v)),
            CellValue::Float(v) => Ok(CellValue::Float(-v)),
            other => Err(type_err(format!("cannot negate {other:?}"))),
        },
        Expr::Not(inner) => match eval_scalar(inner, scope)? {
            CellValue::Bool(b) => Ok(CellValue::Bool(!b)),
            other => Err(type_err(format!("cannot apply ! to {other:?}"))),
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_scalar(lhs, scope)?;
            let r = eval_scalar(rhs, scope)?;
            eval_binop(*op, l, r)
        }
        Expr::Agg { .. } => Err(VdlError::BadAggregation {
            message: "aggregate evaluated in scalar context".to_string(),
        }),
    }
}

fn eval_binop(op: BinOp, l: CellValue, r: CellValue) -> Result<CellValue, VdlError> {
    use CellValue::{Bool, Float, Int, Str};
    match op {
        BinOp::And | BinOp::Or => match (l, r) {
            (Bool(a), Bool(b)) => Ok(Bool(if op == BinOp::And { a && b } else { a || b })),
            (a, b) => Err(type_err(format!("logical op needs bools, got {a:?}, {b:?}"))),
        },
        BinOp::Eq | BinOp::Ne => {
            let eq = cells_equal(&l, &r);
            Ok(Bool(if op == BinOp::Eq { eq } else { !eq }))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            // Absent cells compare as unknown: the row simply fails the
            // predicate (SQL NULL semantics) instead of erroring, so views
            // stay robust over sparse tables.
            if l == CellValue::Nil || r == CellValue::Nil {
                return Ok(Bool(false));
            }
            let ord = match (&l, &r) {
                (Str(a), Str(b)) => a.cmp(b),
                _ => {
                    let (a, b) = (
                        l.as_f64().ok_or_else(|| type_err("ordering needs numbers or strings"))?,
                        r.as_f64().ok_or_else(|| type_err("ordering needs numbers or strings"))?,
                    );
                    a.partial_cmp(&b).ok_or_else(|| type_err("NaN is unordered"))?
                }
            };
            Ok(Bool(match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            }))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => match (&l, &r) {
            (Int(a), Int(b)) => {
                let a = *a;
                let b = *b;
                match op {
                    BinOp::Add => Ok(Int(a.wrapping_add(b))),
                    BinOp::Sub => Ok(Int(a.wrapping_sub(b))),
                    BinOp::Mul => Ok(Int(a.wrapping_mul(b))),
                    BinOp::Div => {
                        if b == 0 {
                            Err(VdlError::DivisionByZero)
                        } else {
                            Ok(Int(a.wrapping_div(b)))
                        }
                    }
                    _ => {
                        if b == 0 {
                            Err(VdlError::DivisionByZero)
                        } else {
                            Ok(Int(a.wrapping_rem(b)))
                        }
                    }
                }
            }
            _ => {
                let (a, b) = (
                    l.as_f64().ok_or_else(|| type_err("arithmetic needs numbers"))?,
                    r.as_f64().ok_or_else(|| type_err("arithmetic needs numbers"))?,
                );
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            return Err(VdlError::DivisionByZero);
                        }
                        a / b
                    }
                    _ => {
                        if b == 0.0 {
                            return Err(VdlError::DivisionByZero);
                        }
                        a % b
                    }
                };
                Ok(Float(v))
            }
        },
    }
}

fn cells_equal(l: &CellValue, r: &CellValue) -> bool {
    match (l, r) {
        (CellValue::Int(a), CellValue::Float(b)) | (CellValue::Float(b), CellValue::Int(a)) => {
            (*a as f64) == *b
        }
        _ => l == r,
    }
}

/// An aggregate accumulator.
struct Accumulator {
    func: AggFunc,
    count: u64,
    sum: f64,
    all_int: bool,
    min: Option<CellValue>,
    max: Option<CellValue>,
}

impl Accumulator {
    fn new(func: AggFunc) -> Accumulator {
        Accumulator { func, count: 0, sum: 0.0, all_int: true, min: None, max: None }
    }

    fn feed(&mut self, v: CellValue) -> Result<(), VdlError> {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                if !matches!(v, CellValue::Int(_)) {
                    self.all_int = false;
                }
                self.sum +=
                    v.as_f64().ok_or_else(|| type_err(format!("{} needs numbers", self.func)))?;
            }
            AggFunc::Min | AggFunc::Max => {
                let slot = if self.func == AggFunc::Min { &mut self.min } else { &mut self.max };
                match slot {
                    None => *slot = Some(v),
                    Some(cur) => {
                        let replace = match eval_binop(
                            if self.func == AggFunc::Min { BinOp::Lt } else { BinOp::Gt },
                            v.clone(),
                            cur.clone(),
                        )? {
                            CellValue::Bool(b) => b,
                            _ => false,
                        };
                        if replace {
                            *slot = Some(v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> CellValue {
        match self.func {
            AggFunc::Count => CellValue::Int(self.count as i64),
            AggFunc::Sum => {
                if self.all_int {
                    CellValue::Int(self.sum as i64)
                } else {
                    CellValue::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    CellValue::Nil
                } else {
                    CellValue::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.unwrap_or(CellValue::Nil),
            AggFunc::Max => self.max.unwrap_or(CellValue::Nil),
        }
    }
}

/// Evaluates an aggregate select expression over a group of scopes.
fn eval_aggregate(e: &Expr, group: &[Scope<'_>]) -> Result<CellValue, VdlError> {
    match e {
        Expr::Agg { func, expr } => {
            let mut acc = Accumulator::new(*func);
            for scope in group {
                let v = match expr {
                    Some(inner) => eval_scalar(inner, scope)?,
                    None => CellValue::Int(1),
                };
                if v == CellValue::Nil {
                    continue; // absent cells do not contribute
                }
                acc.feed(v)?;
            }
            Ok(acc.finish())
        }
        // Non-aggregate parts of a mixed expression take the value from
        // the group's first row (validated to be a group-by key).
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_aggregate(lhs, group)?;
            let r = eval_aggregate(rhs, group)?;
            eval_binop(*op, l, r)
        }
        Expr::Neg(inner) => match eval_aggregate(inner, group)? {
            CellValue::Int(v) => Ok(CellValue::Int(-v)),
            CellValue::Float(v) => Ok(CellValue::Float(-v)),
            other => Err(type_err(format!("cannot negate {other:?}"))),
        },
        Expr::Not(inner) => match eval_aggregate(inner, group)? {
            CellValue::Bool(b) => Ok(CellValue::Bool(!b)),
            other => Err(type_err(format!("cannot apply ! to {other:?}"))),
        },
        other => match group.first() {
            Some(scope) => eval_scalar(other, scope),
            None => Ok(CellValue::Nil),
        },
    }
}

/// Evaluates `view` against `mib`.
///
/// # Errors
///
/// Type errors, division by zero, or alias errors from the expression
/// evaluator.
pub fn evaluate(view: &ViewDef, mib: &MibStore) -> Result<ViewResult, VdlError> {
    let left_rows = read_table(mib, &view.from.entry);
    let columns: Vec<String> = view.select.iter().map(|s| s.name.clone()).collect();

    // Build the joined scope list.
    let mut scopes: Vec<Scope<'_>> = Vec::new();
    let right_rows;
    match &view.join {
        None => {
            for row in &left_rows {
                scopes.push(Scope { bindings: vec![(view.from.alias.as_str(), row)] });
            }
        }
        Some((binding, on)) => {
            right_rows = read_table(mib, &binding.entry);
            for l in &left_rows {
                for r in &right_rows {
                    let scope = Scope {
                        bindings: vec![(view.from.alias.as_str(), l), (binding.alias.as_str(), r)],
                    };
                    match eval_scalar(on, &scope)? {
                        CellValue::Bool(true) => scopes.push(scope),
                        CellValue::Bool(false) => {}
                        other => {
                            return Err(type_err(format!(
                                "join condition must be boolean, got {other:?}"
                            )))
                        }
                    }
                }
            }
        }
    }

    // Filter.
    if let Some(w) = &view.where_clause {
        let mut kept = Vec::with_capacity(scopes.len());
        for scope in scopes {
            match eval_scalar(w, &scope)? {
                CellValue::Bool(true) => kept.push(scope),
                CellValue::Bool(false) => {}
                other => {
                    return Err(type_err(format!("where clause must be boolean, got {other:?}")))
                }
            }
        }
        scopes = kept;
    }

    // Project.
    if !view.is_aggregate() {
        let mut rows = Vec::with_capacity(scopes.len());
        for scope in &scopes {
            let mut out = Vec::with_capacity(view.select.len());
            for item in &view.select {
                out.push(eval_scalar(&item.expr, scope)?);
            }
            rows.push(out);
        }
        order_and_limit(view, &columns, &mut rows);
        return Ok(ViewResult { columns, rows });
    }

    // Aggregate, with optional grouping.
    let groups: Vec<Vec<Scope<'_>>> = if view.group_by.is_empty() {
        vec![scopes]
    } else {
        let mut keyed: BTreeMap<String, Vec<Scope<'_>>> = BTreeMap::new();
        for scope in scopes {
            let mut key = String::new();
            for g in &view.group_by {
                key.push_str(&eval_scalar(g, &scope)?.to_string());
                key.push('\u{1f}');
            }
            keyed.entry(key).or_default().push(scope);
        }
        keyed.into_values().collect()
    };

    let mut rows = Vec::with_capacity(groups.len());
    for group in &groups {
        // A grouped view has no empty groups by construction; an
        // ungrouped aggregate over empty input still yields one summary
        // row (count() == 0).
        if group.is_empty() && !view.group_by.is_empty() {
            continue;
        }
        let mut out = Vec::with_capacity(view.select.len());
        for item in &view.select {
            out.push(eval_aggregate(&item.expr, group)?);
        }
        rows.push(out);
    }
    order_and_limit(view, &columns, &mut rows);
    Ok(ViewResult { columns, rows })
}

/// Applies the view's `order by` keys (stable sort, key priority left to
/// right) and `limit`.
fn order_and_limit(view: &ViewDef, columns: &[String], rows: &mut Vec<Vec<CellValue>>) {
    if !view.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = view
            .order_by
            .iter()
            .filter_map(|k| columns.iter().position(|c| c == &k.column).map(|i| (i, k.descending)))
            .collect();
        rows.sort_by(|a, b| {
            for &(idx, desc) in &keys {
                let ord = a[idx].total_cmp(&b[idx]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = view.limit {
        rows.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_view;
    use snmp::mib2;

    fn mib_with_ifs() -> MibStore {
        let mib = MibStore::new();
        mib2::install_interfaces(&mib, 4, 10_000_000).unwrap();
        for (i, octets) in [(1u32, 100u64), (2, 2_000_000), (3, 50), (4, 9_000_000)] {
            mib.counter_add(&mib2::if_in_octets(i), octets).unwrap();
        }
        mib.counter_add(&mib2::if_in_errors(2), 7).unwrap();
        mib
    }

    fn run(mib: &MibStore, src: &str) -> ViewResult {
        evaluate(&parse_view(src).unwrap(), mib).unwrap()
    }

    #[test]
    fn projection_and_selection() {
        let mib = mib_with_ifs();
        let r = run(
            &mib,
            "view busy from i = 1.3.6.1.2.1.2.2.1 where i.10 > 1000000 \
             select i.2 as name, i.10 as octets",
        );
        assert_eq!(r.columns, vec!["name", "octets"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], CellValue::Str("eth1".to_string()));
        assert_eq!(r.rows[1][1], CellValue::Int(9_000_000));
    }

    #[test]
    fn computed_columns() {
        let mib = mib_with_ifs();
        let r = run(
            &mib,
            "view load from i = 1.3.6.1.2.1.2.2.1 where i.1 == 2 \
             select i.10 * 8 / i.5 as load_x, i.14 as errs",
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], CellValue::Int(2_000_000 * 8 / 10_000_000));
        assert_eq!(r.rows[0][1], CellValue::Int(7));
    }

    #[test]
    fn aggregates_without_grouping() {
        let mib = mib_with_ifs();
        let r = run(
            &mib,
            "view totals from i = 1.3.6.1.2.1.2.2.1 \
             select sum(i.10) as total, count() as n, avg(i.10) as mean, \
             min(i.10) as lo, max(i.10) as hi",
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], CellValue::Int(100 + 2_000_000 + 50 + 9_000_000));
        assert_eq!(r.rows[0][1], CellValue::Int(4));
        assert_eq!(r.rows[0][2], CellValue::Float((100.0 + 2e6 + 50.0 + 9e6) / 4.0));
        assert_eq!(r.rows[0][3], CellValue::Int(50));
        assert_eq!(r.rows[0][4], CellValue::Int(9_000_000));
    }

    #[test]
    fn group_by_counts() {
        let mib = MibStore::new();
        // tcpConnTable with two remotes, 3 + 1 connections.
        for (port, remote) in [
            (1001u16, [10, 0, 0, 9]),
            (1002, [10, 0, 0, 9]),
            (1003, [10, 0, 0, 9]),
            (2001, [10, 0, 0, 7]),
        ] {
            mib2::install_tcp_conn(
                &mib,
                mib2::TcpConn {
                    state: mib2::tcp_state::ESTABLISHED,
                    local: ([192, 168, 0, 1], 22),
                    remote: (remote, port),
                },
            )
            .unwrap();
        }
        let r = run(
            &mib,
            "view per_remote from c = 1.3.6.1.2.1.6.13.1 \
             select c.4 as remote, count() as conns group by c.4",
        );
        assert_eq!(r.rows.len(), 2);
        // BTreeMap ordering: "10.0.0.7" < "10.0.0.9".
        assert_eq!(r.rows[0][0], CellValue::Str("10.0.0.7".to_string()));
        assert_eq!(r.rows[0][1], CellValue::Int(1));
        assert_eq!(r.rows[1][1], CellValue::Int(3));
    }

    #[test]
    fn join_correlates_tables() {
        let mib = mib_with_ifs();
        // A private "alarm" table keyed by ifIndex: row per alarmed if.
        let alarm_entry: ber::Oid = "1.3.6.1.4.1.99.1.1".parse().unwrap();
        mib.set_scalar(alarm_entry.child(1).child(2), BerValue::Integer(1)).unwrap();
        mib.set_scalar(alarm_entry.child(1).child(4), BerValue::Integer(1)).unwrap();
        let r = run(
            &mib,
            "view alarmed from a = 1.3.6.1.4.1.99.1.1 \
             join i = 1.3.6.1.2.1.2.2.1 on index(a) == index(i) \
             select i.2 as name, i.10 as octets",
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], CellValue::Str("eth1".to_string()));
        assert_eq!(r.rows[1][0], CellValue::Str("eth3".to_string()));
    }

    #[test]
    fn index_projection() {
        let mib = mib_with_ifs();
        let r = run(&mib, "view idx from i = 1.3.6.1.2.1.2.2.1 select index(i)");
        assert_eq!(r.rows[0][0], CellValue::Str("1".to_string()));
    }

    #[test]
    fn empty_table_gives_empty_result() {
        let mib = MibStore::new();
        let r = run(&mib, "view v from t = 1.3.9 select t.1");
        assert!(r.rows.is_empty());
        // Ungrouped aggregates over empty input yield one row of zeros/nil.
        let r = run(&mib, "view v from t = 1.3.9 select count() as n");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], CellValue::Int(0));
    }

    #[test]
    fn missing_column_is_nil_and_skipped_by_aggregates() {
        let mib = MibStore::new();
        let entry: ber::Oid = "1.3.6.1.4.1.5.1".parse().unwrap();
        mib.set_scalar(entry.child(1).child(1), BerValue::Integer(10)).unwrap();
        mib.set_scalar(entry.child(1).child(2), BerValue::Integer(20)).unwrap();
        mib.set_scalar(entry.child(2).child(1), BerValue::Integer(5)).unwrap(); // col 2 only on row 1
        let r = run(&mib, "view v from t = 1.3.6.1.4.1.5.1 select sum(t.2) as s, count() as n");
        assert_eq!(r.rows[0][0], CellValue::Int(5));
        assert_eq!(r.rows[0][1], CellValue::Int(2));
        let r = run(&mib, "view v from t = 1.3.6.1.4.1.5.1 select t.2");
        assert_eq!(r.rows[1][0], CellValue::Nil);
    }

    #[test]
    fn type_errors_reported() {
        let mib = mib_with_ifs();
        let err = evaluate(
            &parse_view("view v from i = 1.3.6.1.2.1.2.2.1 select i.2 + 1").unwrap(),
            &mib,
        )
        .unwrap_err();
        assert!(matches!(err, VdlError::Type { .. }));
        let err = evaluate(
            &parse_view("view v from i = 1.3.6.1.2.1.2.2.1 where i.10 select i.1").unwrap(),
            &mib,
        )
        .unwrap_err();
        assert!(matches!(err, VdlError::Type { .. }));
    }

    #[test]
    fn division_by_zero_reported() {
        let mib = mib_with_ifs();
        let err = evaluate(
            &parse_view("view v from i = 1.3.6.1.2.1.2.2.1 select i.10 / (i.1 - i.1)").unwrap(),
            &mib,
        )
        .unwrap_err();
        assert_eq!(err, VdlError::DivisionByZero);
    }

    #[test]
    fn table_rendering() {
        let mib = mib_with_ifs();
        let r = run(&mib, "view v from i = 1.3.6.1.2.1.2.2.1 where i.1 == 1 select i.2 as name");
        let s = r.to_table_string();
        assert!(s.contains("name"));
        assert!(s.contains("eth0"));
    }
}

#[cfg(test)]
mod order_limit_tests {
    use super::*;
    use crate::parse_view;
    use snmp::mib2;

    fn mib() -> MibStore {
        let m = MibStore::new();
        mib2::install_atm_vc_table(&m, 50).unwrap();
        m
    }

    fn run(mib: &MibStore, src: &str) -> ViewResult {
        evaluate(&parse_view(src).unwrap(), mib).unwrap()
    }

    #[test]
    fn top_n_droppers() {
        let m = mib();
        let r = run(
            &m,
            "view top from vc = 1.3.6.1.4.1.353.2.5.1 \
             select vc.1 as id, vc.3 as dropped order by dropped desc limit 5",
        );
        assert_eq!(r.rows.len(), 5);
        // Descending: each row's dropped >= the next.
        for pair in r.rows.windows(2) {
            assert_ne!(pair[0][1].total_cmp(&pair[1][1]), std::cmp::Ordering::Less);
        }
        // The top row is the true maximum of the whole table.
        let full = run(&m, "view all from vc = 1.3.6.1.4.1.353.2.5.1 select vc.3 as d");
        let max = full.rows.iter().map(|row| row[0].clone()).max_by(|a, b| a.total_cmp(b)).unwrap();
        assert_eq!(r.rows[0][1], max);
    }

    #[test]
    fn ascending_order_and_secondary_key() {
        let m = mib();
        let r = run(
            &m,
            "view v from vc = 1.3.6.1.4.1.353.2.5.1 \
             select vc.4 as qos, vc.1 as id order by qos asc, id desc",
        );
        for pair in r.rows.windows(2) {
            let q = pair[0][0].total_cmp(&pair[1][0]);
            assert_ne!(q, std::cmp::Ordering::Greater, "primary key ascending");
            if q == std::cmp::Ordering::Equal {
                assert_ne!(
                    pair[0][1].total_cmp(&pair[1][1]),
                    std::cmp::Ordering::Less,
                    "secondary key descending"
                );
            }
        }
    }

    #[test]
    fn limit_without_order_truncates() {
        let m = mib();
        let r = run(&m, "view v from vc = 1.3.6.1.4.1.353.2.5.1 select vc.1 limit 3");
        assert_eq!(r.rows.len(), 3);
        let r = run(&m, "view v from vc = 1.3.6.1.4.1.353.2.5.1 select vc.1 limit 0");
        assert!(r.rows.is_empty());
    }

    #[test]
    fn order_applies_to_grouped_views() {
        let m = mib();
        let r = run(
            &m,
            "view v from vc = 1.3.6.1.4.1.353.2.5.1 \
             select vc.4 as qos, count() as n group by vc.4 order by n desc limit 2",
        );
        assert_eq!(r.rows.len(), 2);
        assert_ne!(r.rows[0][1].total_cmp(&r.rows[1][1]), std::cmp::Ordering::Less);
    }

    #[test]
    fn unknown_order_column_rejected() {
        let err = parse_view("view v from t = 1.2.3 select t.1 as x order by ghost").unwrap_err();
        assert!(matches!(err, VdlError::Parse { .. }));
    }

    #[test]
    fn total_cmp_orders_across_types() {
        use std::cmp::Ordering;
        let vals = [
            CellValue::Nil,
            CellValue::Bool(false),
            CellValue::Bool(true),
            CellValue::Int(-5),
            CellValue::Float(1.5),
            CellValue::Int(2),
            CellValue::Str("a".to_string()),
        ];
        for pair in vals.windows(2) {
            assert_ne!(pair[0].total_cmp(&pair[1]), Ordering::Greater, "{pair:?}");
        }
        assert_eq!(CellValue::Int(2).total_cmp(&CellValue::Float(2.0)), Ordering::Equal);
    }
}
