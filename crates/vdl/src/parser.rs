//! Parser for the View Definition Language.
//!
//! ```text
//! view      := "view" IDENT from [join] [where] select [groupby]
//!              [orderby] [limit]
//! from      := "from" IDENT "=" OID
//! join      := "join" IDENT "=" OID "on" expr
//! where     := "where" expr
//! select    := "select" item ("," item)*
//! item      := expr ["as" IDENT]
//! groupby   := "group" "by" expr ("," expr)*
//! orderby   := "order" "by" IDENT ["asc"|"desc"] ("," IDENT ["asc"|"desc"])*
//! limit     := "limit" INT
//! expr      := C-like precedence over || && == != < <= > >= + - * / %
//!              with unary - !, parentheses, literals, alias.N column
//!              refs, index(alias), and sum/avg/min/max/count aggregates
//! ```

use crate::ast::*;
use crate::VdlError;
use ber::Oid;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Oid(Oid),
    ColRef(String, u32),
    LParen,
    RParen,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn err(&self, message: impl Into<String>) -> VdlError {
        VdlError::Parse { line: self.line, message: message.into() }
    }

    fn lex(mut self) -> Result<Vec<(Tok, u32)>, VdlError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos] as char;
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                ' ' | '\t' | '\r' => self.pos += 1,
                '#' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                '(' => self.push1(&mut out, Tok::LParen),
                ')' => self.push1(&mut out, Tok::RParen),
                ',' => self.push1(&mut out, Tok::Comma),
                '+' => self.push1(&mut out, Tok::Plus),
                '-' => self.push1(&mut out, Tok::Minus),
                '*' => self.push1(&mut out, Tok::Star),
                '/' => self.push1(&mut out, Tok::Slash),
                '%' => self.push1(&mut out, Tok::Percent),
                '=' => {
                    if self.peek2() == Some(b'=') {
                        out.push((Tok::Eq, self.line));
                        self.pos += 2;
                    } else {
                        self.push1(&mut out, Tok::Assign);
                    }
                }
                '!' => {
                    if self.peek2() == Some(b'=') {
                        out.push((Tok::Ne, self.line));
                        self.pos += 2;
                    } else {
                        self.push1(&mut out, Tok::Bang);
                    }
                }
                '<' => {
                    if self.peek2() == Some(b'=') {
                        out.push((Tok::Le, self.line));
                        self.pos += 2;
                    } else {
                        self.push1(&mut out, Tok::Lt);
                    }
                }
                '>' => {
                    if self.peek2() == Some(b'=') {
                        out.push((Tok::Ge, self.line));
                        self.pos += 2;
                    } else {
                        self.push1(&mut out, Tok::Gt);
                    }
                }
                '&' => {
                    if self.peek2() == Some(b'&') {
                        out.push((Tok::AndAnd, self.line));
                        self.pos += 2;
                    } else {
                        return Err(self.err("lone `&`"));
                    }
                }
                '|' => {
                    if self.peek2() == Some(b'|') {
                        out.push((Tok::OrOr, self.line));
                        self.pos += 2;
                    } else {
                        return Err(self.err("lone `|`"));
                    }
                }
                '"' => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                        if self.src[self.pos] == b'\n' {
                            return Err(self.err("newline in string"));
                        }
                        self.pos += 1;
                    }
                    if self.pos == self.src.len() {
                        return Err(self.err("unterminated string"));
                    }
                    let s = std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?
                        .to_string();
                    self.pos += 1;
                    out.push((Tok::Str(s), self.line));
                }
                c if c.is_ascii_digit() => {
                    let start = self.pos;
                    let mut dots = 0;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
                    {
                        if self.src[self.pos] == b'.' {
                            dots += 1;
                        }
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
                    let tok = match dots {
                        0 => Tok::Int(text.parse().map_err(|_| self.err("integer out of range"))?),
                        1 => Tok::Float(text.parse().map_err(|_| self.err("bad float"))?),
                        _ => Tok::Oid(text.parse().map_err(|_| self.err("malformed oid"))?),
                    };
                    out.push((tok, self.line));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    let word =
                        std::str::from_utf8(&self.src[start..self.pos]).expect("ident").to_string();
                    // `alias.N` column references.
                    if self.pos < self.src.len() && self.src[self.pos] == b'.' {
                        let save = self.pos;
                        self.pos += 1;
                        let dstart = self.pos;
                        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                            self.pos += 1;
                        }
                        if self.pos > dstart
                            && (self.pos == self.src.len() || self.src[self.pos] != b'.')
                        {
                            let col: u32 = std::str::from_utf8(&self.src[dstart..self.pos])
                                .expect("digits")
                                .parse()
                                .map_err(|_| self.err("column number out of range"))?;
                            out.push((Tok::ColRef(word, col), self.line));
                            continue;
                        }
                        self.pos = save;
                    }
                    out.push((Tok::Ident(word), self.line));
                }
                other => return Err(self.err(format!("unexpected character `{other}`"))),
            }
        }
        out.push((Tok::Eof, self.line));
        Ok(out)
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn push1(&mut self, out: &mut Vec<(Tok, u32)>, t: Tok) {
        out.push((t, self.line));
        self.pos += 1;
    }
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn err(&self, message: impl Into<String>) -> VdlError {
        VdlError::Parse { line: self.line(), message: message.into() }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<(), VdlError> {
        match self.bump() {
            Tok::Ident(w) if w == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found `{other:?}`"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(w) if w == kw)
    }

    fn ident(&mut self) -> Result<String, VdlError> {
        match self.bump() {
            Tok::Ident(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found `{other:?}`"))),
        }
    }

    fn oid(&mut self) -> Result<Oid, VdlError> {
        match self.bump() {
            Tok::Oid(o) => Ok(o),
            other => Err(self.err(format!("expected an OID, found `{other:?}`"))),
        }
    }

    fn binding(&mut self) -> Result<TableBinding, VdlError> {
        let alias = self.ident()?;
        match self.bump() {
            Tok::Assign => {}
            other => return Err(self.err(format!("expected `=`, found `{other:?}`"))),
        }
        let entry = self.oid()?;
        Ok(TableBinding { alias, entry })
    }

    fn view(&mut self) -> Result<ViewDef, VdlError> {
        self.keyword("view")?;
        let name = self.ident()?;
        self.keyword("from")?;
        let from = self.binding()?;
        let join = if self.is_keyword("join") {
            self.bump();
            let b = self.binding()?;
            self.keyword("on")?;
            let on = self.expr()?;
            Some((b, on))
        } else {
            None
        };
        let where_clause = if self.is_keyword("where") {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.keyword("select")?;
        let mut select = Vec::new();
        loop {
            let expr = self.expr()?;
            let name = if self.is_keyword("as") {
                self.bump();
                self.ident()?
            } else {
                default_name(&expr, select.len())
            };
            select.push(SelectItem { expr, name });
            if self.peek() == &Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        let mut group_by = Vec::new();
        if self.is_keyword("group") {
            self.bump();
            self.keyword("by")?;
            loop {
                group_by.push(self.expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.is_keyword("order") {
            self.bump();
            self.keyword("by")?;
            loop {
                let column = self.ident()?;
                let descending = if self.is_keyword("desc") {
                    self.bump();
                    true
                } else {
                    if self.is_keyword("asc") {
                        self.bump();
                    }
                    false
                };
                order_by.push(OrderKey { column, descending });
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.is_keyword("limit") {
            self.bump();
            match self.bump() {
                Tok::Int(n) if n >= 0 => limit = Some(n as usize),
                other => return Err(self.err(format!("limit needs a count, found `{other:?}`"))),
            }
        }
        if self.peek() != &Tok::Eof {
            return Err(self.err(format!("trailing input `{:?}`", self.peek())));
        }
        Ok(ViewDef { name, from, join, where_clause, select, group_by, order_by, limit })
    }

    fn expr(&mut self) -> Result<Expr, VdlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, VdlError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, VdlError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, VdlError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn add_expr(&mut self) -> Result<Expr, VdlError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, VdlError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, VdlError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.unary_expr()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, VdlError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::ColRef(alias, col) => Ok(Expr::Col { alias, col }),
            Tok::LParen => {
                let e = self.expr()?;
                match self.bump() {
                    Tok::RParen => Ok(e),
                    other => Err(self.err(format!("expected `)`, found `{other:?}`"))),
                }
            }
            Tok::Ident(word) => match word.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "index" => {
                    self.expect(Tok::LParen)?;
                    let alias = self.ident()?;
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Index { alias })
                }
                "sum" | "avg" | "min" | "max" | "count" => {
                    let func = match word.as_str() {
                        "sum" => AggFunc::Sum,
                        "avg" => AggFunc::Avg,
                        "min" => AggFunc::Min,
                        "max" => AggFunc::Max,
                        _ => AggFunc::Count,
                    };
                    self.expect(Tok::LParen)?;
                    let expr = if self.peek() == &Tok::RParen {
                        if func != AggFunc::Count {
                            return Err(self.err(format!("{func}() needs an argument")));
                        }
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Agg { func, expr })
                }
                other => Err(self.err(format!("unexpected identifier `{other}` in expression"))),
            },
            other => Err(self.err(format!("unexpected token `{other:?}` in expression"))),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), VdlError> {
        let got = self.bump();
        if got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected `{want:?}`, found `{got:?}`")))
        }
    }
}

fn default_name(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Col { alias, col } => format!("{alias}_{col}"),
        Expr::Index { alias } => format!("{alias}_index"),
        Expr::Agg { func, .. } => format!("{func}_{position}"),
        _ => format!("col_{position}"),
    }
}

/// Parses one view definition, then checks alias references and
/// aggregation shape.
///
/// # Errors
///
/// [`VdlError::Parse`], [`VdlError::UnknownAlias`] or
/// [`VdlError::BadAggregation`].
pub fn parse_view(source: &str) -> Result<ViewDef, VdlError> {
    let toks = Lexer { src: source.as_bytes(), pos: 0, line: 1 }.lex()?;
    let mut p = Parser { toks, pos: 0 };
    let view = p.view()?;
    validate(&view)?;
    Ok(view)
}

fn validate(view: &ViewDef) -> Result<(), VdlError> {
    let aliases = view.aliases();
    let check_refs = |e: &Expr| check_aliases(e, &aliases);
    if let Some((_, on)) = &view.join {
        check_refs(on)?;
    }
    if let Some(w) = &view.where_clause {
        check_refs(w)?;
        if w.has_aggregate() {
            return Err(VdlError::BadAggregation {
                message: "aggregates are not allowed in `where`".to_string(),
            });
        }
    }
    for item in &view.select {
        check_aliases(&item.expr, &aliases)?;
    }
    for g in &view.group_by {
        check_aliases(g, &aliases)?;
        if g.has_aggregate() {
            return Err(VdlError::BadAggregation {
                message: "aggregates are not allowed in `group by`".to_string(),
            });
        }
    }
    if view.is_aggregate() {
        // Every non-aggregate select item must appear in group by.
        for item in &view.select {
            if !item.expr.has_aggregate() && !view.group_by.contains(&item.expr) {
                return Err(VdlError::BadAggregation {
                    message: format!(
                        "select item `{}` is neither aggregated nor grouped",
                        item.name
                    ),
                });
            }
        }
    }
    for key in &view.order_by {
        if !view.select.iter().any(|s| s.name == key.column) {
            return Err(VdlError::Parse {
                line: 0,
                message: format!("order by `{}` does not name an output column", key.column),
            });
        }
    }
    Ok(())
}

fn check_aliases(e: &Expr, aliases: &[&str]) -> Result<(), VdlError> {
    match e {
        Expr::Col { alias, .. } | Expr::Index { alias } => {
            if aliases.contains(&alias.as_str()) {
                Ok(())
            } else {
                Err(VdlError::UnknownAlias { alias: alias.clone() })
            }
        }
        Expr::Neg(inner) | Expr::Not(inner) => check_aliases(inner, aliases),
        Expr::Binary { lhs, rhs, .. } => {
            check_aliases(lhs, aliases)?;
            check_aliases(rhs, aliases)
        }
        Expr::Agg { expr, .. } => expr.as_deref().map_or(Ok(()), |e| check_aliases(e, aliases)),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_view_parses() {
        let v = parse_view("view all_vcs from vc = 1.3.6.1.4.1.353.2.5.1 select vc.1").unwrap();
        assert_eq!(v.name, "all_vcs");
        assert_eq!(v.from.alias, "vc");
        assert_eq!(v.from.entry.to_string(), "1.3.6.1.4.1.353.2.5.1");
        assert_eq!(v.select.len(), 1);
        assert_eq!(v.select[0].name, "vc_1");
        assert!(!v.is_aggregate());
    }

    #[test]
    fn full_view_with_all_clauses() {
        let v = parse_view(
            "# suspicious connections\n\
             view suspicious\n\
             from c = 1.3.6.1.2.1.6.13.1\n\
             join i = 1.3.6.1.2.1.2.2.1 on c.3 == i.1\n\
             where c.1 == 5 && c.5 < 1024\n\
             select c.4 as remote, count() as conns\n\
             group by c.4",
        )
        .unwrap();
        assert!(v.join.is_some());
        assert!(v.where_clause.is_some());
        assert_eq!(v.group_by.len(), 1);
        assert!(v.is_aggregate());
        assert_eq!(v.select[1].name, "conns");
    }

    #[test]
    fn expressions_have_c_precedence() {
        let v = parse_view("view x from a = 1.2.3 select a.1 + a.2 * 2 > 10 && a.3 == 1 as flag")
            .unwrap();
        match &v.select[0].expr {
            Expr::Binary { op: BinOp::And, .. } => {}
            other => panic!("expected &&, got {other:?}"),
        }
    }

    #[test]
    fn index_function() {
        let v = parse_view("view x from a = 1.2.3 select index(a) as idx").unwrap();
        assert_eq!(v.select[0].expr, Expr::Index { alias: "a".to_string() });
    }

    #[test]
    fn aggregates_and_defaults() {
        let v = parse_view("view x from a = 1.2.3 select sum(a.2), count()").unwrap();
        assert!(v.is_aggregate());
        assert_eq!(v.select[0].name, "sum_0");
        assert_eq!(v.select[1].name, "count_1");
    }

    #[test]
    fn unknown_alias_rejected() {
        let err = parse_view("view x from a = 1.2.3 select b.1").unwrap_err();
        assert_eq!(err, VdlError::UnknownAlias { alias: "b".to_string() });
        let err = parse_view("view x from a = 1.2.3 where z.1 == 1 select a.1").unwrap_err();
        assert!(matches!(err, VdlError::UnknownAlias { .. }));
    }

    #[test]
    fn ungrouped_bare_column_in_aggregate_view_rejected() {
        let err = parse_view("view x from a = 1.2.3 select a.1, sum(a.2)").unwrap_err();
        assert!(matches!(err, VdlError::BadAggregation { .. }));
        // But fine when grouped.
        parse_view("view x from a = 1.2.3 select a.1, sum(a.2) group by a.1").unwrap();
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let err = parse_view("view x from a = 1.2.3 where sum(a.1) > 5 select a.1").unwrap_err();
        assert!(matches!(err, VdlError::BadAggregation { .. }));
    }

    #[test]
    fn count_requires_no_arg_others_require_one() {
        assert!(parse_view("view x from a = 1.2.3 select sum()").is_err());
        assert!(parse_view("view x from a = 1.2.3 select count()").is_ok());
        assert!(parse_view("view x from a = 1.2.3 select count(a.1)").is_ok());
    }

    #[test]
    fn parse_errors_have_lines() {
        let err = parse_view("view x\nfrom a = 1.2.3\nselect @").unwrap_err();
        match err {
            VdlError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_view("view x from a = 1.2.3 select a.1 bogus trailing").is_err());
    }

    #[test]
    fn oid_vs_float_vs_colref_disambiguation() {
        let v = parse_view("view x from a = 1.2.3 where a.1 > 1.5 select a.2").unwrap();
        match v.where_clause.unwrap() {
            Expr::Binary { rhs, .. } => assert_eq!(*rhs, Expr::Float(1.5)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
