//! The view-definition AST.

use ber::Oid;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of a numeric expression.
    Sum,
    /// Row (or group) count; takes no argument.
    Count,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        f.write_str(s)
    }
}

/// Binary operators in view expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// A view expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `alias.N` — column `N` of the table bound to `alias`.
    Col {
        /// Table alias.
        alias: String,
        /// Column number.
        col: u32,
    },
    /// `index(alias)` — the row's index arcs as a dotted string.
    Index {
        /// Table alias.
        alias: String,
    },
    /// Unary negation / not.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Aggregate call; `expr` is `None` only for `count()`.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Aggregated expression.
        expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Whether the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Neg(e) | Expr::Not(e) => e.has_aggregate(),
            Expr::Binary { lhs, rhs, .. } => lhs.has_aggregate() || rhs.has_aggregate(),
            _ => false,
        }
    }
}

/// One projected output column.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Output column name (defaults to the expression's text form).
    pub name: String,
}

/// A table binding from `from` or `join`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableBinding {
    /// Alias used in expressions.
    pub alias: String,
    /// The table's `Entry` OID.
    pub entry: Oid,
}

/// A sort key in an `order by` clause: an output column by name or
/// 1-based position, with direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// Output column name (must name a select item).
    pub column: String,
    /// Sort descending.
    pub descending: bool,
}

/// A parsed view definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// Primary table.
    pub from: TableBinding,
    /// Optional joined table and its join condition.
    pub join: Option<(TableBinding, Expr)>,
    /// Optional row filter.
    pub where_clause: Option<Expr>,
    /// Projected columns (at least one).
    pub select: Vec<SelectItem>,
    /// Optional grouping expressions.
    pub group_by: Vec<Expr>,
    /// Optional result ordering over output columns.
    pub order_by: Vec<OrderKey>,
    /// Optional cap on result rows (applied after ordering).
    pub limit: Option<usize>,
}

impl ViewDef {
    /// Whether any select item aggregates.
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty() || self.select.iter().any(|s| s.expr.has_aggregate())
    }

    /// The aliases bound by this view.
    pub fn aliases(&self) -> Vec<&str> {
        let mut out = vec![self.from.alias.as_str()];
        if let Some((b, _)) = &self.join {
            out.push(b.alias.as_str());
        }
        out
    }
}
