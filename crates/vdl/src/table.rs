//! Extraction of conceptual table rows from a [`MibStore`].
//!
//! SNMP lays a conceptual table out as `<entry>.<column>.<index...>`
//! instances in OID order (column-major). [`read_table`] reassembles the
//! rows: instances sharing the same index arcs under different columns
//! form one [`Row`].

use ber::{BerValue, Oid};
use snmp::MibStore;
use std::collections::BTreeMap;

/// One conceptual row: its index arcs and its column values.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The index arcs identifying the row.
    pub index: Vec<u32>,
    /// Column number → value.
    pub columns: BTreeMap<u32, BerValue>,
}

impl Row {
    /// The row index in dotted form (`"10.0.0.1.80"`).
    pub fn index_string(&self) -> String {
        self.index.iter().map(u32::to_string).collect::<Vec<_>>().join(".")
    }

    /// The value of column `col`, if present.
    pub fn get(&self, col: u32) -> Option<&BerValue> {
        self.columns.get(&col)
    }
}

/// Reads every row of the table whose `Entry` OID is `entry`, in index
/// order.
///
/// Instances that do not fit the `<entry>.<col>.<index...>` shape (no
/// column arc or empty index) are ignored.
pub fn read_table(mib: &MibStore, entry: &Oid) -> Vec<Row> {
    let mut rows: BTreeMap<Vec<u32>, Row> = BTreeMap::new();
    for (oid, value) in mib.walk(entry) {
        let Some(rest) = oid.strip_prefix(entry) else { continue };
        let Some((&col, index)) = rest.split_first() else { continue };
        if index.is_empty() {
            continue;
        }
        rows.entry(index.to_vec())
            .or_insert_with(|| Row { index: index.to_vec(), columns: BTreeMap::new() })
            .columns
            .insert(col, value);
    }
    rows.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snmp::mib2;

    #[test]
    fn interfaces_table_reassembles() {
        let mib = MibStore::new();
        mib2::install_interfaces(&mib, 3, 10_000_000).unwrap();
        let rows = read_table(&mib, &mib2::if_entry());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].index, vec![1]);
        assert_eq!(rows[2].index, vec![3]);
        assert_eq!(rows[1].get(2), Some(&BerValue::from("eth1")));
        assert_eq!(rows[0].get(10), Some(&BerValue::Counter32(0)));
        assert_eq!(rows[0].get(99), None);
        assert_eq!(rows[0].index_string(), "1");
    }

    #[test]
    fn composite_index_rows() {
        let mib = MibStore::new();
        let conn = mib2::TcpConn {
            state: mib2::tcp_state::ESTABLISHED,
            local: ([10, 0, 0, 1], 80),
            remote: ([10, 0, 0, 2], 4242),
        };
        mib2::install_tcp_conn(&mib, conn).unwrap();
        let rows = read_table(&mib, &mib2::tcp_conn_entry());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].index_string(), "10.0.0.1.80.10.0.0.2.4242");
        assert_eq!(rows[0].columns.len(), 5);
    }

    #[test]
    fn scalars_under_entry_are_ignored() {
        let mib = MibStore::new();
        let entry: Oid = "1.3.6.1.4.1.7.1".parse().unwrap();
        // A malformed "instance" with no index.
        mib.set_scalar(entry.child(1), BerValue::Integer(1)).unwrap();
        // A proper cell.
        mib.set_scalar(entry.child(1).child(9), BerValue::Integer(2)).unwrap();
        let rows = read_table(&mib, &entry);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].index, vec![9]);
    }

    #[test]
    fn empty_table_is_empty() {
        let mib = MibStore::new();
        assert!(read_table(&mib, &"1.3".parse().unwrap()).is_empty());
    }

    #[test]
    fn rows_are_in_index_order() {
        let mib = MibStore::new();
        let entry: Oid = "1.3.6.1.4.1.7.1".parse().unwrap();
        for idx in [5u32, 1, 3] {
            mib.set_scalar(entry.child(1).child(idx), BerValue::Integer(i64::from(idx))).unwrap();
        }
        let rows = read_table(&mib, &entry);
        let order: Vec<u32> = rows.iter().map(|r| r.index[0]).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}
