use std::error::Error;
use std::fmt;

/// Errors from parsing or evaluating view definitions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VdlError {
    /// Lexical or syntactic error in the view text.
    Parse {
        /// 1-based line.
        line: u32,
        /// What went wrong.
        message: String,
    },
    /// The view references an alias that is not bound by `from`/`join`.
    UnknownAlias {
        /// The unbound alias.
        alias: String,
    },
    /// A non-aggregated select item references columns in an aggregate
    /// view without being listed in `group by`.
    BadAggregation {
        /// Description of the offending item.
        message: String,
    },
    /// A type error during evaluation (e.g. comparing a string to an int).
    Type {
        /// Description.
        message: String,
    },
    /// Division by zero during evaluation.
    DivisionByZero,
    /// The named view is not defined on this MCVA.
    NoSuchView {
        /// The requested name.
        name: String,
    },
    /// A view with this name already exists.
    ViewExists {
        /// The conflicting name.
        name: String,
    },
}

impl fmt::Display for VdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VdlError::Parse { line, message } => write!(f, "line {line}: {message}"),
            VdlError::UnknownAlias { alias } => write!(f, "unknown table alias `{alias}`"),
            VdlError::BadAggregation { message } => write!(f, "bad aggregation: {message}"),
            VdlError::Type { message } => write!(f, "type error: {message}"),
            VdlError::DivisionByZero => write!(f, "division by zero"),
            VdlError::NoSuchView { name } => write!(f, "no such view `{name}`"),
            VdlError::ViewExists { name } => write!(f, "view `{name}` already defined"),
        }
    }
}

impl Error for VdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(VdlError::Parse { line: 3, message: "bad".into() }.to_string().contains("line 3"));
        assert!(VdlError::NoSuchView { name: "v".into() }.to_string().contains("`v`"));
    }
}
