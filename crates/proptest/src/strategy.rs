//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f: Rc::new(f) }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper.
    /// `_desired_size` and `_branch_size` are accepted for upstream
    /// signature compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            current = OneOf::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erases this strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Map<S, F> {
        Map { inner: self.inner.clone(), f: Rc::clone(&self.f) }
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice between same-typed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> OneOf<T> {
        OneOf { arms: self.arms.clone() }
    }
}

impl<T> OneOf<T> {
    /// A choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy over empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Include the upper endpoint occasionally, as upstream can.
        if rng.below(1024) == 0 {
            return hi;
        }
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_and_maps_compose() {
        let s = (0u32..10).prop_map(|n| n * 2);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.gen_value(&mut r);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = OneOf::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.gen_value(&mut r) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursion_reaches_base_and_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&s.gen_value(&mut r)));
        }
        assert!(max_depth >= 2, "recursion should nest (saw {max_depth})");
    }

    #[test]
    fn inclusive_ranges_can_produce_endpoints() {
        let s = 0u8..=1;
        let mut r = rng();
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.gen_value(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
