//! Deterministic per-case RNG and run configuration.

/// How many cases [`proptest!`](crate::proptest) runs per property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 128 keeps the offline suite brisk
        // while still exercising each property broadly.
        ProptestConfig { cases: 128 }
    }
}

/// xoshiro256++ seeded from the test path and case index, so every case
/// is reproducible without persisted state.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The RNG for one `(test, case)` pair.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h ^ (u64::from(case) << 32) ^ u64::from(case))
    }

    /// An RNG seeded directly.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` below `bound` (which must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
