//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the subset of proptest's API its property tests use:
//! strategies (ranges, tuples, [`Just`], `prop_map`, `prop_recursive`,
//! [`prop_oneof!`], collections, simple regex-like string patterns),
//! [`any`](arbitrary::any), and the [`proptest!`] runner macro with
//! `prop_assert*` / `prop_assume!`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the case number and the
//!   assertion message; inputs are reproducible because every case's RNG
//!   seed derives deterministically from the test name and case index.
//! - **Regex strategies** support the subset used here: character
//!   classes with ranges (`[a-z0-9_.-]`), `\PC` (any printable), and the
//!   `{m}` / `{m,n}` / `*` / `+` / `?` quantifiers.
//! - `prop_recursive`'s size hints are ignored; recursion depth is
//!   honored and each level picks base or recursive arms at even odds.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each embedded `#[test] fn name(pat in strategy, ...) { body }`
/// over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                    $(
                        let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property failed at case {case}/{}: {message}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Fails the surrounding property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed: {:?} != {:?}", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed: {:?} != {:?}: {}", l, r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the surrounding property if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne! failed: both {:?}",
                l
            ));
        }
    }};
}

/// Skips the current case (counted as a pass) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
