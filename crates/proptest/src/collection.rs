//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.start, self.size.end.max(self.size.start + 1));
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// The strategy returned by [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// A `BTreeMap` with `size`-many draws (key collisions may leave fewer
/// final entries, as with upstream's non-retry path).
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let draws = rng.usize_in(self.size.start, self.size.end.max(self.size.start + 1));
        let mut out = BTreeMap::new();
        for _ in 0..draws {
            out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_stay_in_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn btree_map_respects_minimum_when_keys_distinct() {
        let s = btree_map(0u32..1_000_000, 0u8..255, 1..20);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            assert!(!s.gen_value(&mut rng).is_empty());
        }
    }
}
