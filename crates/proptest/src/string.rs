//! String strategies from a regex-like pattern.
//!
//! A `&'static str` is itself a strategy producing `String`s. The
//! supported pattern language is the subset the workspace's tests use:
//! character classes with ranges (`[a-zA-Z0-9_.-]`), `\PC` (any
//! printable character), literal characters, and the quantifiers `{m}`,
//! `{m,n}`, `*`, `+`, and `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Upper bound substituted for open-ended `*` / `+` quantifiers.
const UNBOUNDED_MAX: usize = 64;

#[derive(Debug, Clone)]
enum Atom {
    /// One of an explicit pool of characters.
    Class(Vec<char>),
    /// Any printable character (`\PC`).
    Printable,
    /// Exactly this character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut pool = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => {
                if let Some(p) = pending {
                    pool.push(p);
                }
                return pool;
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("range start");
                let hi = chars.next().expect("range end");
                assert!(lo <= hi, "descending class range {lo}-{hi}");
                pool.extend(lo..=hi);
            }
            other => {
                if let Some(p) = pending.take() {
                    pool.push(p);
                }
                pending = Some(other);
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut min_txt = String::new();
            let mut max_txt = None;
            loop {
                match chars.next().expect("unterminated quantifier") {
                    '}' => break,
                    ',' => max_txt = Some(String::new()),
                    d => match &mut max_txt {
                        Some(t) => t.push(d),
                        None => min_txt.push(d),
                    },
                }
            }
            let min: usize = min_txt.parse().expect("quantifier minimum");
            let max = match max_txt {
                None => min,
                Some(t) => t.parse().expect("quantifier maximum"),
            };
            (min, max)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_MAX)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_MAX)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => match chars.next().expect("dangling escape") {
                'P' => {
                    assert_eq!(chars.next(), Some('C'), "only \\PC is supported");
                    Atom::Printable
                }
                esc => Atom::Literal(esc),
            },
            other => Atom::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars);
        assert!(min <= max, "descending quantifier in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_printable(rng: &mut TestRng) -> char {
    // Mostly ASCII printables, with an occasional sampled non-ASCII
    // printable so unicode handling gets exercised.
    const EXOTIC: [char; 8] = ['é', 'ß', 'λ', 'Ж', '→', '系', '🙂', 'ñ'];
    if rng.below(16) == 0 {
        EXOTIC[rng.usize_in(0, EXOTIC.len())]
    } else {
        char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii printable")
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.usize_in(piece.min, piece.max + 1);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Class(pool) => out.push(pool[rng.usize_in(0, pool.len())]),
                    Atom::Printable => out.push(gen_printable(rng)),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn class_with_ranges_and_trailing_dash() {
        let s = "[a-zA-Z0-9_.-]{0,24}";
        let mut r = rng();
        for _ in 0..200 {
            let v = s.gen_value(&mut r);
            assert!(v.len() <= 24);
            assert!(v.chars().all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn fixed_and_bounded_quantifiers() {
        let mut r = rng();
        for _ in 0..100 {
            let v = "[a-z]{1,10}".gen_value(&mut r);
            assert!((1..=10).contains(&v.len()));
            assert!(v.chars().all(|c| c.is_ascii_lowercase()));
        }
        let head_tail = "[a-z][a-z0-9_]{0,10}".gen_value(&mut r);
        assert!(head_tail.chars().next().unwrap().is_ascii_lowercase());
    }

    #[test]
    fn printable_star_is_bounded_and_printable() {
        let mut r = rng();
        for _ in 0..50 {
            let v = "\\PC*".gen_value(&mut r);
            assert!(v.chars().count() <= UNBOUNDED_MAX);
            assert!(v.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut r = rng();
        assert_eq!("dpi".gen_value(&mut r), "dpi");
    }
}
