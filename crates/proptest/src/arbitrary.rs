//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across magnitudes (no NaN/inf: the tests here
        // feed these into arithmetic that assumes ordered values).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * 2f64.powi(exp)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_cover_sign_and_magnitude() {
        let mut rng = TestRng::from_seed(5);
        let s = any::<i64>();
        let mut neg = false;
        let mut pos = false;
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }

    #[test]
    fn arrays_vary() {
        let mut rng = TestRng::from_seed(6);
        let s = any::<[u8; 4]>();
        let a = s.gen_value(&mut rng);
        let b = s.gen_value(&mut rng);
        assert_ne!(a, b);
    }
}
