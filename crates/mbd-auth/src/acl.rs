use std::collections::{HashMap, HashSet};
use std::fmt;

/// A principal known to an elastic process: a manager (delegating client)
/// identified by a handle string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Principal(String);

impl Principal {
    /// Creates a principal from its handle.
    pub fn new(handle: impl Into<String>) -> Principal {
        Principal(handle.into())
    }

    /// The underlying handle string.
    pub fn handle(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Principal {
    fn from(s: &str) -> Principal {
        Principal::new(s)
    }
}

/// The RDS operations an ACL can grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operation {
    /// Transfer a delegated program to the server.
    Delegate,
    /// Create an instance (dpi) of a stored dp.
    Instantiate,
    /// Invoke a function of a dpi.
    Invoke,
    /// Suspend / resume / terminate a dpi.
    Control,
    /// List stored dps and running dpis.
    List,
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Operation::Delegate => "delegate",
            Operation::Instantiate => "instantiate",
            Operation::Invoke => "invoke",
            Operation::Control => "control",
            Operation::List => "list",
        };
        f.write_str(s)
    }
}

/// A handle-based access-control list.
///
/// Grants are per-principal, per-operation; `Invoke`, `Instantiate` and
/// `Control` can additionally be scoped to specific dp names. A default
/// policy decides unlisted principals.
///
/// # Examples
///
/// ```
/// use mbd_auth::{Acl, Operation, Principal};
///
/// let mut acl = Acl::deny_by_default();
/// let ops = Principal::new("noc-operator");
/// acl.grant(&ops, Operation::Delegate);
/// acl.grant_scoped(&ops, Operation::Invoke, "health-fn");
///
/// assert!(acl.allows(&ops, Operation::Delegate, None));
/// assert!(acl.allows(&ops, Operation::Invoke, Some("health-fn")));
/// assert!(!acl.allows(&ops, Operation::Invoke, Some("other-dp")));
/// assert!(!acl.allows(&Principal::new("stranger"), Operation::Delegate, None));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Acl {
    allow_by_default: bool,
    /// Unscoped grants.
    grants: HashMap<Principal, HashSet<Operation>>,
    /// Grants limited to a particular dp name.
    scoped: HashMap<(Principal, Operation), HashSet<String>>,
}

impl Acl {
    /// An ACL that denies anything not explicitly granted.
    pub fn deny_by_default() -> Acl {
        Acl { allow_by_default: false, ..Acl::default() }
    }

    /// An ACL that allows everything (the first prototype's "trivial
    /// access control": possession of a handle suffices).
    pub fn allow_by_default() -> Acl {
        Acl { allow_by_default: true, ..Acl::default() }
    }

    /// Grants `op` on any dp to `who`.
    pub fn grant(&mut self, who: &Principal, op: Operation) {
        self.grants.entry(who.clone()).or_default().insert(op);
    }

    /// Grants `op` to `who`, but only for the dp named `dp_name`.
    pub fn grant_scoped(&mut self, who: &Principal, op: Operation, dp_name: &str) {
        self.scoped.entry((who.clone(), op)).or_default().insert(dp_name.to_string());
    }

    /// Revokes all of `who`'s grants (scoped and unscoped).
    pub fn revoke_all(&mut self, who: &Principal) {
        self.grants.remove(who);
        self.scoped.retain(|(p, _), _| p != who);
    }

    /// Whether `who` may perform `op`, optionally on a specific dp.
    ///
    /// Evaluation order: unscoped grant, then scoped grant, then the
    /// default policy.
    pub fn allows(&self, who: &Principal, op: Operation, dp_name: Option<&str>) -> bool {
        if self.grants.get(who).is_some_and(|ops| ops.contains(&op)) {
            return true;
        }
        if let Some(dp) = dp_name {
            if self.scoped.get(&(who.clone(), op)).is_some_and(|names| names.contains(dp)) {
                return true;
            }
        }
        self.allow_by_default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_by_default_denies_strangers() {
        let acl = Acl::deny_by_default();
        assert!(!acl.allows(&"x".into(), Operation::Delegate, None));
        assert!(!acl.allows(&"x".into(), Operation::List, None));
    }

    #[test]
    fn allow_by_default_matches_first_prototype() {
        let acl = Acl::allow_by_default();
        assert!(acl.allows(&"anyone".into(), Operation::Delegate, None));
        assert!(acl.allows(&"anyone".into(), Operation::Invoke, Some("dp")));
    }

    #[test]
    fn unscoped_grant_covers_all_dps() {
        let mut acl = Acl::deny_by_default();
        acl.grant(&"ops".into(), Operation::Invoke);
        assert!(acl.allows(&"ops".into(), Operation::Invoke, Some("a")));
        assert!(acl.allows(&"ops".into(), Operation::Invoke, Some("b")));
        assert!(acl.allows(&"ops".into(), Operation::Invoke, None));
        assert!(!acl.allows(&"ops".into(), Operation::Delegate, None));
    }

    #[test]
    fn scoped_grant_is_limited() {
        let mut acl = Acl::deny_by_default();
        acl.grant_scoped(&"guest".into(), Operation::Invoke, "health");
        assert!(acl.allows(&"guest".into(), Operation::Invoke, Some("health")));
        assert!(!acl.allows(&"guest".into(), Operation::Invoke, Some("intrusion")));
        // A scoped grant does not cover the unscoped question.
        assert!(!acl.allows(&"guest".into(), Operation::Invoke, None));
        // Nor a different operation on the same dp.
        assert!(!acl.allows(&"guest".into(), Operation::Control, Some("health")));
    }

    #[test]
    fn revoke_all_removes_everything() {
        let mut acl = Acl::deny_by_default();
        acl.grant(&"ops".into(), Operation::Delegate);
        acl.grant_scoped(&"ops".into(), Operation::Invoke, "dp1");
        acl.revoke_all(&"ops".into());
        assert!(!acl.allows(&"ops".into(), Operation::Delegate, None));
        assert!(!acl.allows(&"ops".into(), Operation::Invoke, Some("dp1")));
    }

    #[test]
    fn principals_display_their_handles() {
        assert_eq!(Principal::new("mgr-7").to_string(), "mgr-7");
        assert_eq!(Principal::new("mgr-7").handle(), "mgr-7");
        assert_eq!(Operation::Instantiate.to_string(), "instantiate");
    }
}
