//! Authentication and access control for delegation requests.
//!
//! The first MbD prototype authenticated delegated programs and instances
//! by their *handles* only; the SOS product version added optional MD5
//! digest authentication (RFC 1321, as cited in the thesis via
//! \[Rivest, 1992\]). This crate provides both mechanisms:
//!
//! - [`md5`]: a from-scratch MD5 implementation (no external crypto crate
//!   is in the approved offline set). It is used for *integrity/identity*
//!   of delegation requests exactly as the 1990s system used it; it is of
//!   course not collision-resistant by modern standards and must not be
//!   used for new designs.
//! - [`keyed_digest`]: the prefix-key construction `MD5(key ‖ message)`
//!   that pre-HMAC SNMPv2 parties used.
//! - [`Acl`]: a handle-based access-control list deciding which principals
//!   may perform which RDS operations on which delegated programs.

mod acl;
pub mod md5;

pub use acl::{Acl, Operation, Principal};
pub use md5::Md5;

/// A 16-byte MD5 digest.
pub type Digest = [u8; 16];

/// Computes `MD5(key ‖ message)` — the keyed-digest authentication the
/// SOS server offered for RDS requests.
///
/// # Examples
///
/// ```
/// let tag = mbd_auth::keyed_digest(b"secret", b"delegate dp-42");
/// assert!(mbd_auth::verify_keyed_digest(b"secret", b"delegate dp-42", &tag));
/// assert!(!mbd_auth::verify_keyed_digest(b"wrong", b"delegate dp-42", &tag));
/// ```
pub fn keyed_digest(key: &[u8], message: &[u8]) -> Digest {
    let mut h = Md5::new();
    h.update(key);
    h.update(message);
    h.finalize()
}

/// Verifies a tag produced by [`keyed_digest`], in constant time with
/// respect to the tag contents.
pub fn verify_keyed_digest(key: &[u8], message: &[u8], tag: &Digest) -> bool {
    let expected = keyed_digest(key, message);
    // Constant-time comparison: fold differences, no early exit.
    expected.iter().zip(tag.iter()).fold(0u8, |acc, (a, b)| acc | (a ^ b)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_digest_depends_on_key_and_message() {
        let t1 = keyed_digest(b"k1", b"m");
        let t2 = keyed_digest(b"k2", b"m");
        let t3 = keyed_digest(b"k1", b"m2");
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn keyed_digest_is_md5_of_concatenation() {
        assert_eq!(keyed_digest(b"ab", b"c"), md5::digest(b"abc"));
    }

    #[test]
    fn verify_rejects_truncation_tampering() {
        let mut tag = keyed_digest(b"k", b"m");
        assert!(verify_keyed_digest(b"k", b"m", &tag));
        tag[15] ^= 1;
        assert!(!verify_keyed_digest(b"k", b"m", &tag));
    }
}
