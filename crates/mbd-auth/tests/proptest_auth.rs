//! Property tests for MD5 streaming equivalence and keyed-digest
//! authentication.

use mbd_auth::{keyed_digest, md5, verify_keyed_digest, Md5};
use proptest::prelude::*;

proptest! {
    #[test]
    fn streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(0usize..512, 0..6),
    ) {
        let oneshot = md5::digest(&data);
        let mut h = Md5::new();
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c.max(prev)]);
            prev = c.max(prev);
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn digests_differ_on_different_inputs(
        a in proptest::collection::vec(any::<u8>(), 0..128),
        b in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(md5::digest(&a), md5::digest(&b));
    }

    #[test]
    fn keyed_digest_verifies_iff_key_and_message_match(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        other_key in proptest::collection::vec(any::<u8>(), 1..32),
        flip_byte in 0usize..16,
    ) {
        let tag = keyed_digest(&key, &msg);
        prop_assert!(verify_keyed_digest(&key, &msg, &tag));
        if other_key != key {
            prop_assert!(!verify_keyed_digest(&other_key, &msg, &tag));
        }
        let mut bad = tag;
        bad[flip_byte] ^= 0x01;
        prop_assert!(!verify_keyed_digest(&key, &msg, &bad));
    }

    #[test]
    fn hex_rendering_is_32_lowercase_chars(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let hex = md5::to_hex(&md5::digest(&data));
        prop_assert_eq!(hex.len(), 32);
        prop_assert!(hex.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
