//! Linear index functions: the weighted-sum health evaluators of
//! thesis §4 (after Samuel's game-evaluation polynomials).

use std::fmt;

/// `h(x) = w · x - θ`; the subnet is classified *stressed* when
/// `h(x) > 0`.
///
/// # Examples
///
/// ```
/// use health::LinearIndex;
/// // High collisions alone should trip this index.
/// let idx = LinearIndex::new(vec![0.5, 4.0, 1.0, 2.0], 1.0);
/// assert!(idx.classify(&[0.2, 0.4, 0.0, 0.0]));
/// assert!(!idx.classify(&[0.2, 0.1, 0.0, 0.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearIndex {
    weights: Vec<f64>,
    threshold: f64,
}

impl LinearIndex {
    /// Creates an index with explicit weights and threshold.
    pub fn new(weights: Vec<f64>, threshold: f64) -> LinearIndex {
        LinearIndex { weights, threshold }
    }

    /// A zero index over `n` features (the training starting point).
    pub fn zeros(n: usize) -> LinearIndex {
        LinearIndex { weights: vec![0.0; n], threshold: 0.0 }
    }

    /// The thesis's hand-set InterOp-style starting weights: utilization
    /// and collisions dominate, broadcasts and errors contribute.
    pub fn interop_default() -> LinearIndex {
        LinearIndex { weights: vec![1.0, 3.0, 1.5, 4.0], threshold: 0.9 }
    }

    /// The feature weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The decision threshold θ.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The raw index value `w · x - θ`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the weight count.
    pub fn score(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature arity mismatch");
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() - self.threshold
    }

    /// `true` = stressed / problem, `false` = healthy.
    ///
    /// # Panics
    ///
    /// As for [`LinearIndex::score`].
    pub fn classify(&self, x: &[f64]) -> bool {
        self.score(x) > 0.0
    }

    /// One perceptron/LMS update step: `w += lr * err * x`,
    /// `θ -= lr * err` (the threshold is a bias with constant input -1).
    pub(crate) fn nudge(&mut self, x: &[f64], err: f64, lr: f64) {
        for (w, v) in self.weights.iter_mut().zip(x) {
            *w += lr * err * v;
        }
        self.threshold -= lr * err;
    }
}

impl fmt::Display for LinearIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h(x) =")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, " +")?;
            }
            write!(f, " {w:.3}*x{i}")?;
        }
        write!(f, " - {:.3}", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_is_dot_product_minus_threshold() {
        let idx = LinearIndex::new(vec![1.0, 2.0], 0.5);
        assert!((idx.score(&[0.5, 0.25]) - 0.5).abs() < 1e-12);
        assert!(idx.classify(&[0.5, 0.25]));
        assert!(!idx.classify(&[0.1, 0.1]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        LinearIndex::zeros(2).score(&[1.0]);
    }

    #[test]
    fn nudge_moves_toward_positive_errors() {
        let mut idx = LinearIndex::zeros(2);
        let before = idx.score(&[1.0, 0.0]);
        idx.nudge(&[1.0, 0.0], 1.0, 0.1);
        assert!(idx.score(&[1.0, 0.0]) > before);
        // And negative errors lower the score.
        idx.nudge(&[1.0, 0.0], -2.0, 0.1);
        assert!(idx.score(&[1.0, 0.0]) < before + 0.2 + 1e-12);
    }

    #[test]
    fn display_shows_every_weight() {
        let s = LinearIndex::interop_default().to_string();
        assert!(s.contains("x0"));
        assert!(s.contains("x3"));
        assert!(s.contains('-'));
    }
}
