//! Seeded synthetic subnet workloads with labeled stress episodes.
//!
//! The paper's evaluation environment (the InterOp'91 show floor and
//! campus segments) is not reproducible, so this generator synthesizes
//! the same *kind* of signal: a base traffic process on an Ethernet
//! segment, interrupted by stress episodes — congestion (utilization and
//! collisions climb together), broadcast storms, and error bursts — each
//! labeled, so classification accuracy has ground truth. The generator
//! can emit labeled symptom vectors directly, or drive the counters of a
//! [`MibStore`] so delegated agents observe it through the MIB exactly
//! like real instrumentation.

use crate::observer::{ConcentratorObserver, Symptoms};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snmp::{mib2, MibStore};

/// The kinds of injected stress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StressKind {
    /// Offered load near capacity; collisions climb superlinearly.
    Congestion,
    /// A host floods broadcasts.
    BroadcastStorm,
    /// A failing transceiver corrupts frames.
    ErrorBurst,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Segment capacity, bits/second.
    pub capacity_bps: u64,
    /// Mean healthy utilization (0..1).
    pub base_utilization: f64,
    /// Probability that a stress episode starts at a healthy step.
    pub episode_start_prob: f64,
    /// Mean episode length in steps (geometric).
    pub mean_episode_len: f64,
    /// Sampling interval in ticks (hundredths of a second).
    pub interval_ticks: u64,
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig {
            capacity_bps: 10_000_000,
            base_utilization: 0.15,
            episode_start_prob: 0.05,
            mean_episode_len: 8.0,
            interval_ticks: 100,
        }
    }
}

/// The stateful generator.
#[derive(Debug)]
pub struct Scenario {
    config: ScenarioConfig,
    rng: StdRng,
    active: Option<(StressKind, u32)>,
    ticks: u64,
}

/// Counter increments for one interval, plus the ground-truth label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDeltas {
    /// Bytes received OK.
    pub rx_bytes: u64,
    /// Frames received.
    pub frames: u64,
    /// Collisions.
    pub collisions: u64,
    /// Broadcast frames.
    pub broadcasts: u64,
    /// Errored frames.
    pub errors: u64,
    /// Whether this interval is stressed, and how.
    pub stress: Option<StressKind>,
}

impl Scenario {
    /// Creates a generator with the given seed.
    pub fn new(config: ScenarioConfig, seed: u64) -> Scenario {
        Scenario { config, rng: StdRng::seed_from_u64(seed), active: None, ticks: 0 }
    }

    /// Elapsed virtual ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    fn jitter(&mut self, base: f64, spread: f64) -> f64 {
        (base + (self.rng.gen::<f64>() - 0.5) * 2.0 * spread).max(0.0)
    }

    /// Advances one interval and returns its counter increments.
    pub fn step(&mut self) -> StepDeltas {
        let c = self.config;
        self.ticks += c.interval_ticks;
        // Episode bookkeeping.
        match &mut self.active {
            Some((_, remaining)) => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.active = None;
                }
            }
            None => {
                if self.rng.gen::<f64>() < c.episode_start_prob {
                    let kind = match self.rng.gen_range(0u32..3) {
                        0 => StressKind::Congestion,
                        1 => StressKind::BroadcastStorm,
                        _ => StressKind::ErrorBurst,
                    };
                    let len = 1 + (self.rng.gen::<f64>() * 2.0 * c.mean_episode_len) as u32;
                    self.active = Some((kind, len));
                }
            }
        }
        let stress = self.active.map(|(k, _)| k);
        let seconds = c.interval_ticks as f64 / 100.0;
        let capacity_bytes = c.capacity_bps as f64 / 8.0 * seconds;

        let (util, coll_rate, bcast_rate, err_rate) = match stress {
            None => (
                self.jitter(c.base_utilization, 0.05),
                self.jitter(0.01, 0.01),
                self.jitter(0.02, 0.01),
                self.jitter(0.001, 0.001),
            ),
            Some(StressKind::Congestion) => (
                self.jitter(0.85, 0.1),
                self.jitter(0.3, 0.1),
                self.jitter(0.02, 0.01),
                self.jitter(0.005, 0.003),
            ),
            Some(StressKind::BroadcastStorm) => (
                self.jitter(0.5, 0.1),
                self.jitter(0.05, 0.02),
                self.jitter(0.6, 0.15),
                self.jitter(0.002, 0.001),
            ),
            Some(StressKind::ErrorBurst) => (
                self.jitter(c.base_utilization, 0.05),
                self.jitter(0.02, 0.01),
                self.jitter(0.02, 0.01),
                self.jitter(0.2, 0.08),
            ),
        };
        let rx_bytes = (util.min(1.0) * capacity_bytes) as u64;
        let frames = (rx_bytes / 600).max(1); // ~600-byte mean frame
        StepDeltas {
            rx_bytes,
            frames,
            collisions: (coll_rate.min(1.0) * frames as f64) as u64,
            broadcasts: (bcast_rate.min(1.0) * frames as f64) as u64,
            errors: (err_rate.min(1.0) * frames as f64) as u64,
            stress,
        }
    }

    /// Applies one step's increments to `mib`'s concentrator counters.
    ///
    /// # Panics
    ///
    /// Panics if the concentrator subtree is not installed.
    pub fn apply_step(&mut self, mib: &MibStore) -> StepDeltas {
        let d = self.step();
        mib.counter_add(&mib2::s3_enet_conc_rx_ok(), d.rx_bytes).expect("concentrator installed");
        mib.counter_add(&mib2::s3_enet_conc_frames(), d.frames).expect("concentrator installed");
        mib.counter_add(&mib2::s3_enet_conc_coll(), d.collisions).expect("concentrator installed");
        mib.counter_add(&mib2::s3_enet_conc_bcast(), d.broadcasts).expect("concentrator installed");
        mib.counter_add(&mib2::if_in_errors(1), d.errors).expect("interfaces installed");
        d
    }

    /// Generates `n` labeled symptom vectors by running a private MIB and
    /// observer — the full observation pipeline, with ground truth.
    pub fn labeled_trace(&mut self, n: usize) -> Vec<(Vec<f64>, bool)> {
        let mib = MibStore::new();
        mib2::install_concentrator(&mib).expect("fresh mib");
        mib2::install_interfaces(&mib, 1, self.config.capacity_bps as u32).expect("fresh mib");
        let mut observer = ConcentratorObserver::new(self.config.capacity_bps);
        observer.sample(&mib, self.ticks);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let d = self.apply_step(&mib);
            if let Some(sym) = observer.sample(&mib, self.ticks) {
                out.push((sym.as_vec(), d.stress.is_some()));
            }
        }
        out
    }

    /// Generates `n` labeled [`Symptoms`] (not vectorized).
    pub fn labeled_symptoms(&mut self, n: usize) -> Vec<(Symptoms, Option<StressKind>)> {
        let mib = MibStore::new();
        mib2::install_concentrator(&mib).expect("fresh mib");
        mib2::install_interfaces(&mib, 1, self.config.capacity_bps as u32).expect("fresh mib");
        let mut observer = ConcentratorObserver::new(self.config.capacity_bps);
        observer.sample(&mib, self.ticks);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let d = self.apply_step(&mib);
            if let Some(sym) = observer.sample(&mib, self.ticks) {
                out.push((sym, d.stress));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Scenario::new(ScenarioConfig::default(), 7);
        let mut b = Scenario::new(ScenarioConfig::default(), 7);
        for _ in 0..50 {
            assert_eq!(a.step(), b.step());
        }
        let mut c = Scenario::new(ScenarioConfig::default(), 8);
        let differs = (0..50).any(|_| a.step() != c.step());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn trace_contains_both_classes() {
        let mut s = Scenario::new(ScenarioConfig::default(), 42);
        let trace = s.labeled_trace(400);
        let stressed = trace.iter().filter(|(_, l)| *l).count();
        assert!(stressed > 10, "expected some stress episodes, got {stressed}");
        assert!(stressed < trace.len() - 10, "expected some healthy steps");
    }

    #[test]
    fn symptoms_separate_classes_on_average() {
        let mut s = Scenario::new(ScenarioConfig::default(), 42);
        let trace = s.labeled_symptoms(500);
        type Sample = (Symptoms, Option<StressKind>);
        let mean = |pred: &dyn Fn(&Sample) -> bool, f: &dyn Fn(&Symptoms) -> f64| {
            let xs: Vec<f64> = trace.iter().filter(|t| pred(t)).map(|(sym, _)| f(sym)).collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        let healthy_util = mean(&|t| t.1.is_none(), &|s| s.utilization);
        let congested_util = mean(&|t| t.1 == Some(StressKind::Congestion), &|s| s.utilization);
        assert!(congested_util > healthy_util * 2.0);
        let healthy_bcast = mean(&|t| t.1.is_none(), &|s| s.broadcast_rate);
        let storm_bcast = mean(&|t| t.1 == Some(StressKind::BroadcastStorm), &|s| s.broadcast_rate);
        assert!(storm_bcast > healthy_bcast * 5.0);
    }

    #[test]
    fn episode_lengths_are_plausible() {
        let mut s = Scenario::new(
            ScenarioConfig { episode_start_prob: 0.2, ..ScenarioConfig::default() },
            3,
        );
        let mut episodes = 0;
        let mut prev_stressed = false;
        for _ in 0..500 {
            let stressed = s.step().stress.is_some();
            if stressed && !prev_stressed {
                episodes += 1;
            }
            prev_stressed = stressed;
        }
        assert!(episodes >= 5, "got only {episodes} episodes");
    }

    #[test]
    fn apply_step_drives_the_mib() {
        let mib = MibStore::new();
        mib2::install_concentrator(&mib).unwrap();
        mib2::install_interfaces(&mib, 1, 10_000_000).unwrap();
        let mut s = Scenario::new(ScenarioConfig::default(), 1);
        let before = mib.get(&mib2::s3_enet_conc_rx_ok()).unwrap().as_i64().unwrap();
        s.apply_step(&mib);
        let after = mib.get(&mib2::s3_enet_conc_rx_ok()).unwrap().as_i64().unwrap();
        assert!(after > before);
        assert_eq!(s.ticks(), 100);
    }
}
