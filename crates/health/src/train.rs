//! Training index-function weights from labeled episodes.
//!
//! "Good (poor) predictors should have their weights increased
//! (decreased) until correct classifications are achieved" — the thesis
//! proposes starting from estimates and adapting, citing perceptron
//! training (Duda & Hart) and the LMS rule, which "adapts the weights
//! after every trial based on the difference between the actual and
//! desired output".

use crate::index::LinearIndex;

/// A labeled observation: symptom vector + ground truth
/// (`true` = stressed).
pub type LabeledSample = (Vec<f64>, bool);

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the trace.
    pub epochs: u32,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig { learning_rate: 0.05, epochs: 50 }
    }
}

/// Classic perceptron learning: update only on misclassification, by the
/// sign of the error.
///
/// # Panics
///
/// Panics if samples have inconsistent feature arity.
pub fn perceptron_train(trace: &[LabeledSample], config: TrainConfig) -> LinearIndex {
    let n = trace.first().map_or(0, |(x, _)| x.len());
    let mut index = LinearIndex::zeros(n);
    for _ in 0..config.epochs {
        let mut mistakes = 0;
        for (x, label) in trace {
            let predicted = index.classify(x);
            if predicted != *label {
                let err = if *label { 1.0 } else { -1.0 };
                index.nudge(x, err, config.learning_rate);
                mistakes += 1;
            }
        }
        if mistakes == 0 {
            break; // converged (the trace is linearly separable)
        }
    }
    index
}

/// LMS (Widrow–Hoff): update after *every* trial by the difference
/// between desired (±1) and actual analog output.
///
/// # Panics
///
/// Panics if samples have inconsistent feature arity.
pub fn lms_train(trace: &[LabeledSample], config: TrainConfig) -> LinearIndex {
    let n = trace.first().map_or(0, |(x, _)| x.len());
    let mut index = LinearIndex::zeros(n);
    for _ in 0..config.epochs {
        for (x, label) in trace {
            let desired = if *label { 1.0 } else { -1.0 };
            let actual = index.score(x).tanh(); // squashed analog output
            let err = desired - actual;
            index.nudge(x, err, config.learning_rate);
        }
    }
    index
}

/// Classification quality over a labeled trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Fraction classified correctly.
    pub accuracy: f64,
    /// Of predicted-stressed, fraction truly stressed.
    pub precision: f64,
    /// Of truly stressed, fraction detected.
    pub recall: f64,
    /// True/false positives/negatives.
    pub confusion: [u64; 4],
}

impl Metrics {
    /// `[tp, fp, fn, tn]` accessors.
    pub fn true_positives(&self) -> u64 {
        self.confusion[0]
    }
    /// False positives.
    pub fn false_positives(&self) -> u64 {
        self.confusion[1]
    }
    /// False negatives.
    pub fn false_negatives(&self) -> u64 {
        self.confusion[2]
    }
    /// True negatives.
    pub fn true_negatives(&self) -> u64 {
        self.confusion[3]
    }
}

/// Evaluates `index` against a labeled trace.
pub fn evaluate(index: &LinearIndex, trace: &[LabeledSample]) -> Metrics {
    let (mut tp, mut fp, mut fn_, mut tn) = (0u64, 0u64, 0u64, 0u64);
    for (x, label) in trace {
        match (index.classify(x), *label) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => tn += 1,
        }
    }
    let total = (tp + fp + fn_ + tn) as f64;
    Metrics {
        accuracy: if total > 0.0 { (tp + tn) as f64 / total } else { 0.0 },
        precision: if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 0.0 },
        recall: if tp + fn_ > 0 { tp as f64 / (tp + fn_) as f64 } else { 0.0 },
        confusion: [tp, fp, fn_, tn],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable toy problem: stressed iff x0 + x1 > 1.
    fn separable(n: usize) -> Vec<LabeledSample> {
        (0..n)
            .map(|i| {
                let a = (i % 10) as f64 / 10.0;
                let b = ((i / 10) % 10) as f64 / 10.0;
                (vec![a, b], a + b > 1.0)
            })
            .collect()
    }

    #[test]
    fn perceptron_converges_on_separable_data() {
        let trace = separable(100);
        let idx = perceptron_train(&trace, TrainConfig { learning_rate: 0.1, epochs: 200 });
        let m = evaluate(&idx, &trace);
        assert_eq!(m.accuracy, 1.0, "separable data must be learned exactly: {m:?}");
    }

    #[test]
    fn lms_fits_separable_data_well() {
        let trace = separable(100);
        let idx = lms_train(&trace, TrainConfig { learning_rate: 0.05, epochs: 100 });
        let m = evaluate(&idx, &trace);
        assert!(m.accuracy > 0.95, "{m:?}");
    }

    #[test]
    fn learned_weights_reflect_informative_features() {
        // Feature 0 is pure noise; feature 1 decides the label.
        let trace: Vec<LabeledSample> = (0..200)
            .map(|i| {
                let noise = ((i * 7) % 13) as f64 / 13.0;
                let signal = (i % 2) as f64;
                (vec![noise, signal], signal > 0.5)
            })
            .collect();
        let idx = lms_train(&trace, TrainConfig::default());
        assert!(
            idx.weights()[1].abs() > idx.weights()[0].abs() * 2.0,
            "signal weight should dominate: {:?}",
            idx.weights()
        );
    }

    #[test]
    fn metrics_arithmetic() {
        let idx = LinearIndex::new(vec![1.0], 0.5);
        let trace = vec![
            (vec![1.0], true),  // tp
            (vec![1.0], false), // fp
            (vec![0.0], true),  // fn
            (vec![0.0], false), // tn
        ];
        let m = evaluate(&idx, &trace);
        assert_eq!(m.confusion, [1, 1, 1, 1]);
        assert_eq!(m.accuracy, 0.5);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.true_positives(), 1);
        assert_eq!(m.false_positives(), 1);
        assert_eq!(m.false_negatives(), 1);
        assert_eq!(m.true_negatives(), 1);
    }

    #[test]
    fn empty_trace_is_safe() {
        let idx = perceptron_train(&[], TrainConfig::default());
        assert!(idx.weights().is_empty());
        let m = evaluate(&idx, &[]);
        assert_eq!(m.accuracy, 0.0);
    }
}
