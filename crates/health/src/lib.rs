//! Health functions: delegated evaluation of network health.
//!
//! Chapter 4 of the thesis builds *network health* applications on MbD:
//! delegated agents observe raw device counters at high frequency,
//! convert them into **symptoms** (utilization, collision rate, broadcast
//! rate, error rate — the observers demonstrated live at InterOp'91 over
//! a Synoptics concentrator MIB), combine symptoms into an **index
//! function** (a weighted sum, after Samuel's checkers evaluation
//! functions), and report only classifications or threshold crossings to
//! the manager.
//!
//! The weights can be *learned*: the thesis proposes perceptron training
//! and the LMS (Widrow–Hoff) rule over labeled episodes. This crate
//! implements the whole pipeline:
//!
//! - [`observer`]: counter sampling and the four InterOp observers;
//! - [`index`]: linear index functions with thresholds;
//! - [`train`]: perceptron and LMS training plus evaluation metrics;
//! - [`scenario`]: a seeded synthetic subnet workload with labeled
//!   stress episodes (congestion, broadcast storms, error bursts) that
//!   drives a [`MibStore`](snmp::MibStore) exactly like device
//!   instrumentation would, providing ground truth for E5.
//!
//! # Examples
//!
//! ```
//! use health::index::LinearIndex;
//! use health::train::{lms_train, evaluate, TrainConfig};
//! use health::scenario::{Scenario, ScenarioConfig};
//!
//! // Generate a labeled trace and learn an index function.
//! let mut scenario = Scenario::new(ScenarioConfig::default(), 42);
//! let trace = scenario.labeled_trace(500);
//! let index = lms_train(&trace, TrainConfig::default());
//! let metrics = evaluate(&index, &trace);
//! assert!(metrics.accuracy > 0.8, "learned index should fit its trace");
//! ```

pub mod index;
pub mod observer;
pub mod scenario;
pub mod train;

pub use index::LinearIndex;
pub use observer::{ConcentratorObserver, Symptoms};
pub use scenario::{Scenario, ScenarioConfig, StressKind};
pub use train::{evaluate, lms_train, perceptron_train, Metrics, TrainConfig};
