//! Symptom observers over concentrator counters.
//!
//! The InterOp'91 demo computed, per sampling interval, from the private
//! Synoptics MIB: network **utilization** (`s3EnetConcRxOk` byte delta
//! over the maximum bytes the 10 Mb/s segment could carry), the
//! **collision rate** (collisions per frame), and the **broadcast rate**
//! (broadcast frames per frame). An **error rate** symptom (`ifInErrors`
//! style) completes the vector used by the health index.

use snmp::{mib2, MibStore};

/// One symptom vector: all rates normalized to `[0, 1]` (clamped).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Symptoms {
    /// Byte-rate over segment capacity.
    pub utilization: f64,
    /// Collisions per frame.
    pub collision_rate: f64,
    /// Broadcast frames per frame.
    pub broadcast_rate: f64,
    /// Errored frames per frame.
    pub error_rate: f64,
}

impl Symptoms {
    /// The symptom vector as a feature slice (for index functions).
    pub fn as_vec(&self) -> Vec<f64> {
        vec![self.utilization, self.collision_rate, self.broadcast_rate, self.error_rate]
    }

    /// Feature names, aligned with [`Symptoms::as_vec`].
    pub fn feature_names() -> [&'static str; 4] {
        ["utilization", "collision_rate", "broadcast_rate", "error_rate"]
    }
}

/// Samples the concentrator counters of a [`MibStore`] and converts
/// deltas into [`Symptoms`] — the delegated observer of the InterOp demo.
///
/// The observer is stateful: each call to [`ConcentratorObserver::sample`]
/// diffs against the previous call, exactly like the thesis's
/// `U(t) = (rxOk(t) - rxOk(t0)) / ((t - t0) * 10^7 / 8)` computation.
#[derive(Debug, Clone)]
pub struct ConcentratorObserver {
    capacity_bytes_per_sec: f64,
    prev: Option<Counters>,
    /// Errored-frame counter OID (defaults to `ifInErrors.1`).
    error_oid: ber::Oid,
    /// `health.sample` latency, when instrumented.
    timer: Option<mbd_telemetry::Timer>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Counters {
    ticks: u64,
    rx_ok: u32,
    collisions: u32,
    broadcasts: u32,
    frames: u32,
    errors: u32,
}

fn read_u32(mib: &MibStore, oid: &ber::Oid) -> u32 {
    mib.get(oid).and_then(|v| v.as_i64()).and_then(|v| u32::try_from(v).ok()).unwrap_or(0)
}

impl ConcentratorObserver {
    /// An observer for a segment of `capacity_bps` bits/second
    /// (10 Mb/s for the InterOp Ethernet).
    pub fn new(capacity_bps: u64) -> ConcentratorObserver {
        ConcentratorObserver {
            capacity_bytes_per_sec: capacity_bps as f64 / 8.0,
            prev: None,
            error_oid: mib2::if_in_errors(1),
            timer: None,
        }
    }

    /// Records each [`sample`](ConcentratorObserver::sample) call's
    /// latency into `telemetry` as `health.sample`.
    #[must_use]
    pub fn instrument(mut self, telemetry: &mbd_telemetry::Telemetry) -> ConcentratorObserver {
        self.timer = Some(telemetry.timer("health.sample"));
        self
    }

    fn read(mib: &MibStore, ticks: u64, error_oid: &ber::Oid) -> Counters {
        Counters {
            ticks,
            rx_ok: read_u32(mib, &mib2::s3_enet_conc_rx_ok()),
            collisions: read_u32(mib, &mib2::s3_enet_conc_coll()),
            broadcasts: read_u32(mib, &mib2::s3_enet_conc_bcast()),
            frames: read_u32(mib, &mib2::s3_enet_conc_frames()),
            errors: read_u32(mib, error_oid),
        }
    }

    /// Samples the counters at server time `ticks` (hundredths of a
    /// second) and returns symptoms for the elapsed interval, or `None`
    /// on the first call (nothing to diff against) and for zero-length
    /// intervals.
    pub fn sample(&mut self, mib: &MibStore, ticks: u64) -> Option<Symptoms> {
        let _span = self.timer.as_ref().map(mbd_telemetry::Timer::start);
        let cur = Self::read(mib, ticks, &self.error_oid);
        let prev = self.prev.replace(cur);
        let prev = prev?;
        if cur.ticks <= prev.ticks {
            return None;
        }
        let dt = (cur.ticks - prev.ticks) as f64 / 100.0;
        let d_bytes = cur.rx_ok.wrapping_sub(prev.rx_ok) as f64;
        let d_coll = cur.collisions.wrapping_sub(prev.collisions) as f64;
        let d_bcast = cur.broadcasts.wrapping_sub(prev.broadcasts) as f64;
        let d_frames = cur.frames.wrapping_sub(prev.frames) as f64;
        let d_errs = cur.errors.wrapping_sub(prev.errors) as f64;
        let per_frame = |x: f64| if d_frames > 0.0 { (x / d_frames).clamp(0.0, 1.0) } else { 0.0 };
        Some(Symptoms {
            utilization: (d_bytes / (dt * self.capacity_bytes_per_sec)).clamp(0.0, 1.0),
            collision_rate: per_frame(d_coll),
            broadcast_rate: per_frame(d_bcast),
            error_rate: per_frame(d_errs),
        })
    }

    /// Forgets the previous sample (e.g. after a counter reset).
    pub fn reset(&mut self) {
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mib() -> MibStore {
        let m = MibStore::new();
        mib2::install_concentrator(&m).unwrap();
        mib2::install_interfaces(&m, 1, 10_000_000).unwrap();
        m
    }

    #[test]
    fn first_sample_yields_none() {
        let m = mib();
        let mut obs = ConcentratorObserver::new(10_000_000);
        assert_eq!(obs.sample(&m, 0), None);
        assert!(obs.sample(&m, 100).is_some());
    }

    #[test]
    fn utilization_matches_the_thesis_formula() {
        let m = mib();
        let mut obs = ConcentratorObserver::new(10_000_000);
        obs.sample(&m, 0);
        // 625,000 bytes in 1 s on a 1.25e6 B/s segment = 50% utilization.
        m.counter_add(&mib2::s3_enet_conc_rx_ok(), 625_000).unwrap();
        let s = obs.sample(&m, 100).unwrap();
        assert!((s.utilization - 0.5).abs() < 1e-9, "got {}", s.utilization);
    }

    #[test]
    fn per_frame_rates() {
        let m = mib();
        let mut obs = ConcentratorObserver::new(10_000_000);
        obs.sample(&m, 0);
        m.counter_add(&mib2::s3_enet_conc_frames(), 1000).unwrap();
        m.counter_add(&mib2::s3_enet_conc_coll(), 100).unwrap();
        m.counter_add(&mib2::s3_enet_conc_bcast(), 250).unwrap();
        m.counter_add(&mib2::if_in_errors(1), 10).unwrap();
        let s = obs.sample(&m, 100).unwrap();
        assert!((s.collision_rate - 0.1).abs() < 1e-9);
        assert!((s.broadcast_rate - 0.25).abs() < 1e-9);
        assert!((s.error_rate - 0.01).abs() < 1e-9);
    }

    #[test]
    fn counter_wrap_is_handled() {
        let m = mib();
        let mut obs = ConcentratorObserver::new(10_000_000);
        // Push the counter near the 2^32 wrap.
        m.counter_add(&mib2::s3_enet_conc_rx_ok(), u64::from(u32::MAX) - 999).unwrap();
        obs.sample(&m, 0);
        m.counter_add(&mib2::s3_enet_conc_rx_ok(), 2_000).unwrap(); // wraps
        let s = obs.sample(&m, 100).unwrap();
        // Delta is 2000 bytes over 1 s: tiny but positive utilization.
        assert!(s.utilization > 0.0 && s.utilization < 0.01);
    }

    #[test]
    fn zero_interval_and_zero_frames_are_safe() {
        let m = mib();
        let mut obs = ConcentratorObserver::new(10_000_000);
        obs.sample(&m, 50);
        assert_eq!(obs.sample(&m, 50), None, "no time elapsed");
        let s = obs.sample(&m, 100).unwrap();
        assert_eq!(s.collision_rate, 0.0, "no frames, no rate");
    }

    #[test]
    fn reset_forgets_history() {
        let m = mib();
        let mut obs = ConcentratorObserver::new(10_000_000);
        obs.sample(&m, 0);
        obs.reset();
        assert_eq!(obs.sample(&m, 100), None);
    }

    #[test]
    fn symptoms_vectorize_in_declared_order() {
        let s = Symptoms {
            utilization: 0.1,
            collision_rate: 0.2,
            broadcast_rate: 0.3,
            error_rate: 0.4,
        };
        assert_eq!(s.as_vec(), vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(Symptoms::feature_names().len(), 4);
    }
}
