//! Property tests: every `BerValue` the crate can produce survives an
//! encode/decode round trip, `encoded_len` is exact, and the decoder never
//! panics on arbitrary input.

use ber::{BerValue, Oid};
use proptest::prelude::*;

fn arb_oid() -> impl Strategy<Value = Oid> {
    (0u32..3, 0u32..40, proptest::collection::vec(any::<u32>(), 0..10)).prop_map(
        |(a0, a1, rest)| {
            let mut arcs = vec![a0, a1];
            arcs.extend(rest);
            Oid::from(arcs)
        },
    )
}

fn arb_leaf() -> impl Strategy<Value = BerValue> {
    prop_oneof![
        any::<i64>().prop_map(BerValue::Integer),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(BerValue::OctetString),
        Just(BerValue::Null),
        arb_oid().prop_map(BerValue::ObjectId),
        any::<[u8; 4]>().prop_map(BerValue::IpAddress),
        any::<u32>().prop_map(BerValue::Counter32),
        any::<u32>().prop_map(BerValue::Gauge32),
        any::<u32>().prop_map(BerValue::TimeTicks),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(BerValue::Opaque),
    ]
}

fn arb_value() -> impl Strategy<Value = BerValue> {
    arb_leaf().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(BerValue::Sequence),
            (0u8..31, proptest::collection::vec(inner, 0..4))
                .prop_map(|(n, items)| BerValue::ContextConstructed(n, items)),
        ]
    })
}

proptest! {
    #[test]
    fn round_trip(v in arb_value()) {
        let bytes = ber::encode(&v);
        let decoded = ber::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, v);
    }

    #[test]
    fn encoded_len_exact(v in arb_value()) {
        prop_assert_eq!(v.encoded_len(), ber::encode(&v).len());
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ber::decode(&bytes);
    }

    #[test]
    fn oid_text_round_trip(o in arb_oid()) {
        let s = o.to_string();
        let parsed: Oid = s.parse().unwrap();
        prop_assert_eq!(parsed, o);
    }

    #[test]
    fn oid_order_is_component_lexicographic(a in arb_oid(), b in arb_oid()) {
        let ord = a.cmp(&b);
        prop_assert_eq!(ord, a.as_slice().cmp(b.as_slice()));
    }
}
