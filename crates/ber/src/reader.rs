use crate::{BerError, BerValue, Class, Oid, Tag};

/// An incremental BER decoder over a byte slice.
///
/// The reader validates definite lengths, rejects the indefinite form and
/// high tag numbers, and offers both typed accessors (`read_i64`,
/// `read_oid`, ...) and a dynamic [`BerReader::read_value`].
#[derive(Debug)]
pub struct BerReader<'a> {
    input: &'a [u8],
    pos: usize,
    /// Exclusive end of the region this reader may consume (for nested
    /// constructed values).
    end: usize,
}

impl<'a> BerReader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a [u8]) -> BerReader<'a> {
        BerReader { input, pos: 0, end: input.len() }
    }

    /// Bytes remaining in the current scope.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Whether the current scope is fully consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.end
    }

    /// Errors unless the current scope is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`BerError::TrailingBytes`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), BerError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(BerError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BerError> {
        if self.remaining() < n {
            return Err(BerError::UnexpectedEof);
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn peek_byte(&self) -> Result<u8, BerError> {
        if self.at_end() {
            Err(BerError::UnexpectedEof)
        } else {
            Ok(self.input[self.pos])
        }
    }

    /// Peeks at the tag of the next value without consuming anything.
    ///
    /// # Errors
    ///
    /// Returns an error at end of input or on a high tag number.
    pub fn peek_tag(&self) -> Result<Tag, BerError> {
        let id = self.peek_byte()?;
        if id & 0x1F == 0x1F {
            return Err(BerError::HighTagNumber);
        }
        Ok(Tag::from_identifier_octet(id).0)
    }

    /// Reads a tag-length header, returning (tag, constructed, content-len).
    fn read_header(&mut self) -> Result<(Tag, bool, usize), BerError> {
        let id = self.take(1)?[0];
        if id & 0x1F == 0x1F {
            return Err(BerError::HighTagNumber);
        }
        let (tag, constructed) = Tag::from_identifier_octet(id);
        let first = self.take(1)?[0];
        let len = if first < 0x80 {
            usize::from(first)
        } else if first == 0x80 {
            return Err(BerError::IndefiniteLength);
        } else {
            let n = usize::from(first & 0x7F);
            if n > std::mem::size_of::<usize>() {
                return Err(BerError::BadLength);
            }
            let mut len = 0usize;
            for &b in self.take(n)? {
                len = len.checked_shl(8).ok_or(BerError::BadLength)? | usize::from(b);
            }
            len
        };
        if len > self.remaining() {
            return Err(BerError::UnexpectedEof);
        }
        Ok((tag, constructed, len))
    }

    /// Reads the header of a primitive value with the given tag and returns
    /// its content octets.
    fn read_primitive(&mut self, expected: Tag) -> Result<&'a [u8], BerError> {
        let (tag, constructed, len) = self.read_header()?;
        if tag != expected {
            return Err(BerError::TagMismatch { expected, found: tag });
        }
        if constructed {
            return Err(BerError::WrongConstruction);
        }
        self.take(len)
    }

    /// Reads a universal INTEGER.
    ///
    /// # Errors
    ///
    /// Errors on tag mismatch or an integer wider than 64 bits.
    pub fn read_i64(&mut self) -> Result<i64, BerError> {
        self.read_tagged_i64(Tag::INTEGER)
    }

    /// Reads an INTEGER under an arbitrary primitive tag.
    ///
    /// # Errors
    ///
    /// Errors on tag mismatch or malformed content.
    pub fn read_tagged_i64(&mut self, tag: Tag) -> Result<i64, BerError> {
        let content = self.read_primitive(tag)?;
        decode_i64(content)
    }

    /// Reads an unsigned 32-bit quantity under `tag` (Counter32 etc.).
    ///
    /// # Errors
    ///
    /// Errors on tag mismatch, negative content, or overflow.
    pub fn read_tagged_u32(&mut self, tag: Tag) -> Result<u32, BerError> {
        let content = self.read_primitive(tag)?;
        let v = decode_i64(content)?;
        u32::try_from(v).map_err(|_| BerError::BadInteger)
    }

    /// Reads a universal OCTET STRING, borrowing the content.
    ///
    /// # Errors
    ///
    /// Errors on tag mismatch.
    pub fn read_octet_string(&mut self) -> Result<&'a [u8], BerError> {
        self.read_primitive(Tag::OCTET_STRING)
    }

    /// Reads a universal NULL.
    ///
    /// # Errors
    ///
    /// Errors on tag mismatch or nonempty content.
    pub fn read_null(&mut self) -> Result<(), BerError> {
        let content = self.read_primitive(Tag::NULL)?;
        if content.is_empty() {
            Ok(())
        } else {
            Err(BerError::BadLength)
        }
    }

    /// Reads an OBJECT IDENTIFIER.
    ///
    /// # Errors
    ///
    /// Errors on tag mismatch or malformed arcs.
    pub fn read_oid(&mut self) -> Result<Oid, BerError> {
        let content = self.read_primitive(Tag::OID)?;
        Oid::decode_content(content)
    }

    /// Reads a SEQUENCE, handing `f` a reader scoped to its contents.
    ///
    /// # Errors
    ///
    /// Errors on tag mismatch, on `f`'s error, or if `f` leaves bytes
    /// unconsumed.
    pub fn read_sequence<T, F>(&mut self, f: F) -> Result<T, BerError>
    where
        F: FnOnce(&mut BerReader<'a>) -> Result<T, BerError>,
    {
        self.read_constructed(Tag::SEQUENCE, f)
    }

    /// Reads a constructed value under `tag`, scoping `f` to its contents.
    ///
    /// # Errors
    ///
    /// Errors on tag mismatch, if the value is primitive, on `f`'s error, or
    /// if `f` leaves bytes unconsumed.
    pub fn read_constructed<T, F>(&mut self, expected: Tag, f: F) -> Result<T, BerError>
    where
        F: FnOnce(&mut BerReader<'a>) -> Result<T, BerError>,
    {
        let (tag, constructed, len) = self.read_header()?;
        if tag != expected {
            return Err(BerError::TagMismatch { expected, found: tag });
        }
        if !constructed {
            return Err(BerError::WrongConstruction);
        }
        let mut inner = BerReader { input: self.input, pos: self.pos, end: self.pos + len };
        let out = f(&mut inner)?;
        inner.expect_end()?;
        self.pos += len;
        Ok(out)
    }

    /// Returns the raw bytes of the next whole TLV (tag + length +
    /// content) without interpreting it, advancing past it. Used to
    /// extract an embedded payload for digest verification before
    /// decoding it.
    ///
    /// # Errors
    ///
    /// Errors on a malformed header or truncated content.
    pub fn read_raw_value(&mut self) -> Result<&'a [u8], BerError> {
        let start = self.pos;
        let (_, _, len) = self.read_header()?;
        self.pos += len;
        Ok(&self.input[start..self.pos])
    }

    /// Reads the next value dynamically as a [`BerValue`].
    ///
    /// # Errors
    ///
    /// Errors on any malformed or unsupported encoding.
    pub fn read_value(&mut self) -> Result<BerValue, BerError> {
        let (tag, constructed, len) = self.read_header()?;
        if constructed {
            let mut inner = BerReader { input: self.input, pos: self.pos, end: self.pos + len };
            let mut items = Vec::new();
            while !inner.at_end() {
                items.push(inner.read_value()?);
            }
            self.pos += len;
            return match (tag.class(), tag.number()) {
                (Class::Universal, 16) => Ok(BerValue::Sequence(items)),
                (Class::Context, n) => Ok(BerValue::ContextConstructed(n, items)),
                _ => Err(BerError::WrongConstruction),
            };
        }
        let content = self.take(len)?;
        match tag {
            Tag::INTEGER => decode_i64(content).map(BerValue::Integer),
            Tag::OCTET_STRING => Ok(BerValue::OctetString(content.to_vec())),
            Tag::NULL => {
                if content.is_empty() {
                    Ok(BerValue::Null)
                } else {
                    Err(BerError::BadLength)
                }
            }
            Tag::OID => Oid::decode_content(content).map(BerValue::ObjectId),
            Tag::IP_ADDRESS => {
                let arr: [u8; 4] = content.try_into().map_err(|_| BerError::BadLength)?;
                Ok(BerValue::IpAddress(arr))
            }
            Tag::COUNTER32 | Tag::GAUGE32 | Tag::TIME_TICKS => {
                let v = decode_i64(content)?;
                let v = u32::try_from(v).map_err(|_| BerError::BadInteger)?;
                Ok(match tag {
                    Tag::COUNTER32 => BerValue::Counter32(v),
                    Tag::GAUGE32 => BerValue::Gauge32(v),
                    _ => BerValue::TimeTicks(v),
                })
            }
            Tag::OPAQUE => Ok(BerValue::Opaque(content.to_vec())),
            other => Err(BerError::TagMismatch { expected: Tag::SEQUENCE, found: other }),
        }
    }
}

fn decode_i64(content: &[u8]) -> Result<i64, BerError> {
    if content.is_empty() || content.len() > 9 {
        return Err(BerError::BadInteger);
    }
    if content.len() == 9 && content[0] != 0 {
        return Err(BerError::BadInteger);
    }
    let mut v: i64 = if content[0] & 0x80 != 0 { -1 } else { 0 };
    for &b in content {
        v = (v << 8) | i64::from(b);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BerWriter;

    #[test]
    fn typed_round_trip() {
        let mut w = BerWriter::new();
        w.write_i64(-300);
        w.write_octet_string(b"hello");
        w.write_null();
        w.write_oid(&"1.3.6.1".parse().unwrap());
        w.write_tagged_u32(Tag::TIME_TICKS, 54321);
        let bytes = w.into_bytes();

        let mut r = BerReader::new(&bytes);
        assert_eq!(r.read_i64().unwrap(), -300);
        assert_eq!(r.read_octet_string().unwrap(), b"hello");
        r.read_null().unwrap();
        assert_eq!(r.read_oid().unwrap().to_string(), "1.3.6.1");
        assert_eq!(r.read_tagged_u32(Tag::TIME_TICKS).unwrap(), 54321);
        assert!(r.at_end());
    }

    #[test]
    fn tag_mismatch_reported() {
        let mut w = BerWriter::new();
        w.write_null();
        let bytes = w.into_bytes();
        let err = BerReader::new(&bytes).read_i64().unwrap_err();
        assert_eq!(err, BerError::TagMismatch { expected: Tag::INTEGER, found: Tag::NULL });
    }

    #[test]
    fn indefinite_length_rejected() {
        // SEQUENCE with indefinite length marker 0x80.
        let err = BerReader::new(&[0x30, 0x80, 0x00, 0x00]).read_value().unwrap_err();
        assert_eq!(err, BerError::IndefiniteLength);
    }

    #[test]
    fn truncated_content_rejected() {
        let err = BerReader::new(&[0x04, 0x05, b'a']).read_value().unwrap_err();
        assert_eq!(err, BerError::UnexpectedEof);
    }

    #[test]
    fn declared_length_beyond_scope_rejected() {
        // Outer sequence declares 3 bytes but inner integer claims 4.
        let err = BerReader::new(&[0x30, 0x03, 0x02, 0x04, 0x01]).read_value().unwrap_err();
        assert_eq!(err, BerError::UnexpectedEof);
    }

    #[test]
    fn inner_reader_must_consume_scope() {
        let mut w = BerWriter::new();
        w.write_sequence(|w| {
            w.write_i64(1);
            w.write_i64(2);
        });
        let bytes = w.into_bytes();
        let mut r = BerReader::new(&bytes);
        let err = r.read_sequence(|r| r.read_i64()).unwrap_err();
        assert_eq!(err, BerError::TrailingBytes);
    }

    #[test]
    fn nonminimal_wide_integer_rejected() {
        // 10 content octets is wider than i64 allows.
        let err =
            BerReader::new(&[0x02, 0x0A, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]).read_i64().unwrap_err();
        assert_eq!(err, BerError::BadInteger);
    }

    #[test]
    fn u32_range_enforced() {
        let mut w = BerWriter::new();
        w.write_tagged_i64(Tag::COUNTER32, -5);
        let bytes = w.into_bytes();
        let err = BerReader::new(&bytes).read_tagged_u32(Tag::COUNTER32).unwrap_err();
        assert_eq!(err, BerError::BadInteger);
    }

    #[test]
    fn peek_tag_does_not_consume() {
        let mut w = BerWriter::new();
        w.write_i64(7);
        let bytes = w.into_bytes();
        let mut r = BerReader::new(&bytes);
        assert_eq!(r.peek_tag().unwrap(), Tag::INTEGER);
        assert_eq!(r.read_i64().unwrap(), 7);
    }

    #[test]
    fn context_constructed_value_round_trip() {
        let v = BerValue::ContextConstructed(
            2,
            vec![BerValue::Integer(1), BerValue::OctetString(b"x".to_vec())],
        );
        let bytes = crate::encode(&v);
        assert_eq!(bytes[0], 0xA2);
        assert_eq!(crate::decode(&bytes).unwrap(), v);
    }

    #[test]
    fn empty_sequence_round_trip() {
        let v = BerValue::Sequence(vec![]);
        assert_eq!(crate::decode(&crate::encode(&v)).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_rejected_by_decode() {
        let mut bytes = crate::encode(&BerValue::Null);
        bytes.push(0x00);
        assert_eq!(crate::decode(&bytes).unwrap_err(), BerError::TrailingBytes);
    }
}
