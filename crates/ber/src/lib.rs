//! A small ASN.1 Basic Encoding Rules (BER) implementation.
//!
//! This crate implements the subset of ITU-T X.690 BER needed by the SNMPv1
//! message codec and by the Remote Delegation Service (RDS) message headers,
//! mirroring the 1991 MbD prototype, which "uses the ASN.1 Basic Encoding
//! Rules to encode RDS message headers".
//!
//! Supported universal types: `INTEGER`, `OCTET STRING`, `NULL`,
//! `OBJECT IDENTIFIER`, and `SEQUENCE`; plus the SNMP application types
//! `IpAddress`, `Counter32`, `Gauge32`, `TimeTicks` and `Opaque`, and
//! context-tagged constructed types (used for SNMP PDUs).
//!
//! Only *definite* lengths are produced and accepted, as required by the
//! SNMP mapping of BER.
//!
//! # Examples
//!
//! ```
//! use ber::{BerWriter, BerReader, Oid};
//!
//! let mut w = BerWriter::new();
//! w.write_sequence(|w| {
//!     w.write_i64(42);
//!     w.write_octet_string(b"public");
//!     w.write_oid(&Oid::from_slice(&[1, 3, 6, 1, 2, 1, 1, 1, 0]));
//! });
//! let bytes = w.into_bytes();
//!
//! let mut r = BerReader::new(&bytes);
//! r.read_sequence(|r| {
//!     assert_eq!(r.read_i64()?, 42);
//!     assert_eq!(r.read_octet_string()?, b"public");
//!     assert_eq!(r.read_oid()?.as_slice(), &[1, 3, 6, 1, 2, 1, 1, 1, 0]);
//!     Ok(())
//! }).unwrap();
//! ```

mod error;
mod oid;
mod reader;
mod tag;
mod value;
mod writer;

pub use error::BerError;
pub use oid::{Oid, ParseOidError};
pub use reader::BerReader;
pub use tag::{Class, Tag};
pub use value::BerValue;
pub use writer::BerWriter;

/// Convenience: encode a single [`BerValue`] to bytes.
///
/// # Examples
///
/// ```
/// let bytes = ber::encode(&ber::BerValue::Integer(5));
/// assert_eq!(bytes, vec![0x02, 0x01, 0x05]);
/// ```
pub fn encode(value: &BerValue) -> Vec<u8> {
    let mut w = BerWriter::new();
    w.write_value(value);
    w.into_bytes()
}

/// Convenience: decode a single [`BerValue`] from bytes, requiring that the
/// whole input is consumed.
///
/// # Errors
///
/// Returns [`BerError`] if the input is not a single well-formed BER value.
///
/// # Examples
///
/// ```
/// let v = ber::decode(&[0x02, 0x01, 0x05]).unwrap();
/// assert_eq!(v, ber::BerValue::Integer(5));
/// ```
pub fn decode(bytes: &[u8]) -> Result<BerValue, BerError> {
    let mut r = BerReader::new(bytes);
    let v = r.read_value()?;
    r.expect_end()?;
    Ok(v)
}
