use crate::{Oid, Tag};
use std::fmt;

/// A decoded BER value: the dynamic counterpart of the typed reader/writer
/// API, used where a message field may hold any SNMP/RDS type (for example a
/// VarBind value).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BerValue {
    /// Universal INTEGER (two's-complement, up to 64 bits here).
    Integer(i64),
    /// Universal OCTET STRING.
    OctetString(Vec<u8>),
    /// Universal NULL.
    Null,
    /// Universal OBJECT IDENTIFIER.
    ObjectId(Oid),
    /// Universal SEQUENCE of nested values.
    Sequence(Vec<BerValue>),
    /// SNMP IpAddress (application 0): four octets.
    IpAddress([u8; 4]),
    /// SNMP Counter32 (application 1): monotonically wrapping counter.
    Counter32(u32),
    /// SNMP Gauge32 (application 2): non-wrapping gauge.
    Gauge32(u32),
    /// SNMP TimeTicks (application 3): hundredths of a second.
    TimeTicks(u32),
    /// SNMP Opaque (application 4): arbitrary bytes.
    Opaque(Vec<u8>),
    /// A constructed value under a context-specific tag (SNMP PDUs).
    ContextConstructed(u8, Vec<BerValue>),
}

impl BerValue {
    /// The BER tag this value encodes under.
    pub fn tag(&self) -> Tag {
        match self {
            BerValue::Integer(_) => Tag::INTEGER,
            BerValue::OctetString(_) => Tag::OCTET_STRING,
            BerValue::Null => Tag::NULL,
            BerValue::ObjectId(_) => Tag::OID,
            BerValue::Sequence(_) => Tag::SEQUENCE,
            BerValue::IpAddress(_) => Tag::IP_ADDRESS,
            BerValue::Counter32(_) => Tag::COUNTER32,
            BerValue::Gauge32(_) => Tag::GAUGE32,
            BerValue::TimeTicks(_) => Tag::TIME_TICKS,
            BerValue::Opaque(_) => Tag::OPAQUE,
            BerValue::ContextConstructed(n, _) => Tag::context(*n),
        }
    }

    /// Returns the integer payload if this is any integral variant
    /// (INTEGER, Counter32, Gauge32 or TimeTicks).
    ///
    /// # Examples
    ///
    /// ```
    /// use ber::BerValue;
    /// assert_eq!(BerValue::Counter32(7).as_i64(), Some(7));
    /// assert_eq!(BerValue::Null.as_i64(), None);
    /// ```
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            BerValue::Integer(v) => Some(*v),
            BerValue::Counter32(v) | BerValue::Gauge32(v) | BerValue::TimeTicks(v) => {
                Some(i64::from(*v))
            }
            _ => None,
        }
    }

    /// Returns the byte payload if this is an OCTET STRING or Opaque.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            BerValue::OctetString(b) | BerValue::Opaque(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the OID payload if this is an OBJECT IDENTIFIER.
    pub fn as_oid(&self) -> Option<&Oid> {
        match self {
            BerValue::ObjectId(o) => Some(o),
            _ => None,
        }
    }

    /// Number of bytes this value occupies when encoded (tag + length +
    /// content). Exact, computed without encoding; used by the traffic
    /// experiments to account message sizes.
    pub fn encoded_len(&self) -> usize {
        let content = self.content_len();
        1 + length_of_length(content) + content
    }

    fn content_len(&self) -> usize {
        match self {
            BerValue::Integer(v) => crate::writer::integer_content_len(*v),
            BerValue::OctetString(b) | BerValue::Opaque(b) => b.len(),
            BerValue::Null => 0,
            BerValue::ObjectId(o) => o.encode_content().len(),
            BerValue::IpAddress(_) => 4,
            BerValue::Counter32(v) | BerValue::Gauge32(v) | BerValue::TimeTicks(v) => {
                crate::writer::unsigned_content_len(*v)
            }
            BerValue::Sequence(items) | BerValue::ContextConstructed(_, items) => {
                items.iter().map(BerValue::encoded_len).sum()
            }
        }
    }
}

/// Number of bytes needed to encode a definite length.
pub(crate) fn length_of_length(content_len: usize) -> usize {
    if content_len < 128 {
        1
    } else {
        1 + (usize::BITS as usize / 8 - (content_len.leading_zeros() as usize) / 8)
    }
}

impl fmt::Display for BerValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BerValue::Integer(v) => write!(f, "{v}"),
            BerValue::OctetString(b) => match std::str::from_utf8(b) {
                Ok(s) => write!(f, "{s:?}"),
                Err(_) => write!(f, "0x{}", hex(b)),
            },
            BerValue::Null => write!(f, "NULL"),
            BerValue::ObjectId(o) => write!(f, "{o}"),
            BerValue::IpAddress(a) => write!(f, "{}.{}.{}.{}", a[0], a[1], a[2], a[3]),
            BerValue::Counter32(v) => write!(f, "Counter32({v})"),
            BerValue::Gauge32(v) => write!(f, "Gauge32({v})"),
            BerValue::TimeTicks(v) => write!(f, "TimeTicks({v})"),
            BerValue::Opaque(b) => write!(f, "Opaque(0x{})", hex(b)),
            BerValue::Sequence(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
            BerValue::ContextConstructed(n, items) => {
                write!(f, "[{n}]{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl From<i64> for BerValue {
    fn from(v: i64) -> BerValue {
        BerValue::Integer(v)
    }
}

impl From<&str> for BerValue {
    fn from(s: &str) -> BerValue {
        BerValue::OctetString(s.as_bytes().to_vec())
    }
}

impl From<Oid> for BerValue {
    fn from(o: Oid) -> BerValue {
        BerValue::ObjectId(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_variants() {
        assert_eq!(BerValue::Integer(1).tag(), Tag::INTEGER);
        assert_eq!(BerValue::Null.tag(), Tag::NULL);
        assert_eq!(BerValue::Counter32(1).tag(), Tag::COUNTER32);
        assert_eq!(BerValue::ContextConstructed(2, vec![]).tag(), Tag::context(2));
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        let values = vec![
            BerValue::Integer(0),
            BerValue::Integer(-129),
            BerValue::Integer(i64::MAX),
            BerValue::OctetString(vec![0u8; 300]),
            BerValue::Null,
            BerValue::ObjectId("1.3.6.1.2.1.2.2.1.10.1".parse().unwrap()),
            BerValue::IpAddress([192, 168, 0, 1]),
            BerValue::Counter32(u32::MAX),
            BerValue::Gauge32(0),
            BerValue::TimeTicks(123_456),
            BerValue::Opaque(vec![1, 2, 3]),
            BerValue::Sequence(vec![
                BerValue::Integer(5),
                BerValue::OctetString(b"public".to_vec()),
                BerValue::Sequence(vec![BerValue::Null]),
            ]),
            BerValue::ContextConstructed(0, vec![BerValue::Integer(1)]),
        ];
        for v in values {
            assert_eq!(v.encoded_len(), crate::encode(&v).len(), "value {v:?}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(BerValue::from("hi").to_string(), "\"hi\"");
        assert_eq!(BerValue::IpAddress([10, 0, 0, 1]).to_string(), "10.0.0.1");
        assert_eq!(
            BerValue::Sequence(vec![BerValue::Integer(1), BerValue::Null]).to_string(),
            "{1, NULL}"
        );
    }

    #[test]
    fn as_accessors() {
        assert_eq!(BerValue::Integer(-2).as_i64(), Some(-2));
        assert_eq!(BerValue::TimeTicks(9).as_i64(), Some(9));
        assert_eq!(BerValue::from("x").as_bytes(), Some(&b"x"[..]));
        let oid: Oid = "1.3".parse().unwrap();
        assert_eq!(BerValue::ObjectId(oid.clone()).as_oid(), Some(&oid));
        assert_eq!(BerValue::Null.as_bytes(), None);
    }
}
