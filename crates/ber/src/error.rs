use std::error::Error;
use std::fmt;

/// Error produced while decoding (or validating) BER data.
///
/// Encoding is infallible in this crate; all variants describe malformed or
/// unsupported input encountered by [`crate::BerReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BerError {
    /// Input ended in the middle of a tag, length, or content octets.
    UnexpectedEof,
    /// A definite length field was malformed or too large for this platform.
    BadLength,
    /// Indefinite lengths are not allowed by the SNMP mapping of BER.
    IndefiniteLength,
    /// The decoded tag differs from the tag the caller required.
    TagMismatch {
        /// Tag the caller asked for.
        expected: crate::Tag,
        /// Tag actually present in the input.
        found: crate::Tag,
    },
    /// An INTEGER's content octets were empty, non-minimal, or too wide.
    BadInteger,
    /// An OBJECT IDENTIFIER's content octets were malformed.
    BadOid,
    /// A constructed value's contents did not fill its declared length.
    TrailingBytes,
    /// Multi-byte (high) tag numbers are not used by SNMP or RDS.
    HighTagNumber,
    /// A primitive value carried the constructed bit, or vice versa.
    WrongConstruction,
}

impl fmt::Display for BerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BerError::UnexpectedEof => write!(f, "unexpected end of BER input"),
            BerError::BadLength => write!(f, "malformed or oversized BER length"),
            BerError::IndefiniteLength => write!(f, "indefinite BER length is not supported"),
            BerError::TagMismatch { expected, found } => {
                write!(f, "BER tag mismatch: expected {expected}, found {found}")
            }
            BerError::BadInteger => write!(f, "malformed BER integer"),
            BerError::BadOid => write!(f, "malformed BER object identifier"),
            BerError::TrailingBytes => write!(f, "trailing bytes after BER value"),
            BerError::HighTagNumber => write!(f, "high (multi-byte) BER tag numbers unsupported"),
            BerError::WrongConstruction => {
                write!(f, "BER primitive/constructed bit does not match type")
            }
        }
    }
}

impl Error for BerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Class, Tag};

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            BerError::UnexpectedEof,
            BerError::BadLength,
            BerError::IndefiniteLength,
            BerError::TagMismatch {
                expected: Tag::new(Class::Universal, 2),
                found: Tag::new(Class::Universal, 4),
            },
            BerError::BadInteger,
            BerError::BadOid,
            BerError::TrailingBytes,
            BerError::HighTagNumber,
            BerError::WrongConstruction,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BerError>();
    }
}
