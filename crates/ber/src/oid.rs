use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// An ASN.1 OBJECT IDENTIFIER: a sequence of non-negative integer arcs.
///
/// OIDs name every managed object in an SNMP MIB; lexicographic ordering of
/// OIDs defines the `GetNext` traversal order, so `Oid` implements `Ord`
/// with exactly that ordering (component-wise, shorter prefix first).
///
/// # Examples
///
/// ```
/// use ber::Oid;
///
/// let sys_descr: Oid = "1.3.6.1.2.1.1.1.0".parse().unwrap();
/// let sys_object_id: Oid = "1.3.6.1.2.1.1.2.0".parse().unwrap();
/// assert!(sys_descr < sys_object_id);
/// assert!(sys_descr.starts_with(&"1.3.6.1.2.1.1".parse().unwrap()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Oid {
    arcs: Vec<u32>,
}

impl Oid {
    /// Creates an empty OID (no arcs). Mostly useful as a sentinel root.
    pub fn new() -> Oid {
        Oid::default()
    }

    /// Creates an OID from a slice of arcs.
    pub fn from_slice(arcs: &[u32]) -> Oid {
        Oid { arcs: arcs.to_vec() }
    }

    /// The arcs of this OID.
    pub fn as_slice(&self) -> &[u32] {
        &self.arcs
    }

    /// Number of arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether the OID has no arcs.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Returns a new OID with `arc` appended.
    ///
    /// # Examples
    ///
    /// ```
    /// let base: ber::Oid = "1.3.6".parse().unwrap();
    /// assert_eq!(base.child(1).to_string(), "1.3.6.1");
    /// ```
    pub fn child(&self, arc: u32) -> Oid {
        let mut arcs = self.arcs.clone();
        arcs.push(arc);
        Oid { arcs }
    }

    /// Returns a new OID with all of `suffix`'s arcs appended.
    pub fn extend(&self, suffix: &[u32]) -> Oid {
        let mut arcs = self.arcs.clone();
        arcs.extend_from_slice(suffix);
        Oid { arcs }
    }

    /// Whether `prefix` is a (non-strict) prefix of this OID.
    pub fn starts_with(&self, prefix: &Oid) -> bool {
        self.arcs.len() >= prefix.arcs.len() && self.arcs[..prefix.arcs.len()] == prefix.arcs[..]
    }

    /// The arcs remaining after `prefix`, or `None` if `prefix` does not
    /// prefix this OID. Used to recover a table index from an instance OID.
    pub fn strip_prefix(&self, prefix: &Oid) -> Option<&[u32]> {
        if self.starts_with(prefix) {
            Some(&self.arcs[prefix.arcs.len()..])
        } else {
            None
        }
    }

    /// The parent OID (all arcs but the last), or `None` for an empty OID.
    pub fn parent(&self) -> Option<Oid> {
        if self.arcs.is_empty() {
            None
        } else {
            Some(Oid { arcs: self.arcs[..self.arcs.len() - 1].to_vec() })
        }
    }

    /// Encodes the OID content octets (X.690 §8.19). The first two arcs are
    /// packed into one subidentifier (`40 * arc0 + arc1`); remaining arcs use
    /// base-128 with continuation bits.
    ///
    /// OIDs with fewer than two arcs are padded with zeros when encoded, per
    /// common SNMP library behaviour (the zero-OID encodes as `0.0`).
    pub(crate) fn encode_content(&self) -> Vec<u8> {
        let a0 = self.arcs.first().copied().unwrap_or(0);
        let a1 = self.arcs.get(1).copied().unwrap_or(0);
        let mut out = Vec::with_capacity(self.arcs.len() + 1);
        encode_subidentifier(&mut out, a0 * 40 + a1);
        for &arc in self.arcs.iter().skip(2) {
            encode_subidentifier(&mut out, arc);
        }
        out
    }

    /// Decodes OID content octets.
    pub(crate) fn decode_content(content: &[u8]) -> Result<Oid, crate::BerError> {
        if content.is_empty() {
            return Err(crate::BerError::BadOid);
        }
        let mut subids = Vec::new();
        let mut cur: u64 = 0;
        let mut in_progress = false;
        for &b in content {
            cur = (cur << 7) | u64::from(b & 0x7F);
            if cur > u64::from(u32::MAX) {
                return Err(crate::BerError::BadOid);
            }
            if b & 0x80 != 0 {
                in_progress = true;
            } else {
                subids.push(cur as u32);
                cur = 0;
                in_progress = false;
            }
        }
        if in_progress {
            return Err(crate::BerError::BadOid);
        }
        let first = subids[0];
        let (a0, a1) = if first < 40 {
            (0, first)
        } else if first < 80 {
            (1, first - 40)
        } else {
            (2, first - 80)
        };
        let mut arcs = Vec::with_capacity(subids.len() + 1);
        arcs.push(a0);
        arcs.push(a1);
        arcs.extend_from_slice(&subids[1..]);
        Ok(Oid { arcs })
    }
}

fn encode_subidentifier(out: &mut Vec<u8>, value: u32) {
    let mut buf = [0u8; 5];
    let mut i = buf.len();
    let mut v = value;
    loop {
        i -= 1;
        buf[i] = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            break;
        }
    }
    let last = buf.len() - 1;
    for (j, b) in buf[i..].iter().enumerate() {
        let continuation = if i + j < last { 0x80 } else { 0 };
        out.push(b | continuation);
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for arc in &self.arcs {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{arc}")?;
            first = false;
        }
        Ok(())
    }
}

/// Error returned when parsing an OID from dotted-decimal text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOidError;

impl fmt::Display for ParseOidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dotted-decimal object identifier")
    }
}

impl Error for ParseOidError {}

impl FromStr for Oid {
    type Err = ParseOidError;

    fn from_str(s: &str) -> Result<Oid, ParseOidError> {
        if s.is_empty() {
            return Ok(Oid::new());
        }
        let arcs = s
            .split('.')
            .map(|part| part.parse::<u32>().map_err(|_| ParseOidError))
            .collect::<Result<Vec<u32>, ParseOidError>>()?;
        Ok(Oid { arcs })
    }
}

impl From<&[u32]> for Oid {
    fn from(arcs: &[u32]) -> Oid {
        Oid::from_slice(arcs)
    }
}

impl From<Vec<u32>> for Oid {
    fn from(arcs: Vec<u32>) -> Oid {
        Oid { arcs }
    }
}

impl AsRef<[u32]> for Oid {
    fn as_ref(&self) -> &[u32] {
        &self.arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["1.3.6.1.2.1", "0.0", "2.999.3", "1.3.6.1.4.1.45.1.3.2"] {
            assert_eq!(oid(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("1.3.x".parse::<Oid>().is_err());
        assert!("1..3".parse::<Oid>().is_err());
        assert!("-1.3".parse::<Oid>().is_err());
    }

    #[test]
    fn lexicographic_ordering_matches_getnext_semantics() {
        // Prefix sorts before its children; siblings sort numerically.
        assert!(oid("1.3.6.1") < oid("1.3.6.1.0"));
        assert!(oid("1.3.6.1.2") < oid("1.3.6.1.10"));
        assert!(oid("1.3.6.2") > oid("1.3.6.1.999.999"));
    }

    #[test]
    fn content_encoding_well_known() {
        // 1.3.6.1.2.1 encodes as 2B 06 01 02 01 (first two arcs pack to 43).
        assert_eq!(oid("1.3.6.1.2.1").encode_content(), vec![0x2B, 0x06, 0x01, 0x02, 0x01]);
        // Multi-byte subidentifier: arc 999 = 0x87 0x67.
        assert_eq!(oid("2.999").encode_content(), vec![0x88, 0x37]);
    }

    #[test]
    fn content_decoding_round_trip() {
        for s in ["1.3.6.1.2.1.1.1.0", "0.39", "1.39.4294967295", "2.999.1.128.16384"] {
            let o = oid(s);
            assert_eq!(Oid::decode_content(&o.encode_content()).unwrap(), o);
        }
    }

    #[test]
    fn decode_rejects_truncated_subidentifier() {
        // A continuation bit with no following byte.
        assert_eq!(Oid::decode_content(&[0x2B, 0x86]), Err(crate::BerError::BadOid));
        assert_eq!(Oid::decode_content(&[]), Err(crate::BerError::BadOid));
    }

    #[test]
    fn prefix_helpers() {
        let base = oid("1.3.6.1.2.1.6.13");
        let inst = base.extend(&[1, 2, 10, 0, 0, 1, 80]);
        assert!(inst.starts_with(&base));
        assert_eq!(inst.strip_prefix(&base).unwrap(), &[1, 2, 10, 0, 0, 1, 80]);
        assert_eq!(inst.strip_prefix(&oid("1.4")), None);
        assert_eq!(base.child(1).to_string(), "1.3.6.1.2.1.6.13.1");
        assert_eq!(oid("1.3").parent().unwrap(), oid("1"));
        assert_eq!(Oid::new().parent(), None);
    }
}
