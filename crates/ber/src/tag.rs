use std::fmt;

/// BER tag class (the top two bits of the identifier octet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Universal types defined by X.690 (INTEGER, OCTET STRING, ...).
    Universal,
    /// Application-wide types (SNMP's Counter32, Gauge32, ...).
    Application,
    /// Context-specific types (SNMP PDU choices).
    Context,
    /// Privately assigned types (unused by SNMP; accepted for completeness).
    Private,
}

impl Class {
    fn bits(self) -> u8 {
        match self {
            Class::Universal => 0b0000_0000,
            Class::Application => 0b0100_0000,
            Class::Context => 0b1000_0000,
            Class::Private => 0b1100_0000,
        }
    }

    fn from_bits(b: u8) -> Class {
        match b & 0b1100_0000 {
            0b0000_0000 => Class::Universal,
            0b0100_0000 => Class::Application,
            0b1000_0000 => Class::Context,
            _ => Class::Private,
        }
    }
}

/// A BER tag: class plus tag number (low tag form only, number ≤ 30).
///
/// SNMP and RDS use only low tag numbers, so the multi-byte high-tag form is
/// rejected on decode and unrepresentable here.
///
/// # Examples
///
/// ```
/// use ber::{Class, Tag};
/// assert_eq!(Tag::INTEGER, Tag::new(Class::Universal, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag {
    class: Class,
    number: u8,
}

impl Tag {
    /// Universal 2: INTEGER.
    pub const INTEGER: Tag = Tag { class: Class::Universal, number: 2 };
    /// Universal 4: OCTET STRING.
    pub const OCTET_STRING: Tag = Tag { class: Class::Universal, number: 4 };
    /// Universal 5: NULL.
    pub const NULL: Tag = Tag { class: Class::Universal, number: 5 };
    /// Universal 6: OBJECT IDENTIFIER.
    pub const OID: Tag = Tag { class: Class::Universal, number: 6 };
    /// Universal 16: SEQUENCE (always constructed).
    pub const SEQUENCE: Tag = Tag { class: Class::Universal, number: 16 };
    /// Application 0: SNMP IpAddress.
    pub const IP_ADDRESS: Tag = Tag { class: Class::Application, number: 0 };
    /// Application 1: SNMP Counter32.
    pub const COUNTER32: Tag = Tag { class: Class::Application, number: 1 };
    /// Application 2: SNMP Gauge32 / Unsigned32.
    pub const GAUGE32: Tag = Tag { class: Class::Application, number: 2 };
    /// Application 3: SNMP TimeTicks.
    pub const TIME_TICKS: Tag = Tag { class: Class::Application, number: 3 };
    /// Application 4: SNMP Opaque.
    pub const OPAQUE: Tag = Tag { class: Class::Application, number: 4 };

    /// Creates a tag from a class and a low tag number.
    ///
    /// # Panics
    ///
    /// Panics if `number > 30` (the high-tag-number form is unsupported).
    pub fn new(class: Class, number: u8) -> Tag {
        assert!(number <= 30, "high tag numbers are unsupported");
        Tag { class, number }
    }

    /// Creates a context-specific tag, as used for SNMP PDU choices.
    ///
    /// # Panics
    ///
    /// Panics if `number > 30`.
    pub fn context(number: u8) -> Tag {
        Tag::new(Class::Context, number)
    }

    /// The tag's class.
    pub fn class(self) -> Class {
        self.class
    }

    /// The tag's number within its class.
    pub fn number(self) -> u8 {
        self.number
    }

    /// Encodes the identifier octet, with the constructed bit if requested.
    pub(crate) fn identifier_octet(self, constructed: bool) -> u8 {
        self.class.bits() | if constructed { 0b0010_0000 } else { 0 } | self.number
    }

    /// Splits an identifier octet into (tag, constructed-bit).
    pub(crate) fn from_identifier_octet(octet: u8) -> (Tag, bool) {
        let class = Class::from_bits(octet);
        let constructed = octet & 0b0010_0000 != 0;
        (Tag { class, number: octet & 0b0001_1111 }, constructed)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Tag::INTEGER => write!(f, "INTEGER"),
            Tag::OCTET_STRING => write!(f, "OCTET STRING"),
            Tag::NULL => write!(f, "NULL"),
            Tag::OID => write!(f, "OBJECT IDENTIFIER"),
            Tag::SEQUENCE => write!(f, "SEQUENCE"),
            Tag::IP_ADDRESS => write!(f, "IpAddress"),
            Tag::COUNTER32 => write!(f, "Counter32"),
            Tag::GAUGE32 => write!(f, "Gauge32"),
            Tag::TIME_TICKS => write!(f, "TimeTicks"),
            Tag::OPAQUE => write!(f, "Opaque"),
            Tag { class, number } => write!(f, "[{class:?} {number}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_octet_round_trips() {
        for class in [Class::Universal, Class::Application, Class::Context, Class::Private] {
            for number in 0..=30u8 {
                for constructed in [false, true] {
                    let tag = Tag::new(class, number);
                    let octet = tag.identifier_octet(constructed);
                    assert_eq!(Tag::from_identifier_octet(octet), (tag, constructed));
                }
            }
        }
    }

    #[test]
    fn well_known_identifier_octets() {
        assert_eq!(Tag::INTEGER.identifier_octet(false), 0x02);
        assert_eq!(Tag::OCTET_STRING.identifier_octet(false), 0x04);
        assert_eq!(Tag::NULL.identifier_octet(false), 0x05);
        assert_eq!(Tag::OID.identifier_octet(false), 0x06);
        assert_eq!(Tag::SEQUENCE.identifier_octet(true), 0x30);
        assert_eq!(Tag::COUNTER32.identifier_octet(false), 0x41);
        // SNMP GetRequest-PDU is context-constructed 0.
        assert_eq!(Tag::context(0).identifier_octet(true), 0xA0);
    }

    #[test]
    #[should_panic(expected = "high tag numbers")]
    fn high_tag_number_panics() {
        let _ = Tag::new(Class::Universal, 31);
    }

    #[test]
    fn display_names() {
        assert_eq!(Tag::INTEGER.to_string(), "INTEGER");
        assert_eq!(Tag::context(3).to_string(), "[Context 3]");
    }
}
