use crate::value::length_of_length;
use crate::{BerValue, Oid, Tag};

/// An incremental BER encoder.
///
/// Constructed values (sequences, PDUs) are written with a closure; the
/// writer back-patches the definite length once the contents are known.
///
/// # Examples
///
/// ```
/// use ber::BerWriter;
/// let mut w = BerWriter::new();
/// w.write_sequence(|w| w.write_i64(1));
/// assert_eq!(w.into_bytes(), vec![0x30, 0x03, 0x02, 0x01, 0x01]);
/// ```
#[derive(Debug, Default)]
pub struct BerWriter {
    buf: Vec<u8>,
}

pub(crate) fn integer_content_len(v: i64) -> usize {
    let mut len = 1;
    let mut v = v;
    while !(-128..=127).contains(&v) {
        v >>= 8;
        len += 1;
    }
    len
}

pub(crate) fn unsigned_content_len(v: u32) -> usize {
    // Encoded as a non-negative INTEGER: a leading zero octet is needed when
    // the high bit of the top content octet would be set.
    let bits = 32 - v.leading_zeros();
    (bits as usize / 8) + 1
}

impl BerWriter {
    /// Creates an empty writer.
    pub fn new() -> BerWriter {
        BerWriter::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn write_header(&mut self, tag: Tag, constructed: bool, content_len: usize) {
        self.buf.push(tag.identifier_octet(constructed));
        self.write_length(content_len);
    }

    fn write_length(&mut self, len: usize) {
        if len < 128 {
            self.buf.push(len as u8);
        } else {
            let n = length_of_length(len) - 1;
            self.buf.push(0x80 | n as u8);
            for i in (0..n).rev() {
                self.buf.push((len >> (8 * i)) as u8);
            }
        }
    }

    /// Writes a universal INTEGER with minimal two's-complement content.
    pub fn write_i64(&mut self, value: i64) {
        self.write_tagged_i64(Tag::INTEGER, value);
    }

    /// Writes an INTEGER under an arbitrary (primitive) tag.
    pub fn write_tagged_i64(&mut self, tag: Tag, value: i64) {
        let len = integer_content_len(value);
        self.write_header(tag, false, len);
        for i in (0..len).rev() {
            self.buf.push((value >> (8 * i)) as u8);
        }
    }

    /// Writes an unsigned 32-bit quantity under `tag` (Counter32, Gauge32,
    /// TimeTicks): non-negative INTEGER content, zero-padded when the high
    /// bit would otherwise be set.
    pub fn write_tagged_u32(&mut self, tag: Tag, value: u32) {
        let len = unsigned_content_len(value);
        self.write_header(tag, false, len);
        for i in (0..len).rev() {
            self.buf.push((u64::from(value) >> (8 * i)) as u8);
        }
    }

    /// Writes a universal OCTET STRING.
    pub fn write_octet_string(&mut self, bytes: &[u8]) {
        self.write_tagged_bytes(Tag::OCTET_STRING, bytes);
    }

    /// Writes raw bytes as the content of a primitive value under `tag`.
    pub fn write_tagged_bytes(&mut self, tag: Tag, bytes: &[u8]) {
        self.write_header(tag, false, bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a universal NULL.
    pub fn write_null(&mut self) {
        self.write_header(Tag::NULL, false, 0);
    }

    /// Writes an OBJECT IDENTIFIER.
    pub fn write_oid(&mut self, oid: &Oid) {
        let content = oid.encode_content();
        self.write_header(Tag::OID, false, content.len());
        self.buf.extend_from_slice(&content);
    }

    /// Writes a SEQUENCE whose contents are produced by `f`.
    pub fn write_sequence<F: FnOnce(&mut BerWriter)>(&mut self, f: F) {
        self.write_constructed(Tag::SEQUENCE, f);
    }

    /// Writes a constructed value under `tag` whose contents are produced by
    /// `f`. Lengths are back-patched, so nesting is arbitrary.
    pub fn write_constructed<F: FnOnce(&mut BerWriter)>(&mut self, tag: Tag, f: F) {
        let mut inner = BerWriter::new();
        f(&mut inner);
        self.write_header(tag, true, inner.buf.len());
        self.buf.extend_from_slice(&inner.buf);
    }

    /// Appends pre-encoded BER bytes verbatim (they must form whole
    /// TLVs). Used to embed an already-encoded payload — e.g. a message
    /// body that was encoded separately so it could be digested.
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a dynamic [`BerValue`].
    pub fn write_value(&mut self, value: &BerValue) {
        match value {
            BerValue::Integer(v) => self.write_i64(*v),
            BerValue::OctetString(b) => self.write_octet_string(b),
            BerValue::Null => self.write_null(),
            BerValue::ObjectId(o) => self.write_oid(o),
            BerValue::IpAddress(a) => self.write_tagged_bytes(Tag::IP_ADDRESS, a),
            BerValue::Counter32(v) => self.write_tagged_u32(Tag::COUNTER32, *v),
            BerValue::Gauge32(v) => self.write_tagged_u32(Tag::GAUGE32, *v),
            BerValue::TimeTicks(v) => self.write_tagged_u32(Tag::TIME_TICKS, *v),
            BerValue::Opaque(b) => self.write_tagged_bytes(Tag::OPAQUE, b),
            BerValue::Sequence(items) => self.write_sequence(|w| {
                for item in items {
                    w.write_value(item);
                }
            }),
            BerValue::ContextConstructed(n, items) => {
                self.write_constructed(Tag::context(*n), |w| {
                    for item in items {
                        w.write_value(item);
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_minimal_encodings() {
        let cases: Vec<(i64, Vec<u8>)> = vec![
            (0, vec![0x02, 0x01, 0x00]),
            (127, vec![0x02, 0x01, 0x7F]),
            (128, vec![0x02, 0x02, 0x00, 0x80]),
            (256, vec![0x02, 0x02, 0x01, 0x00]),
            (-1, vec![0x02, 0x01, 0xFF]),
            (-128, vec![0x02, 0x01, 0x80]),
            (-129, vec![0x02, 0x02, 0xFF, 0x7F]),
        ];
        for (v, expected) in cases {
            let mut w = BerWriter::new();
            w.write_i64(v);
            assert_eq!(w.into_bytes(), expected, "value {v}");
        }
    }

    #[test]
    fn unsigned_high_bit_gets_leading_zero() {
        let mut w = BerWriter::new();
        w.write_tagged_u32(Tag::COUNTER32, 0xFFFF_FFFF);
        assert_eq!(w.into_bytes(), vec![0x41, 0x05, 0x00, 0xFF, 0xFF, 0xFF, 0xFF]);
        let mut w = BerWriter::new();
        w.write_tagged_u32(Tag::GAUGE32, 0);
        assert_eq!(w.into_bytes(), vec![0x42, 0x01, 0x00]);
    }

    #[test]
    fn long_form_length() {
        let mut w = BerWriter::new();
        w.write_octet_string(&[0xAB; 200]);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..3], &[0x04, 0x81, 200]);
        assert_eq!(bytes.len(), 3 + 200);

        let mut w = BerWriter::new();
        w.write_octet_string(&vec![0xCD; 1000]);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..4], &[0x04, 0x82, 0x03, 0xE8]);
    }

    #[test]
    fn nested_sequences_backpatch_lengths() {
        let mut w = BerWriter::new();
        w.write_sequence(|w| {
            w.write_sequence(|w| {
                w.write_i64(1);
                w.write_i64(2);
            });
            w.write_null();
        });
        assert_eq!(
            w.into_bytes(),
            vec![0x30, 0x0A, 0x30, 0x06, 0x02, 0x01, 0x01, 0x02, 0x01, 0x02, 0x05, 0x00]
        );
    }

    #[test]
    fn null_and_len_helpers() {
        let mut w = BerWriter::new();
        assert!(w.is_empty());
        w.write_null();
        assert_eq!(w.len(), 2);
    }
}
