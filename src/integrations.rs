//! Cross-crate glue that only the umbrella crate can provide.
//!
//! The thesis's MCVA is itself a *delegated* service: view evaluation
//! runs inside the elastic process, next to the MIB. This module wires a
//! [`vdl::Mcva`] into an [`ElasticProcess`](mbd_core::ElasticProcess) as
//! host services, so delegated DPL agents can define, evaluate and
//! materialize views themselves:
//!
//! | service | effect |
//! |---|---|
//! | `view_define(name, text)` | compile + store a view (replaces existing) |
//! | `view_eval(name)` | evaluate against the live MIB → list of rows |
//! | `view_eval_snapshot(name)` | evaluate against an instantaneous copy |
//! | `view_materialize(name)` | publish the result as v-mib objects → root OID |

use dpl::Value;
use mbd_core::ElasticProcess;
use vdl::{CellValue, Mcva, ViewResult};

fn result_to_value(result: &ViewResult) -> Value {
    let rows = result
        .rows
        .iter()
        .map(|row| {
            Value::list(
                row.iter()
                    .map(|cell| match cell {
                        CellValue::Int(v) => Value::Int(*v),
                        CellValue::Float(v) => Value::Float(*v),
                        CellValue::Str(s) => Value::Str(s.clone()),
                        CellValue::Bool(b) => Value::Bool(*b),
                        CellValue::Nil => Value::Nil,
                    })
                    .collect(),
            )
        })
        .collect();
    Value::list(rows)
}

/// Registers the MCVA's capabilities as host services on `process`.
///
/// The MCVA must share the process's MIB (pass
/// `Mcva::new(process.mib().clone())`), or agents would compute over
/// different data than they read with `mib_get`.
///
/// # Examples
///
/// ```
/// use mbd::core::{ElasticConfig, ElasticProcess};
/// use mbd::vdl::Mcva;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let process = ElasticProcess::new(ElasticConfig::default());
/// snmp::mib2::install_interfaces(process.mib(), 2, 10_000_000)?;
/// let mcva = Mcva::new(process.mib().clone());
/// mbd::integrations::install_view_services(&process, mcva);
///
/// process.delegate(
///     "viewer",
///     r#"fn count_ifs() {
///          view_define("ifs", "view ifs from i = 1.3.6.1.2.1.2.2.1 select count() as n");
///          var rows = view_eval("ifs");
///          return rows[0][0];
///        }"#,
/// )?;
/// let dpi = process.instantiate("viewer")?;
/// assert_eq!(process.invoke(dpi, "count_ifs", &[])?, mbd::dpl::Value::Int(2));
/// # Ok(())
/// # }
/// ```
pub fn install_view_services(process: &ElasticProcess, mcva: Mcva) {
    // View evaluation runs inside agent invocations; per-operation
    // timers make its cost visible separately from `ep.invoke`.
    let telemetry = process.telemetry();
    let m = mcva.clone();
    let timer = telemetry.timer("vdl.define");
    process.register_service("view_define", 2, move |_, args| {
        let _span = timer.start();
        let name = args[0].as_str().ok_or("view_define: name must be str")?;
        let text = args[1].as_str().ok_or("view_define: text must be str")?;
        // Agents may redefine freely: drop any previous definition.
        let _ = m.undefine(name);
        m.define(name, text).map_err(|e| e.to_string())?;
        Ok(Value::Bool(true))
    });

    let m = mcva.clone();
    let timer = telemetry.timer("vdl.eval");
    process.register_service("view_eval", 1, move |_, args| {
        let _span = timer.start();
        let name = args[0].as_str().ok_or("view_eval: name must be str")?;
        let result = m.evaluate(name).map_err(|e| e.to_string())?;
        Ok(result_to_value(&result))
    });

    let m = mcva.clone();
    let timer = telemetry.timer("vdl.eval_snapshot");
    process.register_service("view_eval_snapshot", 1, move |_, args| {
        let _span = timer.start();
        let name = args[0].as_str().ok_or("view_eval_snapshot: name must be str")?;
        let result = m.evaluate_snapshot(name).map_err(|e| e.to_string())?;
        Ok(result_to_value(&result))
    });

    let timer = telemetry.timer("vdl.materialize");
    process.register_service("view_materialize", 1, move |_, args| {
        let _span = timer.start();
        let name = args[0].as_str().ok_or("view_materialize: name must be str")?;
        let root = mcva.materialize(name).map_err(|e| e.to_string())?;
        Ok(Value::Str(root.to_string()))
    });
}
