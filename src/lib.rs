//! # Distributed Management by Delegation (MbD)
//!
//! Umbrella crate re-exporting the MbD workspace: a Rust reproduction of
//! *Distributed Management by Delegation* (Goldszmidt & Yemini, ICDCS 1995).
//!
//! The system decentralizes network management by delegating programs
//! (agents) to **elastic processes** running near managed devices, instead
//! of polling raw data to a central manager:
//!
//! - [`dpl`] — the Delegated Program Language agents are written in,
//!   compiled and sandboxed by the server-side translator.
//! - [`rds`] — the Remote Delegation Service protocol (delegate /
//!   instantiate / invoke / suspend / resume / terminate).
//! - [`core`] — the elastic process runtime: repository, translator,
//!   delegated-program-instance (dpi) threads, and the MbD server.
//! - [`snmp`] — SNMPv1 substrate: BER codec, MIB store, MIB-II subset,
//!   agent and manager engines (the centralized baseline).
//! - [`vdl`] — MIB views and the View Definition Language.
//! - [`health`] — delegated health functions and perceptron training.
//! - [`netsim`] — the discrete-event network simulator the experiments
//!   run on.
//! - [`ber`] — the shared ASN.1 BER codec.
//! - [`auth`] — MD5 digests and handle-based access control.
//! - [`telemetry`] — self-instrumentation: lock-free latency
//!   histograms, counters/gauges, and tracing spans, exported through
//!   the `mbdTelemetry` OCP subtree so agents can be delegated against
//!   the server's own health (see `examples/self_health.rs`).
//!
//! # Quickstart
//!
//! ```
//! use mbd::core::{ElasticProcess, ElasticConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An elastic process that accepts delegated DPL agents.
//! let process = ElasticProcess::new(ElasticConfig::default());
//!
//! // Delegate a tiny agent, instantiate it, and invoke it.
//! process.delegate("adder", "fn main(a, b) { return a + b; }")?;
//! let dpi = process.instantiate("adder")?;
//! let result = process.invoke(dpi, "main", &[2.into(), 3.into()])?;
//! assert_eq!(result, 5.into());
//! # Ok(())
//! # }
//! ```

pub mod integrations;

pub use ber;
pub use dpl;
pub use health;
pub use mbd_auth as auth;
pub use mbd_core as core;
pub use mbd_telemetry as telemetry;
pub use netsim;
pub use rds;
pub use snmp;
pub use vdl;
