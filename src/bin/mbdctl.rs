//! `mbdctl` — a manager's command-line client for an MbD server.
//!
//! ```console
//! mbdctl [--server 127.0.0.1:4700] [--key SECRET] [--principal NAME]
//!        [--retries N] [--backoff-ms MS] [--deadline-ms MS] COMMAND
//!
//! commands:
//!   delegate NAME FILE          translate + store FILE's DPL source as NAME
//!   delete NAME                 remove a stored program
//!   instantiate NAME            create an instance; prints its dpi id
//!   invoke DPI ENTRY [ARG...]   run an entry point (ints, floats, strings)
//!   suspend|resume|terminate DPI
//!   send DPI PAYLOAD            post to the instance's mailbox
//!   programs                    list stored programs
//!   instances                   list instances and their states
//!   journal [MAX]               read the server's audit journal (newest
//!                               MAX records; all retained when omitted)
//! ```
//!
//! Every request carries a fresh trace id; `journal` shows which trace
//! caused which operation (`trace=` is all zeros only for records whose
//! cause was untraced, e.g. server-internal events before any request).
//!
//! With `--retries N` delivery failures (broken connections, damaged
//! frames, `Busy` sheds) are retried up to N extra attempts, re-sending
//! the identical frame so the server's duplicate-suppression cache
//! replays rather than re-executes (see `docs/RDS.md`); `--backoff-ms`
//! sets the base of the exponential backoff between attempts, and
//! `--deadline-ms` bounds the whole request, retries included.

use ber::BerValue;
use mbd::rds::{DpiId, RdsClient, RetryPolicy, TcpTransport};
use std::time::Duration;

fn parse_arg(s: &str) -> BerValue {
    if let Ok(i) = s.parse::<i64>() {
        return BerValue::Integer(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        // Ride floats through the convert layer's tagged encoding.
        return BerValue::OctetString(format!("f:{f}").into_bytes());
    }
    BerValue::OctetString(s.as_bytes().to_vec())
}

fn parse_dpi(s: &str) -> Result<DpiId, String> {
    let digits = s.strip_prefix("dpi-").unwrap_or(s);
    digits.parse::<u64>().map(DpiId).map_err(|_| format!("bad dpi id `{s}`"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = "127.0.0.1:4700".to_string();
    let mut key: Option<Vec<u8>> = None;
    let mut principal = "mbdctl".to_string();
    let mut retry = RetryPolicy::none();
    let mut rest: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server" => server = args.next().ok_or("--server needs an address")?,
            "--key" => key = Some(args.next().ok_or("--key needs a secret")?.into_bytes()),
            "--principal" => principal = args.next().ok_or("--principal needs a name")?,
            "--retries" => {
                let n: u32 = args.next().ok_or("--retries needs a count")?.parse()?;
                let defaults = RetryPolicy::default();
                retry = RetryPolicy {
                    max_attempts: n + 1,
                    base_backoff: if retry.base_backoff.is_zero() {
                        defaults.base_backoff
                    } else {
                        retry.base_backoff
                    },
                    max_backoff: defaults.max_backoff,
                    ..retry
                };
            }
            "--backoff-ms" => {
                let ms: u64 = args.next().ok_or("--backoff-ms needs milliseconds")?.parse()?;
                retry.base_backoff = Duration::from_millis(ms);
                retry.max_backoff = retry.max_backoff.max(Duration::from_millis(ms));
            }
            "--deadline-ms" => {
                let ms: u64 = args.next().ok_or("--deadline-ms needs milliseconds")?.parse()?;
                retry.deadline = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => {
                println!("see `mbdctl` module docs; commands: delegate delete instantiate invoke suspend resume terminate send programs instances journal");
                return Ok(());
            }
            other => {
                rest.push(other.to_string());
                rest.extend(args.by_ref());
            }
        }
    }
    let (command, rest) = rest.split_first().ok_or("missing command (try --help)")?;

    let transport = TcpTransport::connect(server.as_str())?;
    let client = match key {
        Some(k) => RdsClient::with_key(transport, &principal, k),
        None => RdsClient::new(transport, &principal),
    }
    .with_retry(retry);

    match (command.as_str(), rest) {
        ("delegate", [name, file]) => {
            let source = std::fs::read_to_string(file)?;
            client.delegate(name, &source)?;
            println!("delegated `{name}` ({} bytes)", source.len());
        }
        ("delete", [name]) => {
            client.delete(name)?;
            println!("deleted `{name}`");
        }
        ("instantiate", [name]) => {
            let dpi = client.instantiate(name)?;
            println!("{dpi}");
        }
        ("invoke", [dpi, entry, args @ ..]) => {
            let dpi = parse_dpi(dpi)?;
            let args: Vec<BerValue> = args.iter().map(|s| parse_arg(s)).collect();
            let result = client.invoke(dpi, entry, &args)?;
            println!("{result}");
        }
        ("suspend", [dpi]) => client.suspend(parse_dpi(dpi)?)?,
        ("resume", [dpi]) => client.resume(parse_dpi(dpi)?)?,
        ("terminate", [dpi]) => client.terminate(parse_dpi(dpi)?)?,
        ("send", [dpi, payload]) => client.send_message(parse_dpi(dpi)?, payload.as_bytes())?,
        ("programs", []) => {
            for name in client.list_programs()? {
                println!("{name}");
            }
        }
        ("instances", []) => {
            for i in client.list_instances()? {
                println!("{}\t{}\t{}", i.id, i.dp_name, i.state);
            }
        }
        ("journal", rest @ ([] | [_])) => {
            let max: u32 = match rest {
                [m] => m.parse().map_err(|_| format!("bad record count `{m}`"))?,
                _ => 0,
            };
            for r in client.read_journal(max)? {
                println!(
                    "seq={} ticks={} trace={:016x} principal={} verb={} dpi={} {} detail={}",
                    r.seq,
                    r.ticks,
                    r.trace_id,
                    r.principal,
                    r.verb,
                    r.dpi,
                    if r.ok { "ok" } else { "err" },
                    r.detail,
                );
            }
        }
        (cmd, _) => return Err(format!("bad command or arguments: `{cmd}` (try --help)").into()),
    }
    Ok(())
}
