//! `mbdctl` — a manager's command-line client for an MbD server.
//!
//! ```console
//! mbdctl [--server 127.0.0.1:4700] [--key SECRET] [--principal NAME]
//!        [--retries N] [--backoff-ms MS] [--deadline-ms MS]
//!        [--pipeline N] [--repeat R] [--json] COMMAND
//!
//! commands:
//!   delegate NAME FILE          translate + store FILE's DPL source as NAME
//!   delete NAME                 remove a stored program
//!   instantiate NAME            create an instance; prints its dpi id
//!   invoke DPI ENTRY [ARG...]   run an entry point (ints, floats, strings)
//!   suspend|resume|terminate DPI
//!   checkpoint DPI [-o FILE]    serialize a suspended instance into a
//!                               transferable blob (stdout when no -o)
//!   restore FILE                install a checkpoint blob from FILE on
//!                               this server; prints the new dpi id
//!   send DPI PAYLOAD            post to the instance's mailbox
//!   programs                    list stored programs
//!   instances                   list instances and their states
//!   journal [MAX]               read the server's audit journal (newest
//!                               MAX records; all retained when omitted)
//!   profile [TRACE_ID] [--dpi N] [--folded]
//!                               fetch the retained span tree for a trace
//!                               (hex id; omitted = the newest retained,
//!                               anomalous first) and the VM profiler's
//!                               folded stacks; --folded prints only the
//!                               stacks (flamegraph.pl input), --dpi N
//!                               narrows stacks to one instance
//!   metrics [PATTERN] [--range S] [--res R]
//!                               read retained metrics history: series
//!                               matching the *-glob PATTERN (omitted =
//!                               all), trailing --range seconds (0 =
//!                               everything retained) at ring
//!                               resolution --res (1, 10 or 60 s;
//!                               default 1); also lists alert rules
//!   top [--once]                live dashboard: hottest counters by
//!                               rate, gauge/quantile sparklines and
//!                               firing alerts, refreshed every second
//!                               (--once renders a single frame and
//!                               exits, for scripts)
//! ```
//!
//! `--json` switches `journal`, `profile` and `metrics` to
//! machine-readable output: `journal` emits one JSON object per
//! record (JSON Lines), `profile` and `metrics` one object each.
//!
//! Every request carries a fresh trace id; `journal` shows which trace
//! caused which operation (`trace=` is all zeros only for records whose
//! cause was untraced, e.g. server-internal events before any request).
//!
//! With `--retries N` delivery failures (broken connections, damaged
//! frames, `Busy` sheds) are retried up to N extra attempts, re-sending
//! the identical frame so the server's duplicate-suppression cache
//! replays rather than re-executes (see `docs/RDS.md`); `--backoff-ms`
//! sets the base of the exponential backoff between attempts, and
//! `--deadline-ms` bounds the whole request, retries included.
//!
//! With `--pipeline N` the command runs through the pipelined client:
//! up to N requests in flight on one connection, replies accepted out
//! of order, `--repeat R` issuing the command R times (each repetition
//! is its own request id, so effects execute R times; retried frames
//! within one repetition stay byte-identical and dedup-safe). The
//! retry flags apply per repetition unchanged. A summary line reports
//! throughput, re-sends and reconnects.

use ber::BerValue;
use mbd::rds::{
    DpiId, RdsClient, RdsPipeline, RdsRequest, RdsResponse, RetryPolicy, TcpDuplex, TcpTransport,
};
use std::time::Duration;

fn parse_arg(s: &str) -> BerValue {
    if let Ok(i) = s.parse::<i64>() {
        return BerValue::Integer(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        // Ride floats through the convert layer's tagged encoding.
        return BerValue::OctetString(format!("f:{f}").into_bytes());
    }
    BerValue::OctetString(s.as_bytes().to_vec())
}

fn parse_dpi(s: &str) -> Result<DpiId, String> {
    let digits = s.strip_prefix("dpi-").unwrap_or(s);
    digits.parse::<u64>().map(DpiId).map_err(|_| format!("bad dpi id `{s}`"))
}

/// `profile [TRACE_ID] [--dpi N] [--folded]` → (trace_id, dpi, folded).
fn parse_profile_args(rest: &[String]) -> Result<(u64, u64, bool), String> {
    let mut trace_id = 0u64;
    let mut dpi = 0u64;
    let mut folded = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--folded" => folded = true,
            "--dpi" => {
                let v = it.next().ok_or("--dpi needs an instance id")?;
                dpi = parse_dpi(v)?.0;
            }
            hex => {
                trace_id = u64::from_str_radix(hex.trim_start_matches("0x"), 16)
                    .map_err(|_| format!("bad trace id `{hex}` (want hex)"))?;
            }
        }
    }
    Ok((trace_id, dpi, folded))
}

/// `metrics [PATTERN] [--range S] [--res R]` → (pattern, range_s, res_s).
fn parse_metrics_args(rest: &[String]) -> Result<(String, u32, u32), String> {
    let mut pattern = String::new();
    let mut range_s = 0u32;
    let mut res_s = 1u32;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--range" => {
                let v = it.next().ok_or("--range needs seconds")?;
                range_s = v.parse().map_err(|_| format!("bad range `{v}`"))?;
            }
            "--res" => {
                let v = it.next().ok_or("--res needs a resolution (1, 10 or 60)")?;
                res_s = v.parse().map_err(|_| format!("bad resolution `{v}`"))?;
            }
            p => pattern = p.to_string(),
        }
    }
    Ok((pattern, range_s, res_s))
}

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// The trailing `width` points of a series as a unicode sparkline,
/// scaled to the window's own maximum (an all-zero window is a flat
/// baseline).
fn sparkline(points: &[mbd::rds::MetricPoint], width: usize) -> String {
    let tail = &points[points.len().saturating_sub(width)..];
    let hi = tail.iter().map(|p| p.avg).max().unwrap_or(0);
    tail.iter()
        .map(|p| {
            if hi == 0 {
                SPARKS[0]
            } else {
                SPARKS[(u128::from(p.avg) * (SPARKS.len() as u128 - 1) / u128::from(hi)) as usize]
            }
        })
        .collect()
}

/// Human-readable rendering for a series value: quantiles are stored
/// as nanoseconds, rates are per-second deltas, gauges are raw.
fn fmt_value(kind: &str, v: u64) -> String {
    match kind {
        "quantile" => format!("{:.3} ms", v as f64 / 1e6),
        "rate" => format!("{v}/s"),
        _ => format!("{v}"),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn metrics_json(now_s: u64, series: &[mbd::rds::MetricSeries], alerts: &[mbd::rds::AlertStatus]) {
    let series_json: Vec<String> = series
        .iter()
        .map(|s| {
            let points: Vec<String> = s
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"t_s\":{},\"min\":{},\"max\":{},\"avg\":{},\"last\":{}}}",
                        p.t_s, p.min, p.max, p.avg, p.last
                    )
                })
                .collect();
            format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"points\":[{}]}}",
                json_escape(&s.name),
                json_escape(&s.kind),
                points.join(",")
            )
        })
        .collect();
    let alerts_json: Vec<String> = alerts
        .iter()
        .map(|a| {
            format!(
                "{{\"rule\":\"{}\",\"metric\":\"{}\",\"firing\":{},\"value\":{},\"since_s\":{},\"fired_count\":{}}}",
                json_escape(&a.rule),
                json_escape(&a.metric),
                a.firing,
                a.value,
                a.since_s,
                a.fired_count
            )
        })
        .collect();
    println!(
        "{{\"now_s\":{},\"series\":[{}],\"alerts\":[{}]}}",
        now_s,
        series_json.join(","),
        alerts_json.join(",")
    );
}

/// One frame of the `top` dashboard.
fn render_top(now_s: u64, series: &[mbd::rds::MetricSeries], alerts: &[mbd::rds::AlertStatus]) {
    let firing = alerts.iter().filter(|a| a.firing).count();
    println!(
        "mbd top — t={now_s}s  {} series  {} alert rule(s), {firing} firing",
        series.len(),
        alerts.len(),
    );
    if !alerts.is_empty() {
        println!();
        println!("alerts:");
        for a in alerts {
            println!(
                "  {} {:<44} value {:>12}  fired {}x",
                if a.firing { "FIRING" } else { "  ok  " },
                a.rule,
                fmt_value(
                    if a.metric.ends_with(".p50") || a.metric.ends_with(".p99") {
                        "quantile"
                    } else {
                        "gauge"
                    },
                    a.value
                ),
                a.fired_count,
            );
        }
    }
    let mut rates: Vec<&mbd::rds::MetricSeries> =
        series.iter().filter(|s| s.kind == "rate" && !s.name.starts_with("ep.exec.")).collect();
    rates.sort_by_key(|s| std::cmp::Reverse(s.points.last().map_or(0, |p| p.last)));
    println!();
    println!("hottest counters (per-second rates):");
    for s in rates.iter().take(10) {
        let last = s.points.last().map_or(0, |p| p.last);
        println!("  {:<34} {:>10}/s  {}", s.name, last, sparkline(&s.points, 30));
    }
    // The work-stealing invoke executor gets its own panel: submit and
    // steal rates plus queue depth tell the load-balance story at a
    // glance (steals ≈ 0 means affinity is holding; rising queue depth
    // with idle parks means a single dpi is the bottleneck).
    let mut exec: Vec<&mbd::rds::MetricSeries> =
        series.iter().filter(|s| s.name.starts_with("ep.exec.")).collect();
    if !exec.is_empty() {
        exec.sort_by(|a, b| a.name.cmp(&b.name));
        println!();
        println!("invoke executor:");
        for s in &exec {
            let last = s.points.last().map_or(0, |p| p.last);
            println!(
                "  {:<34} {:>12}  {}",
                s.name,
                fmt_value(&s.kind, last),
                sparkline(&s.points, 30)
            );
        }
    }
    let mut others: Vec<&mbd::rds::MetricSeries> =
        series.iter().filter(|s| s.kind != "rate" && !s.name.starts_with("ep.exec.")).collect();
    others.sort_by(|a, b| a.name.cmp(&b.name));
    println!();
    println!("gauges & quantiles:");
    for s in others.iter().take(12) {
        let last = s.points.last().map_or(0, |p| p.last);
        println!("  {:<34} {:>12}  {}", s.name, fmt_value(&s.kind, last), sparkline(&s.points, 30));
    }
}

/// Renders a span tree as an indented waterfall: children under their
/// parents, each with its offset from the tree's first span and its
/// duration.
fn print_span_tree(spans: &[mbd::rds::SpanRecord]) {
    let base = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    // Completion order in, start order out within each parent.
    let mut children: std::collections::HashMap<u64, Vec<&mbd::rds::SpanRecord>> =
        std::collections::HashMap::new();
    let mut roots: Vec<&mbd::rds::SpanRecord> = Vec::new();
    for s in spans {
        if s.parent_span_id != 0 && known.contains(&s.parent_span_id) {
            children.entry(s.parent_span_id).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| s.start_ns);
    }
    roots.sort_by_key(|s| s.start_ns);
    fn walk(
        s: &mbd::rds::SpanRecord,
        depth: usize,
        base: u64,
        children: &std::collections::HashMap<u64, Vec<&mbd::rds::SpanRecord>>,
    ) {
        println!(
            "{:indent$}{:<24} +{:>8.3} ms  {:>10.3} ms",
            "",
            s.name,
            (s.start_ns - base) as f64 / 1e6,
            s.duration_ns as f64 / 1e6,
            indent = depth * 2,
        );
        for c in children.get(&s.span_id).into_iter().flatten() {
            walk(c, depth + 1, base, children);
        }
    }
    for r in roots {
        walk(r, 1, base, &children);
    }
}

/// Maps a CLI command to the request it issues, for the pipelined path.
fn build_request(command: &str, rest: &[String]) -> Result<RdsRequest, Box<dyn std::error::Error>> {
    Ok(match (command, rest) {
        ("delegate", [name, file]) => RdsRequest::DelegateProgram {
            dp_name: name.clone(),
            language: "dpl".to_string(),
            source: std::fs::read_to_string(file)?.into_bytes(),
        },
        ("delete", [name]) => RdsRequest::DeleteProgram { dp_name: name.clone() },
        ("instantiate", [name]) => RdsRequest::Instantiate { dp_name: name.clone() },
        ("invoke", [dpi, entry, args @ ..]) => RdsRequest::Invoke {
            dpi: parse_dpi(dpi)?,
            entry: entry.clone(),
            args: args.iter().map(|s| parse_arg(s)).collect(),
        },
        ("suspend", [dpi]) => RdsRequest::Suspend { dpi: parse_dpi(dpi)? },
        ("resume", [dpi]) => RdsRequest::Resume { dpi: parse_dpi(dpi)? },
        ("terminate", [dpi]) => RdsRequest::Terminate { dpi: parse_dpi(dpi)? },
        ("checkpoint", [dpi]) => RdsRequest::Checkpoint { dpi: parse_dpi(dpi)? },
        ("restore", [file]) => RdsRequest::Restore { blob: std::fs::read(file)? },
        ("send", [dpi, payload]) => {
            RdsRequest::SendMessage { dpi: parse_dpi(dpi)?, payload: payload.as_bytes().to_vec() }
        }
        ("programs", []) => RdsRequest::ListPrograms,
        ("instances", []) => RdsRequest::ListInstances,
        ("journal", rest @ ([] | [_])) => RdsRequest::ReadJournal {
            max_records: match rest {
                [m] => m.parse().map_err(|_| format!("bad record count `{m}`"))?,
                _ => 0,
            },
        },
        ("profile", rest) => {
            let (trace_id, dpi, _folded) = parse_profile_args(rest)?;
            RdsRequest::ReadProfile { trace_id, dpi }
        }
        ("metrics", rest) => {
            let (pattern, range_s, res_s) = parse_metrics_args(rest)?;
            RdsRequest::ReadMetrics { pattern, range_s, res_s }
        }
        (cmd, _) => return Err(format!("bad command or arguments: `{cmd}` (try --help)").into()),
    })
}

/// Runs the command `repeat` times with up to `window` requests in
/// flight; prints one line per reply plus a summary.
fn run_pipelined(
    server: &str,
    key: Option<Vec<u8>>,
    principal: &str,
    retry: RetryPolicy,
    window: usize,
    repeat: usize,
    req: &RdsRequest,
) -> Result<(), Box<dyn std::error::Error>> {
    let duplex = TcpDuplex::connect(server)?;
    let mut pipe = match key {
        Some(k) => RdsPipeline::with_key(duplex, principal, k),
        None => RdsPipeline::new(duplex, principal),
    }
    .with_window(window)
    .with_retry(retry);
    let started = std::time::Instant::now();
    for _ in 0..repeat {
        pipe.submit(req)?;
    }
    let results = pipe.drain();
    let elapsed = started.elapsed();
    let mut failed = 0usize;
    for (id, result) in &results {
        match result {
            Ok(RdsResponse::Ok) => {}
            Ok(RdsResponse::Instantiated { dpi }) => println!("#{id}: {dpi}"),
            Ok(RdsResponse::Result { value }) => println!("#{id}: {value}"),
            Ok(RdsResponse::Programs { names }) => println!("#{id}: {}", names.join(" ")),
            Ok(RdsResponse::Instances { instances }) => {
                println!("#{id}: {} instance(s)", instances.len());
            }
            Ok(RdsResponse::Journal { records }) => {
                println!("#{id}: {} journal record(s)", records.len());
            }
            Ok(RdsResponse::Profile { trace_id, spans, stacks, .. }) => {
                println!(
                    "#{id}: trace {trace_id:016x}, {} span(s), {} stack line(s)",
                    spans.len(),
                    stacks.len(),
                );
            }
            Ok(RdsResponse::Metrics { series, alerts, .. }) => {
                println!("#{id}: {} series, {} alert rule(s)", series.len(), alerts.len());
            }
            Ok(RdsResponse::Checkpointed { blob }) => {
                println!("#{id}: checkpoint blob ({} bytes)", blob.len());
            }
            Ok(RdsResponse::Error { code, message }) => {
                failed += 1;
                eprintln!("#{id}: remote error ({code}): {message}");
            }
            Err(e) => {
                failed += 1;
                eprintln!("#{id}: {e}");
            }
        }
    }
    let per_sec = results.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "{} request(s), {} ok, {} failed, window {}, {:.1}/s, {} re-send(s), {} reconnect(s)",
        results.len(),
        results.len() - failed,
        failed,
        window,
        per_sec,
        pipe.retries(),
        pipe.duplex().reconnects(),
    );
    // A drain that comes home short means requests were lost in flight
    // (connection died past the retry budget): that is a failure even
    // when every reply that did arrive was Ok.
    if results.len() < repeat {
        return Err(format!(
            "{} of {repeat} request(s) got no reply (connection lost?)",
            repeat - results.len()
        )
        .into());
    }
    if failed > 0 {
        return Err(format!("{failed} request(s) failed").into());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = "127.0.0.1:4700".to_string();
    let mut key: Option<Vec<u8>> = None;
    let mut principal = "mbdctl".to_string();
    let mut retry = RetryPolicy::none();
    let mut pipeline: Option<usize> = None;
    let mut repeat: usize = 1;
    let mut json = false;
    let mut rest: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server" => server = args.next().ok_or("--server needs an address")?,
            "--key" => key = Some(args.next().ok_or("--key needs a secret")?.into_bytes()),
            "--principal" => principal = args.next().ok_or("--principal needs a name")?,
            "--retries" => {
                let n: u32 = args.next().ok_or("--retries needs a count")?.parse()?;
                let defaults = RetryPolicy::default();
                retry = RetryPolicy {
                    max_attempts: n + 1,
                    base_backoff: if retry.base_backoff.is_zero() {
                        defaults.base_backoff
                    } else {
                        retry.base_backoff
                    },
                    max_backoff: defaults.max_backoff,
                    ..retry
                };
            }
            "--backoff-ms" => {
                let ms: u64 = args.next().ok_or("--backoff-ms needs milliseconds")?.parse()?;
                retry.base_backoff = Duration::from_millis(ms);
                retry.max_backoff = retry.max_backoff.max(Duration::from_millis(ms));
            }
            "--deadline-ms" => {
                let ms: u64 = args.next().ok_or("--deadline-ms needs milliseconds")?.parse()?;
                retry.deadline = Some(Duration::from_millis(ms));
            }
            "--pipeline" => {
                let n: usize = args.next().ok_or("--pipeline needs a window size")?.parse()?;
                pipeline = Some(n.max(1));
            }
            "--repeat" => {
                repeat = args.next().ok_or("--repeat needs a count")?.parse::<usize>()?.max(1);
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("see `mbdctl` module docs; commands: delegate delete instantiate invoke suspend resume terminate checkpoint restore send programs instances journal profile metrics top");
                return Ok(());
            }
            other => {
                rest.push(other.to_string());
                rest.extend(args.by_ref());
            }
        }
    }
    let (command, rest) = rest.split_first().ok_or("missing command (try --help)")?;

    if let Some(window) = pipeline {
        let req = build_request(command, rest)?;
        return run_pipelined(&server, key, &principal, retry, window, repeat, &req);
    }
    if repeat != 1 {
        return Err("--repeat needs --pipeline".into());
    }

    let transport = TcpTransport::connect(server.as_str())?;
    let client = match key {
        Some(k) => RdsClient::with_key(transport, &principal, k),
        None => RdsClient::new(transport, &principal),
    }
    .with_retry(retry);

    match (command.as_str(), rest) {
        ("delegate", [name, file]) => {
            let source = std::fs::read_to_string(file)?;
            client.delegate(name, &source)?;
            println!("delegated `{name}` ({} bytes)", source.len());
        }
        ("delete", [name]) => {
            client.delete(name)?;
            println!("deleted `{name}`");
        }
        ("instantiate", [name]) => {
            let dpi = client.instantiate(name)?;
            println!("{dpi}");
        }
        ("invoke", [dpi, entry, args @ ..]) => {
            let dpi = parse_dpi(dpi)?;
            let args: Vec<BerValue> = args.iter().map(|s| parse_arg(s)).collect();
            let result = client.invoke(dpi, entry, &args)?;
            println!("{result}");
        }
        ("suspend", [dpi]) => client.suspend(parse_dpi(dpi)?)?,
        ("resume", [dpi]) => client.resume(parse_dpi(dpi)?)?,
        ("terminate", [dpi]) => client.terminate(parse_dpi(dpi)?)?,
        ("checkpoint", [dpi, rest @ ..]) => {
            let out = match rest {
                [] => None,
                [flag, path] if flag == "-o" || flag == "--out" => Some(path.as_str()),
                _ => return Err("checkpoint takes DPI [-o FILE]".into()),
            };
            let blob = client.checkpoint(parse_dpi(dpi)?)?;
            match out {
                Some(path) => {
                    std::fs::write(path, &blob)?;
                    println!("checkpointed {dpi} to `{path}` ({} bytes)", blob.len());
                }
                None => {
                    use std::io::Write;
                    std::io::stdout().write_all(&blob)?;
                }
            }
        }
        ("restore", [file]) => {
            let blob = std::fs::read(file)?;
            let dpi = client.restore(&blob)?;
            println!("{dpi}");
        }
        ("send", [dpi, payload]) => client.send_message(parse_dpi(dpi)?, payload.as_bytes())?,
        ("programs", []) => {
            for name in client.list_programs()? {
                println!("{name}");
            }
        }
        ("instances", []) => {
            for i in client.list_instances()? {
                println!("{}\t{}\t{}", i.id, i.dp_name, i.state);
            }
        }
        ("journal", rest @ ([] | [_])) => {
            let max: u32 = match rest {
                [m] => m.parse().map_err(|_| format!("bad record count `{m}`"))?,
                _ => 0,
            };
            for r in client.read_journal(max)? {
                if json {
                    println!(
                        "{{\"seq\":{},\"ticks\":{},\"trace\":\"{:016x}\",\"principal\":\"{}\",\"verb\":\"{}\",\"dpi\":{},\"ok\":{},\"detail\":\"{}\"}}",
                        r.seq,
                        r.ticks,
                        r.trace_id,
                        json_escape(&r.principal),
                        json_escape(&r.verb),
                        r.dpi,
                        r.ok,
                        json_escape(&r.detail),
                    );
                } else {
                    println!(
                        "seq={} ticks={} trace={:016x} principal={} verb={} dpi={} {} detail={}",
                        r.seq,
                        r.ticks,
                        r.trace_id,
                        r.principal,
                        r.verb,
                        r.dpi,
                        if r.ok { "ok" } else { "err" },
                        r.detail,
                    );
                }
            }
        }
        ("profile", rest) => {
            let (trace_id, dpi, folded) = parse_profile_args(rest)?;
            let (tid, kept, spans, stacks) = client.read_profile(trace_id, dpi)?;
            if json {
                let spans_json: Vec<String> = spans
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"span_id\":{},\"parent_span_id\":{},\"name\":\"{}\",\"start_ns\":{},\"duration_ns\":{}}}",
                            s.span_id,
                            s.parent_span_id,
                            json_escape(&s.name),
                            s.start_ns,
                            s.duration_ns,
                        )
                    })
                    .collect();
                let stacks_json: Vec<String> =
                    stacks.iter().map(|l| format!("\"{}\"", json_escape(l))).collect();
                println!(
                    "{{\"trace_id\":\"{tid:016x}\",\"kept\":\"{}\",\"spans\":[{}],\"stacks\":[{}]}}",
                    json_escape(&kept),
                    spans_json.join(","),
                    stacks_json.join(","),
                );
            } else if folded {
                for line in &stacks {
                    println!("{line}");
                }
            } else {
                if tid == 0 && spans.is_empty() {
                    println!("no retained span tree (is the server tracing?)");
                } else {
                    println!("trace {tid:016x} kept={kept}");
                    print_span_tree(&spans);
                }
                if !stacks.is_empty() {
                    println!("vm profile ({} stack line(s)):", stacks.len());
                    for line in &stacks {
                        println!("  {line}");
                    }
                }
            }
        }
        ("metrics", rest) => {
            let (pattern, range_s, res_s) = parse_metrics_args(rest)?;
            let (now_s, series, alerts) = client.read_metrics(&pattern, range_s, res_s)?;
            if json {
                metrics_json(now_s, &series, &alerts);
            } else {
                if series.is_empty() {
                    println!("no retained series match `{pattern}` (is history enabled?)");
                }
                for s in &series {
                    println!("{} ({}, {} point(s))", s.name, s.kind, s.points.len());
                    for p in &s.points {
                        println!(
                            "  t={:>6}  min={:<12} avg={:<12} max={:<12} last={}",
                            p.t_s, p.min, p.avg, p.max, p.last,
                        );
                    }
                }
                for a in &alerts {
                    println!(
                        "alert {} [{}] value={} since={} fired={}",
                        a.rule,
                        if a.firing { "FIRING" } else { "ok" },
                        a.value,
                        a.since_s,
                        a.fired_count,
                    );
                }
            }
        }
        ("top", rest @ ([] | [_])) => {
            let once = match rest {
                [] => false,
                [flag] if flag == "--once" => true,
                [flag] => return Err(format!("bad top flag `{flag}` (try --once)").into()),
                _ => unreachable!(),
            };
            loop {
                let (now_s, series, alerts) = client.read_metrics("", 120, 1)?;
                if !once {
                    // Clear and home between frames so the dashboard
                    // repaints in place.
                    print!("\x1b[2J\x1b[H");
                }
                render_top(now_s, &series, &alerts);
                if once {
                    break;
                }
                std::thread::sleep(Duration::from_secs(1));
            }
        }
        (cmd, _) => return Err(format!("bad command or arguments: `{cmd}` (try --help)").into()),
    }
    Ok(())
}
