//! `mbd-server` — run an elastic process behind RDS over TCP.
//!
//! ```console
//! mbd-server [--listen 127.0.0.1:4700] [--key SECRET] [--demo-mib]
//!            [--snmp 127.0.0.1:1161] [--community public] [--stats SECS]
//!            [--journal PATH] [--workers N] [--backlog N]
//!            [--frame-timeout-ms MS] [--idle-poll-ms MS] [--dedup CAP]
//!            [--max-conns N] [--max-in-flight N] [--idle-timeout-ms MS]
//!            [--drain-deadline-ms MS] [--profile-sample N] [--slow-ms MS]
//!            [--history-cap N] [--max-invocations N] [--alert RULE]...
//!            [--state-dir DIR] [--snapshot-every SECS] [--fsync-every N]
//! ```
//!
//! With `--state-dir DIR` the delegation state is **durable** (see
//! `docs/DURABILITY.md`): every delegation-mutating operation is
//! appended to a write-ahead log in DIR before the response leaves, a
//! snapshot of the dpi table is taken every `--snapshot-every` seconds
//! (default 30; 0 disables periodic snapshots), and on boot the server
//! replays snapshot + WAL tail, resuming every delegated agent — VM
//! globals, accounting and lifecycle state intact — exactly as the
//! crash left them. `--fsync-every N` batches WAL fsyncs (1 = sync
//! every record; higher trades a bounded tail of recent operations
//! against throughput).
//!
//! With `--demo-mib` the server's MIB is pre-populated with the MIB-II
//! subset, the concentrator counters and a 100-row ATM VC table, so
//! `mbdctl`-delegated agents have something to compute over.
//!
//! With `--snmp ADDR` the same elastic process is *also* visible to
//! legacy SNMP managers over UDP (RFC 1157's transport), through the
//! OCP adapter: device data, delegated agents' published objects, and
//! the server's own status subtree, e.g.
//! `snmpwalk -v1 -c public 127.0.0.1:1161 1.3.6.1.4.1.20100.1`.
//!
//! With `--stats SECS` the server prints its own telemetry registry
//! (per-verb latency histograms, transport counters, queue-depth
//! gauges) every SECS seconds. The same numbers are exported as the
//! `mbdTelemetry` subtree (`enterprises.20100.4`) over `--snmp`.
//!
//! With `--journal PATH` the audit journal — every RDS operation,
//! lifecycle transition, quota breach and survived panic, each with its
//! trace id — is appended to PATH as one JSON object per line (records
//! already evicted from the bounded in-memory ring are not recovered).
//! Per-dpi resource accounts are republished into the
//! `mbdDpiAccounting` subtree (`enterprises.20100.5`) every second, so
//! both SNMP managers and delegated watchdog agents can read them.
//!
//! The server always runs with span-tree tracing and tail-sampled
//! retention armed: every request is captured as a waterfall (reactor
//! read → queue wait → decode → verb → VM run → encode), and full trees
//! are retained for slow (`--slow-ms`, default 50), errored or frozen
//! requests plus a reservoir of normal ones. The flight recorder
//! freezes the recent span stream on anomalies — a handler panic, a
//! shed burst, a quota breach, or the `rds.request` p99 crossing the
//! slow threshold — filing it under the tripping trace id. Fetch trees
//! with `mbdctl profile [TRACE_ID]`.
//!
//! With `--profile-sample N` every newly instantiated dpi runs under
//! the sampling VM profiler (one sample per N basic-block entries;
//! see `docs/TELEMETRY.md`). Folded stacks are served by `mbdctl
//! profile --folded` and the `mbdProfile` subtree
//! (`enterprises.20100.6`) over `--snmp`.
//!
//! Metrics **history** is always retained: a background 1 Hz sampler
//! snapshots every counter rate, gauge and histogram p50/p99 into
//! multi-resolution rings (1 s / 10 s / 60 s; `--history-cap N` scales
//! their capacities, default 120/180/240 points). Query it with
//! `mbdctl metrics NAME [--range S] [--res R]`, watch it live with
//! `mbdctl top`, or walk the `mbdHistory` subtree
//! (`enterprises.20100.7`) from a delegated agent.
//!
//! `--alert RULE` (repeatable) installs SLO alert rules evaluated
//! in-server against that history —
//! `METRIC(>|<)THRESHOLD[@WINDOWs][:for=N][,clear=M]`, e.g.
//! `--alert 'rds.request.p99>50ms:for=3,clear=5'` (instantaneous
//! threshold with hysteresis) or `--alert 'ep.quota_breaches>0@30s'`
//! (windowed burn rate). Fire/clear transitions are journaled under a
//! trace id, raised as dpi-0 notifications, and a fire trips the
//! flight recorder.
//!
//! With `--max-invocations N` every dpi runs under a per-instance
//! invocation quota: the N+1-th invocation trips the resource brake
//! (suspension, a journaled `quota.breach`, the `ep.quota_breaches`
//! counter — a natural `--alert` target — and a flight-recorder
//! freeze).
//!
//! The transport knobs tune the event-driven front-end and the
//! fault-tolerant session layer (see `docs/RDS.md` and `DESIGN.md`
//! §10): `--workers` sizes the execution tier — both the reactor's
//! worker pool and the work-stealing invoke executor behind it
//! (DESIGN.md §14), so `Invoke` requests queue per-dpi and a burst
//! against one agent occupies one executor worker, never the whole
//! tier — `--backlog` its request
//! queue (beyond it a *request* is shed with an explicit `Busy` frame
//! carrying its id, which retrying clients back off on), `--max-conns`
//! caps the reactor's connection table (over-cap connections get
//! `Busy` at accept), `--max-in-flight` bounds one connection's
//! pipelining window, `--frame-timeout-ms` and `--idle-timeout-ms`
//! bound slow and idle peers (idle reaping is off by default — an idle
//! manager costs one fd, not a thread), `--drain-deadline-ms` bounds
//! shutdown, and `--dedup CAP` sizes the per-principal
//! duplicate-suppression cache (`--dedup 0` disables exactly-once
//! replay entirely).

use mbd::core::{AuditRecord, ElasticConfig, ElasticProcess, ExecutorConfig, MbdServer};
use mbd::rds::{TcpServer, TcpServerConfig};
use std::io::Write;
use std::sync::Arc;

/// Minimal JSON string escaping for journal fields (quotes, backslashes
/// and control characters; everything else passes through).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_line(r: &AuditRecord) -> String {
    format!(
        "{{\"seq\":{},\"ticks\":{},\"trace\":\"{:016x}\",\"principal\":\"{}\",\
         \"verb\":\"{}\",\"dpi\":{},\"ok\":{},\"detail\":\"{}\"}}",
        r.seq,
        r.ticks,
        r.trace_id,
        json_escape(&r.principal),
        json_escape(&r.verb),
        r.dpi,
        r.ok,
        json_escape(&r.detail),
    )
}

/// Mints a non-zero trace id for a server-originated journal entry
/// (splitmix64 of a loop-local seed — alert edges need an id that is
/// unique within the journal, not cryptographic).
fn alert_trace_id(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut listen = "127.0.0.1:4700".to_string();
    let mut key: Option<Vec<u8>> = None;
    let mut demo_mib = false;
    let mut snmp_listen: Option<String> = None;
    let mut community = "public".to_string();
    let mut stats_every: Option<u64> = None;
    let mut journal_path: Option<String> = None;
    let defaults = TcpServerConfig::default();
    let mut workers = defaults.workers;
    let mut backlog = defaults.backlog;
    let mut frame_timeout = defaults.frame_timeout;
    let mut idle_poll = defaults.idle_poll;
    let mut idle_timeout = defaults.idle_timeout;
    let mut max_connections = defaults.max_connections;
    let mut max_in_flight = defaults.max_in_flight_per_conn;
    let mut drain_deadline = defaults.drain_deadline;
    let mut dedup_capacity = mbd::rds::DEFAULT_DEDUP_CAPACITY;
    let mut profile_sample: u32 = 0;
    let mut slow_ms: u64 = 50;
    let mut history_cap: usize = 120;
    let mut alert_rules: Vec<mbd::telemetry::AlertRule> = Vec::new();
    let mut max_invocations: Option<u64> = None;
    let mut state_dir: Option<String> = None;
    let mut snapshot_every: u64 = 30;
    let mut fsync_every: usize = mbd::core::durable::DEFAULT_FSYNC_EVERY;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().ok_or("--listen needs an address")?,
            "--key" => key = Some(args.next().ok_or("--key needs a secret")?.into_bytes()),
            "--demo-mib" => demo_mib = true,
            "--snmp" => snmp_listen = Some(args.next().ok_or("--snmp needs an address")?),
            "--community" => community = args.next().ok_or("--community needs a name")?,
            "--stats" => {
                let secs: u64 =
                    args.next().ok_or("--stats needs an interval in seconds")?.parse()?;
                stats_every = Some(secs.max(1));
            }
            "--journal" => journal_path = Some(args.next().ok_or("--journal needs a path")?),
            "--workers" => {
                workers = args.next().ok_or("--workers needs a count")?.parse::<usize>()?.max(1);
            }
            "--backlog" => {
                backlog = args.next().ok_or("--backlog needs a count")?.parse()?;
            }
            "--frame-timeout-ms" => {
                let ms: u64 =
                    args.next().ok_or("--frame-timeout-ms needs milliseconds")?.parse()?;
                frame_timeout = std::time::Duration::from_millis(ms.max(1));
            }
            "--idle-poll-ms" => {
                let ms: u64 = args.next().ok_or("--idle-poll-ms needs milliseconds")?.parse()?;
                idle_poll = std::time::Duration::from_millis(ms.max(1));
            }
            "--idle-timeout-ms" => {
                let ms: u64 = args.next().ok_or("--idle-timeout-ms needs milliseconds")?.parse()?;
                idle_timeout =
                    if ms == 0 { None } else { Some(std::time::Duration::from_millis(ms)) };
            }
            "--max-conns" => {
                max_connections =
                    args.next().ok_or("--max-conns needs a count")?.parse::<usize>()?.max(1);
            }
            "--max-in-flight" => {
                max_in_flight =
                    args.next().ok_or("--max-in-flight needs a count")?.parse::<usize>()?.max(1);
            }
            "--drain-deadline-ms" => {
                let ms: u64 =
                    args.next().ok_or("--drain-deadline-ms needs milliseconds")?.parse()?;
                drain_deadline = std::time::Duration::from_millis(ms);
            }
            "--dedup" => {
                dedup_capacity =
                    args.next().ok_or("--dedup needs a per-principal capacity")?.parse()?;
            }
            "--profile-sample" => {
                profile_sample =
                    args.next().ok_or("--profile-sample needs a 1-in-N rate (0 = off)")?.parse()?;
            }
            "--slow-ms" => {
                slow_ms = args
                    .next()
                    .ok_or("--slow-ms needs a latency threshold in milliseconds")?
                    .parse::<u64>()?
                    .max(1);
            }
            "--history-cap" => {
                history_cap = args
                    .next()
                    .ok_or("--history-cap needs a 1 s ring capacity in points")?
                    .parse::<usize>()?
                    .max(1);
            }
            "--alert" => {
                let rule =
                    args.next().ok_or("--alert needs a rule, e.g. 'rds.request.p99>50ms'")?;
                alert_rules.push(mbd::telemetry::AlertRule::parse(&rule)?);
            }
            "--max-invocations" => {
                max_invocations = Some(
                    args.next()
                        .ok_or("--max-invocations needs a per-dpi limit")?
                        .parse::<u64>()?
                        .max(1),
                );
            }
            "--state-dir" => {
                state_dir = Some(args.next().ok_or("--state-dir needs a directory")?);
            }
            "--snapshot-every" => {
                snapshot_every =
                    args.next().ok_or("--snapshot-every needs seconds (0 = off)")?.parse()?;
            }
            "--fsync-every" => {
                fsync_every = args
                    .next()
                    .ok_or("--fsync-every needs a record count (1 = every record)")?
                    .parse::<usize>()?
                    .max(1);
            }
            "--help" | "-h" => {
                println!(
                    "usage: mbd-server [--listen ADDR] [--key SECRET] [--demo-mib] \
                     [--snmp ADDR] [--community NAME] [--stats SECS] [--journal PATH] \
                     [--workers N] [--backlog N] [--frame-timeout-ms MS] \
                     [--idle-poll-ms MS] [--dedup CAP] [--max-conns N] \
                     [--max-in-flight N] [--idle-timeout-ms MS] [--drain-deadline-ms MS] \
                     [--profile-sample N] [--slow-ms MS] [--history-cap N] \
                     [--max-invocations N] \
                     [--alert 'METRIC(>|<)THRESHOLD[@WINDOWs][:for=N][,clear=M]']... \
                     [--state-dir DIR] [--snapshot-every SECS] [--fsync-every N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }

    let quota = max_invocations.map(|limit| mbd::core::DpiQuota {
        max_invocations: Some(limit),
        ..mbd::core::DpiQuota::default()
    });
    let process =
        ElasticProcess::new(ElasticConfig { profile_sample, quota, ..ElasticConfig::default() });
    // Span trees and the flight recorder are always on: the ring is
    // bounded, capture is per-request, and tail sampling keeps only
    // anomalous trees plus a small reservoir.
    let slow_ns = slow_ms.saturating_mul(1_000_000);
    process.telemetry().enable_tracing(4096);
    process.telemetry().enable_trace_store(mbd::telemetry::TraceStoreConfig {
        slow_ns,
        ..mbd::telemetry::TraceStoreConfig::default()
    });
    // Metrics history is always on (fixed-capacity rings); the alert
    // engine carries whatever rules the operator configured. The
    // background sampler thread feeds both at 1 Hz — its guard lives
    // for the life of main.
    process.telemetry().enable_history(mbd::telemetry::HistoryConfig::with_base_cap(history_cap));
    let alert_count = alert_rules.len();
    process.telemetry().enable_alerts(alert_rules);
    let _sampler = process.telemetry().start_history_sampler();
    if alert_count > 0 {
        println!("alert engine armed with {alert_count} rule(s)");
    }
    if demo_mib {
        mbd::snmp::mib2::install_system(process.mib(), "mbd demo device", "demo")?;
        mbd::snmp::mib2::install_interfaces(process.mib(), 4, 10_000_000)?;
        mbd::snmp::mib2::install_concentrator(process.mib())?;
        mbd::snmp::mib2::install_atm_vc_table(process.mib(), 100)?;
        println!("demo MIB installed ({} objects)", process.mib().len());
    }
    // Durability must be armed before the transport accepts its first
    // request: recovery replays the previous incarnation's state, and
    // every operation after this point is WAL-logged.
    if let Some(dir) = &state_dir {
        let report = process.attach_durability(std::path::Path::new(dir), fsync_every)?;
        println!(
            "durable state in {dir}: recovered {} dpi(s) ({} program(s), {} WAL record(s), \
             {} abandoned, {} torn byte(s) discarded) in {} ms [trace {:016x}]",
            report.restored_dpis,
            report.restored_programs,
            report.wal_records,
            report.abandoned_dpis,
            report.torn_bytes,
            report.recovery_ms,
            report.trace_id,
        );
    }
    let authenticated = key.is_some();
    let server = Arc::new(
        MbdServer::with_policy(process.clone(), mbd_auth::Acl::allow_by_default(), key.clone())
            .with_dedup_capacity(dedup_capacity),
    );
    // Invoke requests dispatch through the work-stealing executor
    // (DESIGN.md §14): per-dpi FIFO queues drained in batches, sized to
    // the same width as the reactor's worker tier.
    server.arm_executor(ExecutorConfig { workers, ..ExecutorConfig::default() });

    // The transport records into the process's telemetry domain, so one
    // snapshot (and one OCP subtree) covers rds.tcp.*, rds.verb.* and
    // the ep.* runtime metrics together.
    let tcp = {
        let server = Arc::clone(&server);
        // A connection handler that panics (and is survived by the
        // transport) leaves an audit trail too.
        let panic_process = process.clone();
        let shed_process = process.clone();
        // A keyed server sheds with a keyed Busy frame (under the shed
        // request's own id) so retrying clients can verify the digest
        // before backing off.
        let shed_response: Option<Arc<dyn Fn(i64) -> Vec<u8> + Send + Sync>> =
            key.clone().map(|key| {
                Arc::new(move |request_id: i64| {
                    mbd::rds::codec::encode_response(
                        &mbd::rds::RdsResponse::Error {
                            code: mbd::rds::ErrorCode::Busy,
                            message: "server overloaded, retry later".to_string(),
                        },
                        request_id,
                        Some(key.as_slice()),
                    )
                }) as Arc<dyn Fn(i64) -> Vec<u8> + Send + Sync>
            });
        let config = TcpServerConfig {
            workers,
            backlog,
            frame_timeout,
            idle_poll,
            idle_timeout,
            max_connections,
            max_in_flight_per_conn: max_in_flight,
            drain_deadline,
            telemetry: Some(process.telemetry().clone()),
            on_panic: Some(Arc::new(move || {
                panic_process.journal().record(
                    panic_process.ticks(),
                    0,
                    "server",
                    "panic",
                    0,
                    false,
                    "connection handler panicked; connection dropped",
                );
                // Flight recorder: a panic is always worth a snapshot of
                // the span stream that led up to it.
                panic_process.telemetry().flight_freeze(0, "handler panic");
            })),
            shed_response,
            on_shed: Some(Arc::new(move || {
                shed_process.journal().record(
                    shed_process.ticks(),
                    0,
                    "server",
                    "shed",
                    0,
                    false,
                    "execution tier saturated; request shed with Busy",
                );
                // Freeze on the first shed of a burst (and every 256th
                // after): one snapshot per overload episode, not one per
                // shed request.
                static SHEDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                if SHEDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed).is_multiple_of(256) {
                    shed_process.telemetry().flight_freeze(0, "shed burst");
                }
            })),
        };
        // The reactor holds one fd per open connection; lift the
        // process's descriptor ceiling toward --max-conns (best-effort —
        // headroom covers the listener, waker pipe and journal).
        mbd::rds::reactor::raise_nofile_limit(max_connections as u64 + 512);
        TcpServer::spawn_with(listen.as_str(), config, move |bytes| server.process_request(bytes))?
    };
    println!(
        "mbd-server listening on {} (auth: {}, {} workers, backlog {}, max-conns {}, dedup {})",
        tcp.local_addr(),
        if authenticated { "md5 keyed digest" } else { "none" },
        workers,
        backlog,
        max_connections,
        if dedup_capacity == 0 { "off".to_string() } else { format!("{dedup_capacity}/principal") },
    );

    // The OCP adapter publishes server status, telemetry and per-dpi
    // accounting into the shared MIB. It always exists (delegated
    // agents read the subtrees via mib_walk even without SNMP); the UDP
    // plane for legacy managers is optional.
    let ocp = mbd::core::ocp::SnmpOcp::new(process.clone(), &community);
    if let Some(addr) = snmp_listen {
        let ocp = ocp.clone();
        let socket = std::net::UdpSocket::bind(addr.as_str())?;
        println!("snmp agent (community `{community}`) on udp {}", socket.local_addr()?);
        std::thread::spawn(move || {
            let mut buf = [0u8; 65_535];
            loop {
                let Ok((n, peer)) = socket.recv_from(&mut buf) else { continue };
                if let Some(resp) = ocp.handle(&buf[..n]) {
                    let _ = socket.send_to(&resp, peer);
                }
            }
        });
    }
    let mut journal_out = match &journal_path {
        Some(path) => {
            let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
            println!("audit journal appending to {path}");
            Some(file)
        }
        None => None,
    };
    println!("press ctrl-c to stop");

    // Periodically surface agent notifications, log lines, new journal
    // records, and (with --stats) the server's own telemetry registry.
    let mut seconds: u64 = 0;
    let mut journal_seq: u64 = 0;
    let mut last_p99_freeze: u64 = 0;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        seconds += 1;
        process.advance_ticks(100);
        ocp.refresh();
        // Durability housekeeping: flush any batched WAL tail once a
        // second (bounding data-at-risk to ~1 s of operations even with
        // a large --fsync-every), and snapshot + truncate on cadence.
        if state_dir.is_some() {
            process.durable_sync();
            if snapshot_every > 0 && seconds.is_multiple_of(snapshot_every) {
                if let Err(e) = process.snapshot_now() {
                    eprintln!("[durable] snapshot failed: {e}");
                }
            }
        }
        // Flight recorder, latency trigger: when the rds.request p99
        // crosses the slow threshold, freeze the recent span stream (at
        // most once per 30 s — one snapshot per episode).
        if seconds >= last_p99_freeze + 30 {
            if let Some(h) = process.telemetry().snapshot().histogram("rds.request") {
                if h.count() > 0 && h.p99_ns() >= slow_ns {
                    last_p99_freeze = seconds;
                    let n = process
                        .telemetry()
                        .flight_freeze(0, &format!("p99 breach: {} ms", h.p99_ns() / 1_000_000));
                    println!("[flight] rds.request p99 over {slow_ms} ms; froze {n} spans");
                }
            }
        }
        // Alert edges from the background sampler: journal each under a
        // minted trace id, notify the manager stream, and freeze the
        // flight recorder on fires (the spans leading up to the breach
        // are exactly what the operator will want).
        for edge in process.telemetry().alerts().map(|a| a.drain_transitions()).unwrap_or_default()
        {
            let trace_id = alert_trace_id(seconds << 32 | edge.t_s);
            let verb = if edge.fired { "alert.fire" } else { "alert.clear" };
            let detail = format!("{} value {} threshold {}", edge.rule, edge.value, edge.threshold);
            process.journal().record(
                process.ticks(),
                trace_id,
                "server",
                verb,
                0,
                !edge.fired,
                &detail,
            );
            process.raise_notification(
                mbd::dpl::Value::list(vec![
                    mbd::dpl::Value::Str(verb.to_string()),
                    mbd::dpl::Value::Str(edge.rule.clone()),
                    mbd::dpl::Value::Int(edge.value as i64),
                ]),
                trace_id,
            );
            if edge.fired {
                let n = process
                    .telemetry()
                    .flight_freeze(trace_id, &format!("alert fired: {}", edge.rule));
                println!("[alert]  FIRED {} (value {}); froze {n} spans", edge.rule, edge.value);
            } else {
                println!("[alert]  cleared {} (value {})", edge.rule, edge.value);
            }
        }
        for note in process.drain_notifications() {
            if note.trace_id == 0 {
                println!("[notify] {}: {}", note.dpi, note.value);
            } else {
                println!("[notify] {} [{:016x}]: {}", note.dpi, note.trace_id, note.value);
            }
        }
        for line in process.drain_log() {
            println!("[agent]  {line}");
        }
        if let Some(out) = &mut journal_out {
            for record in process.journal().since(journal_seq) {
                journal_seq = record.seq;
                writeln!(out, "{}", json_line(&record))?;
            }
            out.flush()?;
        }
        if let Some(every) = stats_every {
            if seconds.is_multiple_of(every) {
                println!("[stats]\n{}", process.telemetry().snapshot_text());
            }
        }
    }
}
