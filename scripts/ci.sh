#!/usr/bin/env bash
# The full local gate: formatting, lints, build, and every test in the
# workspace. CI and pre-push hooks should run exactly this script so
# the two can never disagree.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> telemetry smoke: integration tests (histograms + OCP walk)"
# Drives RDS verbs through the protocol front-end, asserts non-zero
# per-verb latency histograms, and walks the mbdTelemetry OCP subtree
# with the legacy SNMP manager engine.
cargo test --release -q --test telemetry

echo "==> telemetry smoke: live server binary"
SMOKE_DIR="$(mktemp -d)"
SMOKE_LOG="$SMOKE_DIR/server.log"
SMOKE_PORT=$((21000 + RANDOM % 20000))
echo 'fn main() { return 41 + 1; }' > "$SMOKE_DIR/work.dpl"
./target/release/mbd-server --listen "127.0.0.1:$SMOKE_PORT" --stats 1 \
    > "$SMOKE_LOG" 2>&1 &
SMOKE_PID=$!
FLOOD_PID=""
PROF_PID=""
HIST_PID=""
DUR_PID=""
cleanup_smoke() {
    kill "$SMOKE_PID" 2>/dev/null || true
    [ -n "$FLOOD_PID" ] && kill "$FLOOD_PID" 2>/dev/null || true
    [ -n "$PROF_PID" ] && kill "$PROF_PID" 2>/dev/null || true
    [ -n "$HIST_PID" ] && kill "$HIST_PID" 2>/dev/null || true
    [ -n "$DUR_PID" ] && kill -9 "$DUR_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT
MBDCTL=(./target/release/mbdctl --server "127.0.0.1:$SMOKE_PORT")
for _ in $(seq 1 50); do
    "${MBDCTL[@]}" programs >/dev/null 2>&1 && break
    sleep 0.1
done
"${MBDCTL[@]}" delegate smoke "$SMOKE_DIR/work.dpl" >/dev/null
SMOKE_DPI="$("${MBDCTL[@]}" instantiate smoke)"
for _ in 1 2 3 4 5; do
    "${MBDCTL[@]}" invoke "$SMOKE_DPI" main >/dev/null
done
"${MBDCTL[@]}" suspend "$SMOKE_DPI" >/dev/null
"${MBDCTL[@]}" resume "$SMOKE_DPI" >/dev/null
sleep 2 # let a --stats tick print the filled histograms (and refresh OCP)

# A delegated watchdog agent walks its own server's mbdDpiAccounting
# subtree (enterprises.20100.5) — the accounting rows must be there.
echo 'fn count() { return len(mib_walk("1.3.6.1.4.1.20100.5")); }' > "$SMOKE_DIR/walker.dpl"
"${MBDCTL[@]}" delegate walker "$SMOKE_DIR/walker.dpl" >/dev/null
WALKER_DPI="$("${MBDCTL[@]}" instantiate walker)"
ACCT_ROWS="$("${MBDCTL[@]}" invoke "$WALKER_DPI" count)"
[ "$ACCT_ROWS" -gt 0 ] 2>/dev/null || {
    echo "smoke FAILED: delegated walk of 20100.5 saw no accounting rows (got \`$ACCT_ROWS\`)"
    exit 1
}

# The audit journal must have recorded the driven verbs, each under a
# non-zero trace id minted by mbdctl.
JOURNAL_OUT="$SMOKE_DIR/journal.txt"
"${MBDCTL[@]}" journal > "$JOURNAL_OUT"
for verb in delegate instantiate invoke suspend resume; do
    grep -Eq "trace=0{16} .* verb=$verb " "$JOURNAL_OUT" && {
        echo "smoke FAILED: journal has an untraced \`$verb\` record:"
        grep " verb=$verb " "$JOURNAL_OUT"
        exit 1
    }
    grep -Eq "trace=[0-9a-f]{16} principal=mbdctl verb=$verb " "$JOURNAL_OUT" || {
        echo "smoke FAILED: journal is missing a traced \`$verb\` record:"
        cat "$JOURNAL_OUT"
        exit 1
    }
done
echo "smoke ok: $ACCT_ROWS accounting rows walked, $(wc -l < "$JOURNAL_OUT") journal records traced"

kill "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
for metric in 'rds\.verb\.invoke +5 ' 'ep\.invoke +5 ' \
    'rds\.verb\.suspend +1 ' 'rds\.tcp\.request +[1-9]'; do
    grep -Eq "  $metric" "$SMOKE_LOG" || {
        echo "smoke FAILED: \`$metric\` not in the server's --stats output:"
        cat "$SMOKE_LOG"
        exit 1
    }
done
echo "smoke ok: per-verb histograms filled ($(grep -c 'telemetry snapshot' "$SMOKE_LOG") stats ticks)"

echo "==> profile smoke: span trees + VM profiler over a live server"
# Boots a profiled server (1-in-16 block sampling), drives a looping dp,
# and asserts the three observability surfaces: `mbdctl profile` shows
# the span waterfall with the VM-run span, `--folded` emits non-empty
# folded stacks attributing samples to the dp's entry function, and a
# delegated agent walks the mbdProfile OCP subtree (enterprises.20100.6).
# --slow-ms 1 classifies the multi-ms spin invokes as slow, so they land
# in the always-kept anomaly ring and `mbdctl profile` (latest tree) sees
# the last invoke regardless of the normal reservoir's 1-in-N thinning.
PROF_PORT=$((21000 + RANDOM % 20000))
PROF_LOG="$SMOKE_DIR/profile_server.log"
./target/release/mbd-server --listen "127.0.0.1:$PROF_PORT" \
    --profile-sample 16 --slow-ms 1 --stats 1 > "$PROF_LOG" 2>&1 &
PROF_PID=$!
PROFCTL=(./target/release/mbdctl --server "127.0.0.1:$PROF_PORT")
for _ in $(seq 1 50); do
    "${PROFCTL[@]}" programs >/dev/null 2>&1 && break
    sleep 0.1
done
echo 'fn main(n) { var t = 0; var i = 0; while (i < n) { t = t + i; i = i + 1; } return t; }' \
    > "$SMOKE_DIR/spin.dpl"
"${PROFCTL[@]}" delegate spin "$SMOKE_DIR/spin.dpl" >/dev/null
PROF_DPI="$("${PROFCTL[@]}" instantiate spin)"
for _ in 1 2 3 4 5; do
    "${PROFCTL[@]}" invoke "$PROF_DPI" main 20000 >/dev/null
done

"${PROFCTL[@]}" profile > "$SMOKE_DIR/profile.txt"
grep -q "ep.vm_run" "$SMOKE_DIR/profile.txt" || {
    echo "profile smoke FAILED: span tree is missing the ep.vm_run span:"
    cat "$SMOKE_DIR/profile.txt"
    exit 1
}
"${PROFCTL[@]}" profile --folded > "$SMOKE_DIR/folded.txt"
grep -Eq "main@[0-9]+ [1-9]" "$SMOKE_DIR/folded.txt" || {
    echo "profile smoke FAILED: no folded stack attributes samples to main:"
    cat "$SMOKE_DIR/folded.txt"
    exit 1
}

sleep 2 # let a --stats tick refresh the OCP tree with the profile rows
echo 'fn count() { return len(mib_walk("1.3.6.1.4.1.20100.6")); }' > "$SMOKE_DIR/pwalker.dpl"
"${PROFCTL[@]}" delegate pwalker "$SMOKE_DIR/pwalker.dpl" >/dev/null
PWALK_DPI="$("${PROFCTL[@]}" instantiate pwalker)"
PROF_ROWS="$("${PROFCTL[@]}" invoke "$PWALK_DPI" count)"
[ "$PROF_ROWS" -gt 0 ] 2>/dev/null || {
    echo "profile smoke FAILED: delegated walk of 20100.6 saw no profile rows (got \`$PROF_ROWS\`)"
    exit 1
}
kill "$PROF_PID" 2>/dev/null || true
wait "$PROF_PID" 2>/dev/null || true
PROF_PID=""
echo "profile smoke ok: $(wc -l < "$SMOKE_DIR/folded.txt") folded stacks, $PROF_ROWS mbdProfile leaves walked"

echo "==> history smoke: metrics history + SLO alerts over a live server"
# Boots a server with a p99 alert rule, a quota-breach burn-rate rule
# and a 3-invocation quota; drives repeated quota breaches via mbdctl
# (resume + invoke re-trips the brake each round, so the breach counter
# rate is comfortably non-zero for the sampler), then asserts the
# surfaces: `mbdctl top --once` renders a firing dashboard, `mbdctl
# metrics` returns retained history (text and --json), the journal has
# the alert fire/clear pair under real trace ids, and a delegated agent
# walks the mbdHistory/mbdAlerts subtree (enterprises.20100.7).
HIST_PORT=$((21000 + RANDOM % 20000))
HIST_LOG="$SMOKE_DIR/history_server.log"
./target/release/mbd-server --listen "127.0.0.1:$HIST_PORT" --stats 1 \
    --history-cap 240 --max-invocations 3 \
    --alert 'rds.verb.invoke.p99>1us:for=1' \
    --alert 'ep.quota_breaches>0:for=1,clear=2' > "$HIST_LOG" 2>&1 &
HIST_PID=$!
HISTCTL=(./target/release/mbdctl --server "127.0.0.1:$HIST_PORT")
for _ in $(seq 1 50); do
    "${HISTCTL[@]}" programs >/dev/null 2>&1 && break
    sleep 0.1
done
"${HISTCTL[@]}" delegate smoke "$SMOKE_DIR/work.dpl" >/dev/null
HIST_DPI="$("${HISTCTL[@]}" instantiate smoke)"
for _ in 1 2 3; do
    "${HISTCTL[@]}" invoke "$HIST_DPI" main >/dev/null
done
# Each extra round breaches the cumulative quota again: the brake
# suspends, resume re-arms, the next invoke re-trips.
for _ in 1 2 3 4 5; do
    "${HISTCTL[@]}" invoke "$HIST_DPI" main >/dev/null 2>&1 || true
    "${HISTCTL[@]}" resume "$HIST_DPI" >/dev/null 2>&1 || true
done
sleep 5 # sampler fires the breach rule, then two quiet samples clear it

"${HISTCTL[@]}" top --once > "$SMOKE_DIR/top.txt"
grep -q "mbd top" "$SMOKE_DIR/top.txt" && grep -q "hottest counters" "$SMOKE_DIR/top.txt" || {
    echo "history smoke FAILED: top --once did not render a dashboard:"
    cat "$SMOKE_DIR/top.txt"
    exit 1
}
grep -q "FIRING" "$SMOKE_DIR/top.txt" || {
    echo "history smoke FAILED: no firing alert on the dashboard (p99 rule must fire):"
    cat "$SMOKE_DIR/top.txt"
    exit 1
}
"${HISTCTL[@]}" metrics 'rds.verb.invoke*' --range 300 > "$SMOKE_DIR/metrics.txt"
grep -q "rds.verb.invoke.p99 (quantile" "$SMOKE_DIR/metrics.txt" || {
    echo "history smoke FAILED: metrics returned no retained p99 history:"
    cat "$SMOKE_DIR/metrics.txt"
    exit 1
}
"${HISTCTL[@]}" --json metrics 'rds.verb.invoke*' --range 300 > "$SMOKE_DIR/metrics.json"
grep -q '"name":"rds.verb.invoke.p99"' "$SMOKE_DIR/metrics.json" || {
    echo "history smoke FAILED: metrics --json is missing the p99 series:"
    cat "$SMOKE_DIR/metrics.json"
    exit 1
}
"${HISTCTL[@]}" journal > "$SMOKE_DIR/alert_journal.txt"
grep -Eq "trace=[0-9a-f]{16} principal=server verb=alert.fire .*ep.quota_breaches" \
    "$SMOKE_DIR/alert_journal.txt" || {
    echo "history smoke FAILED: no traced alert.fire for the breach rule in the journal:"
    cat "$SMOKE_DIR/alert_journal.txt"
    exit 1
}
grep -Eq "trace=[0-9a-f]{16} principal=server verb=alert.clear .*ep.quota_breaches" \
    "$SMOKE_DIR/alert_journal.txt" || {
    echo "history smoke FAILED: the breach alert never cleared (hysteresis broken?):"
    cat "$SMOKE_DIR/alert_journal.txt"
    exit 1
}
# Capture to a file before grepping: grep -q quitting on first match
# would SIGPIPE mbdctl mid-print, and pipefail turns that into a
# spurious failure even when the record is present.
"${HISTCTL[@]}" --json journal > "$SMOKE_DIR/alert_journal.json"
grep -q '"verb":"alert.fire"' "$SMOKE_DIR/alert_journal.json" || {
    echo "history smoke FAILED: journal --json is missing the alert.fire record"
    exit 1
}
echo 'fn count() { return len(mib_walk("1.3.6.1.4.1.20100.7")); }' > "$SMOKE_DIR/hwalker.dpl"
"${HISTCTL[@]}" delegate hwalker "$SMOKE_DIR/hwalker.dpl" >/dev/null
HWALK_DPI="$("${HISTCTL[@]}" instantiate hwalker)"
HIST_ROWS="$("${HISTCTL[@]}" invoke "$HWALK_DPI" count)"
[ "$HIST_ROWS" -gt 0 ] 2>/dev/null || {
    echo "history smoke FAILED: delegated walk of 20100.7 saw no history rows (got \`$HIST_ROWS\`)"
    exit 1
}
kill "$HIST_PID" 2>/dev/null || true
wait "$HIST_PID" 2>/dev/null || true
HIST_PID=""
echo "history smoke ok: alert pair journaled, $HIST_ROWS mbdHistory/mbdAlerts leaves walked"

echo "==> telemetry smoke: self-health example"
cargo run --release -q --example self_health > "$SMOKE_DIR/self_health.out"
grep -q "server degraded" "$SMOKE_DIR/self_health.out" || {
    echo "smoke FAILED: self_health example did not raise a degradation event"
    cat "$SMOKE_DIR/self_health.out"
    exit 1
}

echo "==> chaos smoke: seeded fault injection (exactly-once under retries)"
# A fixed-seed fault schedule (drops, delays, dedup replays) driven
# through the retrying client; the example exits non-zero unless the
# workflow converges exactly-once AND the schedule forced at least one
# retry and one dedup replay.
cargo run --release -q --example fault_injection 3 > "$SMOKE_DIR/chaos.out" || {
    echo "chaos smoke FAILED:"
    cat "$SMOKE_DIR/chaos.out"
    exit 1
}
grep -q "chaos ok: exactly-once held" "$SMOKE_DIR/chaos.out" || {
    echo "chaos smoke FAILED: no convergence line:"
    cat "$SMOKE_DIR/chaos.out"
    exit 1
}
grep -E "client retries  : [1-9]" "$SMOKE_DIR/chaos.out" >/dev/null || {
    echo "chaos smoke FAILED: zero retries — schedule did not bite"
    exit 1
}
grep -E "dedup replays   : [1-9]" "$SMOKE_DIR/chaos.out" >/dev/null || {
    echo "chaos smoke FAILED: zero dedup replays — schedule did not bite"
    exit 1
}
echo "chaos smoke ok: $(grep 'chaos ok' "$SMOKE_DIR/chaos.out")"

echo "==> conn smoke: reactor front-end under an idle-connection flood"
# In-process first: 3000 idle connections against the E11 configuration
# (reactor + fixed 4-worker tier); the example asserts the gauges
# directly — all connections registered, health accepting, zero sheds,
# bounded drain — and drives every RDS verb under the flood.
cargo run --release -q --example conn_flood 3000 > "$SMOKE_DIR/flood.out" || {
    echo "conn smoke FAILED:"
    cat "$SMOKE_DIR/flood.out"
    exit 1
}
grep -q "conn flood ok" "$SMOKE_DIR/flood.out" || {
    echo "conn smoke FAILED: no convergence line:"
    cat "$SMOKE_DIR/flood.out"
    exit 1
}

# Then against the real binary: a 4-worker mbd-server takes the same
# flood, and its own --stats gauges must stay in the accepting band.
FLOOD_PORT=$((21000 + RANDOM % 20000))
FLOOD_LOG="$SMOKE_DIR/flood_server.log"
./target/release/mbd-server --listen "127.0.0.1:$FLOOD_PORT" --workers 4 \
    --max-conns 6000 --stats 1 > "$FLOOD_LOG" 2>&1 &
FLOOD_PID=$!
for _ in $(seq 1 50); do
    ./target/release/mbdctl --server "127.0.0.1:$FLOOD_PORT" programs >/dev/null 2>&1 && break
    sleep 0.1
done
cargo run --release -q --example conn_flood 3000 "127.0.0.1:$FLOOD_PORT" \
    > "$SMOKE_DIR/flood_binary.out" || {
    echo "conn smoke FAILED against mbd-server:"
    cat "$SMOKE_DIR/flood_binary.out"
    exit 1
}
sleep 2 # let a --stats tick record the post-flood gauges
kill "$FLOOD_PID" 2>/dev/null || true
wait "$FLOOD_PID" 2>/dev/null || true
FLOOD_PID=""
grep -Eq "rds\.tcp\.health +0" "$FLOOD_LOG" || {
    echo "conn smoke FAILED: health gauge never reported accepting (0):"
    cat "$FLOOD_LOG"
    exit 1
}
if grep -Eq "rds\.tcp\.health +[1-9]" "$FLOOD_LOG"; then
    echo "conn smoke FAILED: health gauge left the accepting band under an idle flood:"
    grep -E "rds\.tcp\.health" "$FLOOD_LOG"
    exit 1
fi
if grep -Eq "rds\.shed +[1-9]" "$FLOOD_LOG"; then
    echo "conn smoke FAILED: idle connections caused request sheds:"
    grep -E "rds\.shed" "$FLOOD_LOG"
    exit 1
fi
echo "conn smoke ok: $(grep 'conn flood ok' "$SMOKE_DIR/flood_binary.out")"

echo "==> conn smoke: E11 scaling gate (release-gated) + artifacts"
# The release-only gate holds 5000 connections open against the fixed
# 4-worker tier and compares active-request p99 with an in-test
# thread-per-connection baseline at 256 connections.
cargo test --release -q -p mbd-bench --lib e11
cargo run --release -q -p mbd-bench --bin exp_conn >/dev/null
[ -s bench/out/BENCH_E11.json ] && [ -s bench/out/E11.csv ] || {
    echo "conn smoke FAILED: exp_conn did not write bench/out/BENCH_E11.json + E11.csv"
    exit 1
}
grep -q '"section": "ceiling"' bench/out/BENCH_E11.json || {
    echo "conn smoke FAILED: BENCH_E11.json is missing the open-connection ceiling row"
    exit 1
}
grep -q '"frontend": "threaded"' bench/out/BENCH_E11.json || {
    echo "conn smoke FAILED: BENCH_E11.json is missing the thread-per-connection baseline"
    exit 1
}
echo "conn smoke ok: $(grep -c '"section"' bench/out/BENCH_E11.json) E11 rows written"

echo "==> vm smoke: E10 hot-path budgets (release-gated) + artifacts"
# The release-only budget tests assert the shared-code instantiation
# speedup (>= 2x vs the deep-clone reconstruction baseline), the
# warm-vs-cold resolution-cache win, and the dispatch ns/op ceiling.
cargo test --release -q -p mbd-bench --lib e10
cargo run --release -q -p mbd-bench --bin exp_vm >/dev/null
[ -s bench/out/BENCH_E10.json ] && [ -s bench/out/E10.csv ] || {
    echo "vm smoke FAILED: exp_vm did not write bench/out/BENCH_E10.json + E10.csv"
    exit 1
}
grep -q '"instantiate @1024 speedup x"' bench/out/BENCH_E10.json || {
    echo "vm smoke FAILED: BENCH_E10.json is missing the instantiation speedup series"
    exit 1
}
echo "vm smoke ok: $(grep -c '"metric"' bench/out/BENCH_E10.json) E10 metrics written"

echo "==> profile smoke: E12 observability-overhead gate (release-gated) + artifacts"
# The release-only gate prices tracing + tail sampling + 1-in-64 VM
# block profiling against the unobserved baseline on the pipelined
# invoke workload: under 3% throughput cost, best of three per side.
cargo test --release -q -p mbd-bench --lib e12
cargo run --release -q -p mbd-bench --bin exp_profile >/dev/null
[ -s bench/out/BENCH_E12.json ] && [ -s bench/out/E12.csv ] || {
    echo "profile smoke FAILED: exp_profile did not write bench/out/BENCH_E12.json + E12.csv"
    exit 1
}
grep -q '"mode": "trace+profile"' bench/out/BENCH_E12.json || {
    echo "profile smoke FAILED: BENCH_E12.json is missing the trace+profile series"
    exit 1
}
grep -q '"mode": "off"' bench/out/BENCH_E12.json || {
    echo "profile smoke FAILED: BENCH_E12.json is missing the unobserved baseline"
    exit 1
}
echo "profile smoke ok: $(grep -c '"mode"' bench/out/BENCH_E12.json) E12 rows written"

echo "==> history smoke: E13 history-overhead gate (release-gated) + artifacts"
# The release-only gate prices history collection (full registry sweeps
# into three rings per series) + alert evaluation at 100x the production
# sampling cadence against the unsampled baseline: under 2% throughput
# cost, cleanest of four mirror-ordered paired blocks.
cargo test --release -q -p mbd-bench --lib e13
cargo run --release -q -p mbd-bench --bin exp_history >/dev/null
[ -s bench/out/BENCH_E13.json ] && [ -s bench/out/E13.csv ] || {
    echo "history smoke FAILED: exp_history did not write bench/out/BENCH_E13.json + E13.csv"
    exit 1
}
grep -q '"mode": "history"' bench/out/BENCH_E13.json || {
    echo "history smoke FAILED: BENCH_E13.json is missing the history series"
    exit 1
}
grep -q '"mode": "off"' bench/out/BENCH_E13.json || {
    echo "history smoke FAILED: BENCH_E13.json is missing the unsampled baseline"
    exit 1
}
[ -s BENCH_E13.json ] || {
    echo "history smoke FAILED: exp_history did not mirror BENCH_E13.json to the repo root"
    exit 1
}
echo "history smoke ok: $(grep -c '"mode"' bench/out/BENCH_E13.json) E13 rows written and mirrored"

echo "==> durability smoke: kill -9 a stateful server, reboot, state survives"
# Boots the real binary with a state directory, delegates a counting
# agent, drives it to 3, then SIGKILLs the process mid-life. The reboot
# on the same directory must journal a traced recovery record, still
# list the same dpi, and continue the count at 4 — proving globals,
# the id allocator and the dp repository all came back from WAL+snapshot.
DUR_PORT=$((21000 + RANDOM % 20000))
DUR_STATE="$SMOKE_DIR/state"
DUR_LOG="$SMOKE_DIR/durable_server.log"
echo 'var n = 0; fn main() { n = n + 1; return n; }' > "$SMOKE_DIR/counter.dpl"
./target/release/mbd-server --listen "127.0.0.1:$DUR_PORT" \
    --state-dir "$DUR_STATE" > "$DUR_LOG" 2>&1 &
DUR_PID=$!
DURCTL=(./target/release/mbdctl --server "127.0.0.1:$DUR_PORT")
for _ in $(seq 1 50); do
    "${DURCTL[@]}" programs >/dev/null 2>&1 && break
    sleep 0.1
done
"${DURCTL[@]}" delegate counter "$SMOKE_DIR/counter.dpl" >/dev/null
DUR_DPI="$("${DURCTL[@]}" instantiate counter)"
for want in 1 2 3; do
    GOT="$("${DURCTL[@]}" invoke "$DUR_DPI" main)"
    [ "$GOT" = "$want" ] || {
        echo "durability smoke FAILED: pre-crash count returned \`$GOT\`, wanted $want"
        exit 1
    }
done
sleep 1 # let group commit flush the staged WAL tail (10 ms) + the 1 Hz sync
kill -9 "$DUR_PID"
wait "$DUR_PID" 2>/dev/null || true
./target/release/mbd-server --listen "127.0.0.1:$DUR_PORT" \
    --state-dir "$DUR_STATE" > "$DUR_LOG" 2>&1 &
DUR_PID=$!
for _ in $(seq 1 50); do
    "${DURCTL[@]}" programs >/dev/null 2>&1 && break
    sleep 0.1
done
# File-then-grep (not a pipe): grep -q quitting early would SIGPIPE
# mbdctl under pipefail.
"${DURCTL[@]}" instances > "$SMOKE_DIR/dur_instances.txt"
grep -q "^$DUR_DPI	counter" "$SMOKE_DIR/dur_instances.txt" || {
    echo "durability smoke FAILED: rebooted server does not list $DUR_DPI:"
    cat "$SMOKE_DIR/dur_instances.txt"
    exit 1
}
GOT="$("${DURCTL[@]}" invoke "$DUR_DPI" main)"
[ "$GOT" = "4" ] || {
    echo "durability smoke FAILED: post-crash count returned \`$GOT\`, wanted 4 (globals lost?)"
    exit 1
}
"${DURCTL[@]}" journal > "$SMOKE_DIR/recovery_journal.txt"
grep -Eq "trace=[0-9a-f]{16} principal=server verb=recovery " \
    "$SMOKE_DIR/recovery_journal.txt" || {
    echo "durability smoke FAILED: no traced recovery record in the reboot journal:"
    cat "$SMOKE_DIR/recovery_journal.txt"
    exit 1
}
kill "$DUR_PID" 2>/dev/null || true
wait "$DUR_PID" 2>/dev/null || true
DUR_PID=""
echo "durability smoke ok: $DUR_DPI survived kill -9 and counted on ($GOT)"

echo "==> durability smoke: E14 overhead gate (release-gated) + artifacts"
# The release-only gate prices the full durability posture (staged
# group-commit WAL + snapshot/truncate cycles at ~120x the production
# cadence) against the undurable baseline on the pipelined invoke
# workload: under 5% throughput cost, cleanest of four mirror-ordered
# paired blocks.
cargo test --release -q -p mbd-bench --lib e14
cargo run --release -q -p mbd-bench --bin exp_durable >/dev/null
[ -s bench/out/BENCH_E14.json ] && [ -s bench/out/E14.csv ] || {
    echo "durability smoke FAILED: exp_durable did not write bench/out/BENCH_E14.json + E14.csv"
    exit 1
}
grep -q '"mode": "wal+snap"' bench/out/BENCH_E14.json || {
    echo "durability smoke FAILED: BENCH_E14.json is missing the wal+snap series"
    exit 1
}
grep -q '"mode": "off"' bench/out/BENCH_E14.json || {
    echo "durability smoke FAILED: BENCH_E14.json is missing the undurable baseline"
    exit 1
}
[ -s BENCH_E14.json ] || {
    echo "durability smoke FAILED: exp_durable did not mirror BENCH_E14.json to the repo root"
    exit 1
}
echo "durability smoke ok: $(grep -c '"mode"' bench/out/BENCH_E14.json) E14 rows written and mirrored"

echo "==> contention smoke: E7b executor-vs-single-lock gate (release-gated) + artifacts"
# The release-only acceptance test re-runs the sweep and asserts the
# work-stealing batch executor at least doubles the single-lock +
# per-op-handoff design at the widest cell (256 dpis) and never loses
# anywhere on the series; it self-skips below 8 hardware threads.
cargo test --release -q -p mbd-bench --lib e7_contention
cargo run --release -q -p mbd-bench --bin exp_contention >/dev/null
[ -s bench/out/BENCH_E7B.json ] && [ -s bench/out/E7B.csv ] || {
    echo "contention smoke FAILED: exp_contention did not write bench/out/BENCH_E7B.json + E7B.csv"
    exit 1
}
grep -q '"dpis": 256' bench/out/BENCH_E7B.json || {
    echo "contention smoke FAILED: BENCH_E7B.json is missing the 256-dpi row"
    exit 1
}
[ -s BENCH_E7B.json ] || {
    echo "contention smoke FAILED: exp_contention did not mirror BENCH_E7B.json to the repo root"
    exit 1
}
# The 2x bet itself is re-checked from the artifact when the host can
# actually run the managers in parallel (same guard as the test).
if [ "$(nproc)" -ge 8 ]; then
    E7B_SPEEDUP="$(grep '"dpis": 256' bench/out/BENCH_E7B.json | sed 's/.*"speedup": \([0-9.]*\).*/\1/')"
    awk -v s="$E7B_SPEEDUP" 'BEGIN { exit !(s >= 2.0) }' || {
        echo "contention smoke FAILED: 256-dpi speedup $E7B_SPEEDUP < 2.0"
        exit 1
    }
fi
echo "contention smoke ok: $(grep -c '"threads": 8' bench/out/BENCH_E7B.json) E7b rows written and mirrored"

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "ci: all gates passed"
