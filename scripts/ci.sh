#!/usr/bin/env bash
# The full local gate: formatting, lints, build, and every test in the
# workspace. CI and pre-push hooks should run exactly this script so
# the two can never disagree.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "ci: all gates passed"
