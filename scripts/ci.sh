#!/usr/bin/env bash
# The full local gate: formatting, lints, build, and every test in the
# workspace. CI and pre-push hooks should run exactly this script so
# the two can never disagree.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> telemetry smoke: integration tests (histograms + OCP walk)"
# Drives RDS verbs through the protocol front-end, asserts non-zero
# per-verb latency histograms, and walks the mbdTelemetry OCP subtree
# with the legacy SNMP manager engine.
cargo test --release -q --test telemetry

echo "==> telemetry smoke: live server binary"
SMOKE_DIR="$(mktemp -d)"
SMOKE_LOG="$SMOKE_DIR/server.log"
SMOKE_PORT=$((21000 + RANDOM % 20000))
echo 'fn main() { return 41 + 1; }' > "$SMOKE_DIR/work.dpl"
./target/release/mbd-server --listen "127.0.0.1:$SMOKE_PORT" --stats 1 \
    > "$SMOKE_LOG" 2>&1 &
SMOKE_PID=$!
FLOOD_PID=""
PROF_PID=""
cleanup_smoke() {
    kill "$SMOKE_PID" 2>/dev/null || true
    [ -n "$FLOOD_PID" ] && kill "$FLOOD_PID" 2>/dev/null || true
    [ -n "$PROF_PID" ] && kill "$PROF_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT
MBDCTL=(./target/release/mbdctl --server "127.0.0.1:$SMOKE_PORT")
for _ in $(seq 1 50); do
    "${MBDCTL[@]}" programs >/dev/null 2>&1 && break
    sleep 0.1
done
"${MBDCTL[@]}" delegate smoke "$SMOKE_DIR/work.dpl" >/dev/null
SMOKE_DPI="$("${MBDCTL[@]}" instantiate smoke)"
for _ in 1 2 3 4 5; do
    "${MBDCTL[@]}" invoke "$SMOKE_DPI" main >/dev/null
done
"${MBDCTL[@]}" suspend "$SMOKE_DPI" >/dev/null
"${MBDCTL[@]}" resume "$SMOKE_DPI" >/dev/null
sleep 2 # let a --stats tick print the filled histograms (and refresh OCP)

# A delegated watchdog agent walks its own server's mbdDpiAccounting
# subtree (enterprises.20100.5) — the accounting rows must be there.
echo 'fn count() { return len(mib_walk("1.3.6.1.4.1.20100.5")); }' > "$SMOKE_DIR/walker.dpl"
"${MBDCTL[@]}" delegate walker "$SMOKE_DIR/walker.dpl" >/dev/null
WALKER_DPI="$("${MBDCTL[@]}" instantiate walker)"
ACCT_ROWS="$("${MBDCTL[@]}" invoke "$WALKER_DPI" count)"
[ "$ACCT_ROWS" -gt 0 ] 2>/dev/null || {
    echo "smoke FAILED: delegated walk of 20100.5 saw no accounting rows (got \`$ACCT_ROWS\`)"
    exit 1
}

# The audit journal must have recorded the driven verbs, each under a
# non-zero trace id minted by mbdctl.
JOURNAL_OUT="$SMOKE_DIR/journal.txt"
"${MBDCTL[@]}" journal > "$JOURNAL_OUT"
for verb in delegate instantiate invoke suspend resume; do
    grep -Eq "trace=0{16} .* verb=$verb " "$JOURNAL_OUT" && {
        echo "smoke FAILED: journal has an untraced \`$verb\` record:"
        grep " verb=$verb " "$JOURNAL_OUT"
        exit 1
    }
    grep -Eq "trace=[0-9a-f]{16} principal=mbdctl verb=$verb " "$JOURNAL_OUT" || {
        echo "smoke FAILED: journal is missing a traced \`$verb\` record:"
        cat "$JOURNAL_OUT"
        exit 1
    }
done
echo "smoke ok: $ACCT_ROWS accounting rows walked, $(wc -l < "$JOURNAL_OUT") journal records traced"

kill "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
for metric in 'rds\.verb\.invoke +5 ' 'ep\.invoke +5 ' \
    'rds\.verb\.suspend +1 ' 'rds\.tcp\.request +[1-9]'; do
    grep -Eq "  $metric" "$SMOKE_LOG" || {
        echo "smoke FAILED: \`$metric\` not in the server's --stats output:"
        cat "$SMOKE_LOG"
        exit 1
    }
done
echo "smoke ok: per-verb histograms filled ($(grep -c 'telemetry snapshot' "$SMOKE_LOG") stats ticks)"

echo "==> profile smoke: span trees + VM profiler over a live server"
# Boots a profiled server (1-in-16 block sampling), drives a looping dp,
# and asserts the three observability surfaces: `mbdctl profile` shows
# the span waterfall with the VM-run span, `--folded` emits non-empty
# folded stacks attributing samples to the dp's entry function, and a
# delegated agent walks the mbdProfile OCP subtree (enterprises.20100.6).
# --slow-ms 1 classifies the multi-ms spin invokes as slow, so they land
# in the always-kept anomaly ring and `mbdctl profile` (latest tree) sees
# the last invoke regardless of the normal reservoir's 1-in-N thinning.
PROF_PORT=$((21000 + RANDOM % 20000))
PROF_LOG="$SMOKE_DIR/profile_server.log"
./target/release/mbd-server --listen "127.0.0.1:$PROF_PORT" \
    --profile-sample 16 --slow-ms 1 --stats 1 > "$PROF_LOG" 2>&1 &
PROF_PID=$!
PROFCTL=(./target/release/mbdctl --server "127.0.0.1:$PROF_PORT")
for _ in $(seq 1 50); do
    "${PROFCTL[@]}" programs >/dev/null 2>&1 && break
    sleep 0.1
done
echo 'fn main(n) { var t = 0; var i = 0; while (i < n) { t = t + i; i = i + 1; } return t; }' \
    > "$SMOKE_DIR/spin.dpl"
"${PROFCTL[@]}" delegate spin "$SMOKE_DIR/spin.dpl" >/dev/null
PROF_DPI="$("${PROFCTL[@]}" instantiate spin)"
for _ in 1 2 3 4 5; do
    "${PROFCTL[@]}" invoke "$PROF_DPI" main 20000 >/dev/null
done

"${PROFCTL[@]}" profile > "$SMOKE_DIR/profile.txt"
grep -q "ep.vm_run" "$SMOKE_DIR/profile.txt" || {
    echo "profile smoke FAILED: span tree is missing the ep.vm_run span:"
    cat "$SMOKE_DIR/profile.txt"
    exit 1
}
"${PROFCTL[@]}" profile --folded > "$SMOKE_DIR/folded.txt"
grep -Eq "main@[0-9]+ [1-9]" "$SMOKE_DIR/folded.txt" || {
    echo "profile smoke FAILED: no folded stack attributes samples to main:"
    cat "$SMOKE_DIR/folded.txt"
    exit 1
}

sleep 2 # let a --stats tick refresh the OCP tree with the profile rows
echo 'fn count() { return len(mib_walk("1.3.6.1.4.1.20100.6")); }' > "$SMOKE_DIR/pwalker.dpl"
"${PROFCTL[@]}" delegate pwalker "$SMOKE_DIR/pwalker.dpl" >/dev/null
PWALK_DPI="$("${PROFCTL[@]}" instantiate pwalker)"
PROF_ROWS="$("${PROFCTL[@]}" invoke "$PWALK_DPI" count)"
[ "$PROF_ROWS" -gt 0 ] 2>/dev/null || {
    echo "profile smoke FAILED: delegated walk of 20100.6 saw no profile rows (got \`$PROF_ROWS\`)"
    exit 1
}
kill "$PROF_PID" 2>/dev/null || true
wait "$PROF_PID" 2>/dev/null || true
PROF_PID=""
echo "profile smoke ok: $(wc -l < "$SMOKE_DIR/folded.txt") folded stacks, $PROF_ROWS mbdProfile leaves walked"

echo "==> telemetry smoke: self-health example"
cargo run --release -q --example self_health > "$SMOKE_DIR/self_health.out"
grep -q "server degraded" "$SMOKE_DIR/self_health.out" || {
    echo "smoke FAILED: self_health example did not raise a degradation event"
    cat "$SMOKE_DIR/self_health.out"
    exit 1
}

echo "==> chaos smoke: seeded fault injection (exactly-once under retries)"
# A fixed-seed fault schedule (drops, delays, dedup replays) driven
# through the retrying client; the example exits non-zero unless the
# workflow converges exactly-once AND the schedule forced at least one
# retry and one dedup replay.
cargo run --release -q --example fault_injection 3 > "$SMOKE_DIR/chaos.out" || {
    echo "chaos smoke FAILED:"
    cat "$SMOKE_DIR/chaos.out"
    exit 1
}
grep -q "chaos ok: exactly-once held" "$SMOKE_DIR/chaos.out" || {
    echo "chaos smoke FAILED: no convergence line:"
    cat "$SMOKE_DIR/chaos.out"
    exit 1
}
grep -E "client retries  : [1-9]" "$SMOKE_DIR/chaos.out" >/dev/null || {
    echo "chaos smoke FAILED: zero retries — schedule did not bite"
    exit 1
}
grep -E "dedup replays   : [1-9]" "$SMOKE_DIR/chaos.out" >/dev/null || {
    echo "chaos smoke FAILED: zero dedup replays — schedule did not bite"
    exit 1
}
echo "chaos smoke ok: $(grep 'chaos ok' "$SMOKE_DIR/chaos.out")"

echo "==> conn smoke: reactor front-end under an idle-connection flood"
# In-process first: 3000 idle connections against the E11 configuration
# (reactor + fixed 4-worker tier); the example asserts the gauges
# directly — all connections registered, health accepting, zero sheds,
# bounded drain — and drives every RDS verb under the flood.
cargo run --release -q --example conn_flood 3000 > "$SMOKE_DIR/flood.out" || {
    echo "conn smoke FAILED:"
    cat "$SMOKE_DIR/flood.out"
    exit 1
}
grep -q "conn flood ok" "$SMOKE_DIR/flood.out" || {
    echo "conn smoke FAILED: no convergence line:"
    cat "$SMOKE_DIR/flood.out"
    exit 1
}

# Then against the real binary: a 4-worker mbd-server takes the same
# flood, and its own --stats gauges must stay in the accepting band.
FLOOD_PORT=$((21000 + RANDOM % 20000))
FLOOD_LOG="$SMOKE_DIR/flood_server.log"
./target/release/mbd-server --listen "127.0.0.1:$FLOOD_PORT" --workers 4 \
    --max-conns 6000 --stats 1 > "$FLOOD_LOG" 2>&1 &
FLOOD_PID=$!
for _ in $(seq 1 50); do
    ./target/release/mbdctl --server "127.0.0.1:$FLOOD_PORT" programs >/dev/null 2>&1 && break
    sleep 0.1
done
cargo run --release -q --example conn_flood 3000 "127.0.0.1:$FLOOD_PORT" \
    > "$SMOKE_DIR/flood_binary.out" || {
    echo "conn smoke FAILED against mbd-server:"
    cat "$SMOKE_DIR/flood_binary.out"
    exit 1
}
sleep 2 # let a --stats tick record the post-flood gauges
kill "$FLOOD_PID" 2>/dev/null || true
wait "$FLOOD_PID" 2>/dev/null || true
FLOOD_PID=""
grep -Eq "rds\.tcp\.health +0" "$FLOOD_LOG" || {
    echo "conn smoke FAILED: health gauge never reported accepting (0):"
    cat "$FLOOD_LOG"
    exit 1
}
if grep -Eq "rds\.tcp\.health +[1-9]" "$FLOOD_LOG"; then
    echo "conn smoke FAILED: health gauge left the accepting band under an idle flood:"
    grep -E "rds\.tcp\.health" "$FLOOD_LOG"
    exit 1
fi
if grep -Eq "rds\.shed +[1-9]" "$FLOOD_LOG"; then
    echo "conn smoke FAILED: idle connections caused request sheds:"
    grep -E "rds\.shed" "$FLOOD_LOG"
    exit 1
fi
echo "conn smoke ok: $(grep 'conn flood ok' "$SMOKE_DIR/flood_binary.out")"

echo "==> conn smoke: E11 scaling gate (release-gated) + artifacts"
# The release-only gate holds 5000 connections open against the fixed
# 4-worker tier and compares active-request p99 with an in-test
# thread-per-connection baseline at 256 connections.
cargo test --release -q -p mbd-bench --lib e11
cargo run --release -q -p mbd-bench --bin exp_conn >/dev/null
[ -s bench/out/BENCH_E11.json ] && [ -s bench/out/E11.csv ] || {
    echo "conn smoke FAILED: exp_conn did not write bench/out/BENCH_E11.json + E11.csv"
    exit 1
}
grep -q '"section": "ceiling"' bench/out/BENCH_E11.json || {
    echo "conn smoke FAILED: BENCH_E11.json is missing the open-connection ceiling row"
    exit 1
}
grep -q '"frontend": "threaded"' bench/out/BENCH_E11.json || {
    echo "conn smoke FAILED: BENCH_E11.json is missing the thread-per-connection baseline"
    exit 1
}
echo "conn smoke ok: $(grep -c '"section"' bench/out/BENCH_E11.json) E11 rows written"

echo "==> vm smoke: E10 hot-path budgets (release-gated) + artifacts"
# The release-only budget tests assert the shared-code instantiation
# speedup (>= 2x vs the deep-clone reconstruction baseline), the
# warm-vs-cold resolution-cache win, and the dispatch ns/op ceiling.
cargo test --release -q -p mbd-bench --lib e10
cargo run --release -q -p mbd-bench --bin exp_vm >/dev/null
[ -s bench/out/BENCH_E10.json ] && [ -s bench/out/E10.csv ] || {
    echo "vm smoke FAILED: exp_vm did not write bench/out/BENCH_E10.json + E10.csv"
    exit 1
}
grep -q '"instantiate @1024 speedup x"' bench/out/BENCH_E10.json || {
    echo "vm smoke FAILED: BENCH_E10.json is missing the instantiation speedup series"
    exit 1
}
echo "vm smoke ok: $(grep -c '"metric"' bench/out/BENCH_E10.json) E10 metrics written"

echo "==> profile smoke: E12 observability-overhead gate (release-gated) + artifacts"
# The release-only gate prices tracing + tail sampling + 1-in-64 VM
# block profiling against the unobserved baseline on the pipelined
# invoke workload: under 3% throughput cost, best of three per side.
cargo test --release -q -p mbd-bench --lib e12
cargo run --release -q -p mbd-bench --bin exp_profile >/dev/null
[ -s bench/out/BENCH_E12.json ] && [ -s bench/out/E12.csv ] || {
    echo "profile smoke FAILED: exp_profile did not write bench/out/BENCH_E12.json + E12.csv"
    exit 1
}
grep -q '"mode": "trace+profile"' bench/out/BENCH_E12.json || {
    echo "profile smoke FAILED: BENCH_E12.json is missing the trace+profile series"
    exit 1
}
grep -q '"mode": "off"' bench/out/BENCH_E12.json || {
    echo "profile smoke FAILED: BENCH_E12.json is missing the unobserved baseline"
    exit 1
}
echo "profile smoke ok: $(grep -c '"mode"' bench/out/BENCH_E12.json) E12 rows written"

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "ci: all gates passed"
