//! Quickstart: the whole MbD loop in one file.
//!
//! A manager (you) delegates a small agent to an elastic process over the
//! RDS protocol, instantiates it, invokes it, inspects the server, and
//! tears the instance down.
//!
//! Run with: `cargo run --example quickstart`

use ber::BerValue;
use mbd::core::{ElasticConfig, ElasticProcess, MbdServer};
use mbd::rds::{LoopbackTransport, RdsClient};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The elastic process is the managed-device side: a server that can
    // absorb new code at runtime.
    let process = ElasticProcess::new(ElasticConfig::default());
    let server = Arc::new(MbdServer::open(process));

    // The manager side talks RDS. (In the experiments the same bytes run
    // over a simulated WAN; here the transport is an in-process loop.)
    let transport = {
        let server = Arc::clone(&server);
        LoopbackTransport::new(move |bytes: &[u8]| server.process_request(bytes))
    };
    let client = RdsClient::new(transport, "noc-operator");

    // 1. Delegate: ship the agent's *code* to the server. The server's
    //    translator checks it against the allowed host functions and
    //    compiles it; a bad program would be rejected right here.
    client.delegate(
        "averager",
        r#"
        var count = 0;
        var total = 0;

        fn add(sample) {
            count = count + 1;
            total = total + sample;
            return total / count;
        }

        fn stats() { return [count, total]; }
        "#,
    )?;
    println!("delegated `averager` — programs on server: {:?}", client.list_programs()?);

    // 2. Instantiate: create a running instance (dpi) with its own state.
    let dpi = client.instantiate("averager")?;
    println!("instantiated {dpi}");

    // 3. Invoke: state persists across calls, server-side.
    for sample in [10, 20, 60] {
        let avg = client.invoke(dpi, "add", &[BerValue::Integer(sample)])?;
        println!("added {sample}, running average = {avg}");
    }
    let stats = client.invoke(dpi, "stats", &[])?;
    println!("agent stats [count, total] = {stats}");

    // 4. Lifecycle control: suspend, resume, terminate.
    client.suspend(dpi)?;
    assert!(client.invoke(dpi, "add", &[BerValue::Integer(1)]).is_err());
    client.resume(dpi)?;
    client.terminate(dpi)?;
    println!("lifecycle complete — instances: {:?}", client.list_instances()?);

    // 5. Safety: programs that bind outside the allowed set never run.
    let err = client.delegate("evil", "fn main() { return spawn_shell(); }").unwrap_err();
    println!("translator rejected the bad agent: {err}");

    Ok(())
}
