//! A runaway agent meets the per-dpi resource quota.
//!
//! Delegation moves computation *to* the server — which means a buggy or
//! greedy agent now burns the server's CPU, not the manager's. The
//! thesis's answer is that delegated programs are **controlled**
//! computations: the elastic process accounts for what every dpi
//! consumes and can pull the brake on its own.
//!
//! This example delegates a CPU-hungry spinner over RDS, watches its
//! accounting row grow (`mbdDpiAccounting`, `enterprises.20100.5`),
//! and lets the armed VM-fuel quota suspend it mid-flight. The breach
//! notification, the audit-journal record and the RDS request that
//! tripped the quota all carry the same trace id — one correlated
//! story of who ran what and why it was stopped.
//!
//! Run with: `cargo run --example runaway_dpi`

use mbd::ber::BerValue;
use mbd::core::ocp::{mbd_accounting_root, SnmpOcp};
use mbd::core::{DpiQuota, ElasticConfig, ElasticProcess, MbdServer};
use mbd::rds::{LoopbackTransport, RdsClient};
use std::sync::Arc;

/// The runaway: every call spins a counter, burning VM fuel.
const SPINNER: &str = r#"
fn main(n) {
    var i = 0;
    while (i < n) { i = i + 1; }
    return i;
}
"#;

const FUEL_QUOTA: u64 = 500_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every dpi this process instantiates is armed with a cumulative
    // VM-fuel quota; crossing it suspends the dpi.
    let process = ElasticProcess::new(ElasticConfig {
        quota: Some(DpiQuota { max_vm_fuel: Some(FUEL_QUOTA), ..DpiQuota::default() }),
        ..ElasticConfig::default()
    });
    let server = Arc::new(MbdServer::open(process.clone()));
    let transport = LoopbackTransport::new(move |bytes: &[u8]| server.process_request(bytes));
    let client = RdsClient::new(transport, "noc");

    client.delegate("spinner", SPINNER)?;
    let dpi = client.instantiate("spinner")?;
    println!("delegated `spinner` as {dpi}; quota: {FUEL_QUOTA} VM fuel units\n");

    // Drive the runaway until the server refuses it.
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        assert!(rounds < 1_000, "quota never tripped");
        match client.invoke(dpi, "main", &[BerValue::Integer(5_000)]) {
            Ok(_) => {
                let acct = process.dpi_account(dpi).expect("dpi is live");
                println!(
                    "round {rounds:>2}: invocations={:<3} fuel={:>7} busy={:>9} ns  trace={:016x}",
                    acct.invocations_ok, acct.vm_fuel, acct.busy_ns, acct.last_trace_id
                );
            }
            Err(e) => {
                println!("round {rounds:>2}: refused — {e}\n");
                break;
            }
        }
    }

    // The accounting row outlives the suspension: publish it into the
    // MIB and read it back the way a legacy manager (or a delegated
    // watchdog agent) would.
    let ocp = SnmpOcp::new(process.clone(), "public");
    ocp.refresh_accounting();
    println!("mbdDpiAccounting rows under {}:", mbd_accounting_root());
    for (oid, value) in process.mib().walk(&mbd_accounting_root()) {
        println!("  {oid} = {value:?}");
    }

    // The breach notification carries the trace id of the RDS request
    // that tripped the quota...
    let notes = process.drain_notifications();
    let breach = notes.iter().find(|n| n.dpi == dpi).expect("breach notification");
    println!(
        "\nbreach notification from {}: {} (trace {:016x})",
        dpi, breach.value, breach.trace_id
    );
    assert_ne!(breach.trace_id, 0, "the tripping request was traced");

    // ...and the audit journal tells the same story under that trace:
    // the manager's invoke, and the server's own quota.breach entry.
    println!("\naudit journal (trace-correlated):");
    let records = client.read_journal(0)?;
    let mut saw_invoke = false;
    let mut saw_breach = false;
    for r in &records {
        if r.trace_id != breach.trace_id {
            continue;
        }
        println!(
            "  seq={} trace={:016x} principal={} verb={} dpi={} {} {}",
            r.seq,
            r.trace_id,
            r.principal,
            r.verb,
            r.dpi,
            if r.ok { "ok" } else { "err" },
            r.detail
        );
        saw_invoke |= r.verb == "invoke";
        saw_breach |= r.verb == "quota.breach";
    }
    assert!(saw_invoke, "the tripping invoke is journaled under the breach trace");
    assert!(saw_breach, "the quota breach is journaled under the breach trace");

    let state = process.dpi_info(dpi).expect("dpi visible").state;
    println!("\n{dpi} is now {state}: the runaway is parked, the server lives on");
    assert_eq!(state, mbd::core::DpiState::Suspended);
    Ok(())
}
