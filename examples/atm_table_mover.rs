//! Moving large tables — the video-on-demand ATM switch example.
//!
//! The switch keeps a VC table with one row per subscriber. Retrieving
//! it with SNMP `GetNext` costs a round trip per instance; delegating a
//! filter returns only the rows that matter. This example runs both
//! against the same simulated switch on a simulated WAN and prints the
//! totals side by side (experiment E3 does the full sweep).
//!
//! Run with: `cargo run --example atm_table_mover`

use mbd::netsim::{LinkSpec, SimDuration, Simulator};
use mbd::snmp::{agent::SnmpAgent, mib2, MibStore};

// Reuse the experiment actors through the bench crate? The example keeps
// itself self-contained instead: a compact serial walker and a delegated
// filter, both over netsim.
use mbd::core::{ElasticConfig, ElasticProcess};
use mbd::netsim::{Actor, Context, NodeId, TimerToken};
use mbd::rds::{codec, RdsRequest, RdsResponse};

const SUBSCRIBERS: u32 = 2_000;

const FILTER: &str = r#"
fn filter(threshold) {
    var out = [];
    var dropped = mib_walk("1.3.6.1.4.1.353.2.5.1.3");
    for (oid in dropped) {
        if (dropped[oid] > threshold) {
            out = push(out, [oid, dropped[oid]]);
        }
    }
    return out;
}
"#;

struct Walker {
    switch: NodeId,
    mgr: mbd::snmp::manager::SnmpManager,
    cursor: ber::Oid,
    rows: u64,
    done: Option<f64>,
}

impl Actor for Walker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let req = self.mgr.get_next_request(std::slice::from_ref(&self.cursor)).unwrap();
        ctx.send(self.switch, req);
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, _: NodeId, bytes: Vec<u8>) {
        match self.mgr.parse_response(&bytes) {
            Ok(vbs) if vbs[0].oid.starts_with(&mib2::atm_vc_entry()) => {
                self.rows += 1;
                self.cursor = vbs[0].oid.clone();
                let req = self.mgr.get_next_request(std::slice::from_ref(&self.cursor)).unwrap();
                ctx.send(self.switch, req);
            }
            _ => self.done = Some(ctx.now().as_secs_f64()),
        }
    }
    fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
}

struct Delegator {
    switch: NodeId,
    phase: u8,
    next_id: i64,
    matches: u64,
    done: Option<f64>,
}

impl Delegator {
    fn send(&mut self, ctx: &mut Context<'_>, req: &RdsRequest) {
        let bytes =
            codec::encode_request(req, &mbd_auth::Principal::new("noc"), self.next_id, None);
        self.next_id += 1;
        ctx.send(self.switch, bytes);
    }
}

impl Actor for Delegator {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.send(
            ctx,
            &RdsRequest::DelegateProgram {
                dp_name: "filter".to_string(),
                language: "dpl".to_string(),
                source: FILTER.as_bytes().to_vec(),
            },
        );
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, _: NodeId, bytes: Vec<u8>) {
        let (resp, _) = codec::decode_response(&bytes, None).expect("decodable");
        match (self.phase, resp) {
            (0, RdsResponse::Ok) => {
                self.phase = 1;
                self.send(ctx, &RdsRequest::Instantiate { dp_name: "filter".to_string() });
            }
            (1, RdsResponse::Instantiated { dpi }) => {
                self.phase = 2;
                self.send(
                    ctx,
                    &RdsRequest::Invoke {
                        dpi,
                        entry: "filter".to_string(),
                        args: vec![ber::BerValue::Integer(6)],
                    },
                );
            }
            (2, RdsResponse::Result { value }) => {
                if let ber::BerValue::Sequence(rows) = value {
                    self.matches = rows.len() as u64;
                }
                self.done = Some(ctx.now().as_secs_f64());
            }
            (p, r) => panic!("phase {p}: unexpected {r:?}"),
        }
    }
    fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
}

struct MbdSwitch {
    server: mbd::core::MbdServer,
}
impl Actor for MbdSwitch {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: Vec<u8>) {
        ctx.send(from, self.server.process_request(&bytes));
    }
    fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
}

struct SnmpSwitch {
    agent: SnmpAgent,
}
impl Actor for SnmpSwitch {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: Vec<u8>) {
        if let Some(resp) = self.agent.handle(&bytes) {
            ctx.send(from, resp);
        }
    }
    fn on_timer(&mut self, _: &mut Context<'_>, _: TimerToken) {}
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ATM switch with {SUBSCRIBERS} subscriber VCs, WAN link (100 ms RTT)\n");

    // --- Raw walk over SNMP. ---
    let mib = MibStore::new();
    mib2::install_atm_vc_table(&mib, SUBSCRIBERS)?;
    let mut sim = Simulator::new(1);
    let switch = sim.add_node("switch", SnmpSwitch { agent: SnmpAgent::new("public", mib) });
    let mgr = sim.add_node(
        "manager",
        Walker {
            switch,
            mgr: mbd::snmp::manager::SnmpManager::new("public"),
            cursor: mib2::atm_vc_entry(),
            rows: 0,
            done: None,
        },
    );
    sim.connect(mgr, switch, LinkSpec::wan());
    sim.run_until(mbd::netsim::SimTime::ZERO + SimDuration::from_secs(3_600));
    let (walk_time, walk_rows) = {
        let w = sim.actor::<Walker>(mgr);
        (w.done.expect("walk finished"), w.rows)
    };
    let walk_bytes = sim.stats().wire_bytes;
    println!("GetNext walk : {walk_rows} instances in {walk_time:.1} s, {walk_bytes} wire bytes");

    // --- Delegated filter over RDS. ---
    let process = ElasticProcess::new(ElasticConfig {
        budget: dpl::Budget { fuel: 500_000_000, memory: 200_000_000, call_depth: 64 },
        ..ElasticConfig::default()
    });
    mib2::install_atm_vc_table(process.mib(), SUBSCRIBERS)?;
    let mut sim = Simulator::new(2);
    let switch = sim.add_node("switch", MbdSwitch { server: mbd::core::MbdServer::open(process) });
    let mgr =
        sim.add_node("manager", Delegator { switch, phase: 0, next_id: 1, matches: 0, done: None });
    sim.connect(mgr, switch, LinkSpec::wan());
    sim.run();
    let (dlg_time, matches) = {
        let d = sim.actor::<Delegator>(mgr);
        (d.done.expect("delegation finished"), d.matches)
    };
    let dlg_bytes = sim.stats().wire_bytes;
    println!("Delegated    : {matches} matching rows in {dlg_time:.3} s, {dlg_bytes} wire bytes");
    println!(
        "\nspeedup {:.0}x, byte reduction {:.0}x",
        walk_time / dlg_time,
        walk_bytes as f64 / dlg_bytes as f64
    );
    Ok(())
}
