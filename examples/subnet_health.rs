//! Subnet health monitoring by delegation — the InterOp'91 demo, rebuilt.
//!
//! A delegated health agent samples the concentrator counters locally
//! every interval, computes symptom rates (utilization, collision rate,
//! broadcast rate), evaluates a weighted health index, and notifies the
//! manager only on threshold crossings. The manager never polls raw
//! counters.
//!
//! Run with: `cargo run --example subnet_health`

use mbd::core::{ElasticConfig, ElasticProcess};
use mbd::health::{Scenario, ScenarioConfig};
use mbd::snmp::mib2;

const HEALTH_AGENT: &str = r#"
var prev = {"rx": 0, "frames": 0, "coll": 0, "bcast": 0};
var first = true;
var alarmed = false;

fn rate(cur, key, frames_delta) {
    var d = cur - prev[key];
    if (frames_delta <= 0) { return 0.0; }
    return float(d) / float(frames_delta);
}

fn sample(interval_secs) {
    var rx = mib_get("1.3.6.1.4.1.45.1.3.2.1.0");
    var frames = mib_get("1.3.6.1.4.1.45.1.3.2.4.0");
    var coll = mib_get("1.3.6.1.4.1.45.1.3.2.2.0");
    var bcast = mib_get("1.3.6.1.4.1.45.1.3.2.3.0");

    var d_frames = frames - prev["frames"];
    var utilization = (rx - prev["rx"]) / (interval_secs * 1250000.0);
    var coll_rate = rate(coll, "coll", d_frames);
    var bcast_rate = rate(bcast, "bcast", d_frames);

    prev["rx"] = rx;
    prev["frames"] = frames;
    prev["coll"] = coll;
    prev["bcast"] = bcast;
    if (first) { first = false; return 0.0; }

    // The index function: weighted symptoms (hand-set InterOp weights).
    var index = 1.0 * utilization + 3.0 * coll_rate + 1.5 * bcast_rate;

    // Report only transitions, with hysteresis.
    if (index > 0.9 && !alarmed) {
        alarmed = true;
        notify(["subnet stressed", index, utilization, coll_rate, bcast_rate]);
    }
    if (index < 0.6 && alarmed) {
        alarmed = false;
        notify(["subnet recovered", index]);
    }
    // Publish the latest index into the MIB so legacy SNMP managers can
    // read the *computed* value with a single Get.
    mib_publish("1.3.6.1.4.1.20100.3.1.0", index);
    return index;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Device side: an elastic process over the concentrator MIB.
    let process = ElasticProcess::new(ElasticConfig::default());
    mib2::install_concentrator(process.mib())?;
    mib2::install_interfaces(process.mib(), 1, 10_000_000)?;

    process.delegate("health", HEALTH_AGENT)?;
    let dpi = process.instantiate("health")?;

    // Traffic source: a seeded workload with injected stress episodes
    // (this is what the show-floor network provided in 1991).
    let mut workload = Scenario::new(ScenarioConfig::default(), 2024);

    println!("{:<6} {:>8}  events", "step", "index");
    for step in 0..120 {
        let deltas = workload.apply_step(process.mib());
        process.advance_ticks(100); // 1 s of server time

        let index = process.invoke(dpi, "sample", &[10.0f64.into()])?;
        let notes = process.drain_notifications();
        let events: Vec<String> = notes.iter().map(|n| n.value.to_string()).collect();
        if !events.is_empty() || step % 20 == 0 {
            println!(
                "{:<6} {:>8}  {} {}",
                step,
                index.to_string(),
                if deltas.stress.is_some() { "[stress]" } else { "        " },
                events.join(" | "),
            );
        }
    }

    // The computed index is also in the MIB for plain SNMP consumers:
    let published = process.mib().get(&"1.3.6.1.4.1.20100.3.1.0".parse()?);
    println!("\npublished index object = {published:?}");
    println!("agent log lines: {}", process.drain_log().len());
    Ok(())
}
