//! Extending a service by delegation — the dFLASH example.
//!
//! The thesis describes dFLASH, "a homologous sequence retrieval program
//! for protein sequences" serving researchers by e-mail: the server runs
//! a fixed search, and anyone needing a different analysis must pull the
//! whole result set (or database) across the network. With an elastic
//! server, a researcher *delegates* a custom scoring function instead:
//! the analysis runs beside the data and only the hits travel.
//!
//! Here the "database" is a synthetic protein-sequence store exposed to
//! agents through custom host services (`db_size`, `db_seq`), and the
//! researcher's agent is a k-mer similarity scorer written in DPL.
//!
//! Run with: `cargo run --example sequence_service`

use mbd::core::{ElasticConfig, ElasticProcess};
use mbd::dpl::Value;

/// Deterministic synthetic "protein" sequences over the 20-letter
/// alphabet, with a few planted near-matches of the query.
fn synthesize_database(n: usize) -> Vec<String> {
    const AA: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
    let mut db = Vec::with_capacity(n);
    let mut state = 0x2545F4914F6CDD1Du64;
    for i in 0..n {
        let mut seq = String::new();
        let len = 60 + (i % 40);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            seq.push(AA[(state % 20) as usize] as char);
        }
        db.push(seq);
    }
    // Plant three sequences sharing a long motif with the query.
    let motif = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ";
    for (slot, suffix) in [(7usize, "AAAA"), (420, "CCCC"), (901, "GGGG")] {
        db[slot] = format!("{motif}{suffix}{}", &db[slot][..20]);
    }
    db
}

/// The researcher's delegated analysis: k-mer overlap scoring, top-N.
const SCORER: &str = r#"
fn kmers(seq, k) {
    var out = map_new();
    var n = len(seq);
    var i = 0;
    while (i + k <= n) {
        out[substr(seq, i, k)] = true;
        i = i + 1;
    }
    return out;
}

fn score(query_kmers, seq, k) {
    var hits = 0;
    var n = len(seq);
    var i = 0;
    while (i + k <= n) {
        if (has(query_kmers, substr(seq, i, k))) { hits = hits + 1; }
        i = i + 1;
    }
    return hits;
}

fn search(query, k, min_score) {
    var qk = kmers(query, k);
    var matches = [];
    var n = db_size();
    var i = 0;
    while (i < n) {
        var s = score(qk, db_seq(i), k);
        if (s >= min_score) {
            matches = push(matches, [i, s]);
        }
        i = i + 1;
    }
    return matches;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let database = synthesize_database(1_000);
    let db_bytes: usize = database.iter().map(String::len).sum();

    // The sequence server is an elastic process whose host services
    // expose the database read-only to delegated analyses.
    let process = ElasticProcess::new(ElasticConfig {
        budget: mbd::dpl::Budget { fuel: 500_000_000, memory: 50_000_000, call_depth: 64 },
        ..ElasticConfig::default()
    });
    {
        let db = database.clone();
        process.register_service("db_size", 0, move |_, _| Ok(Value::Int(db.len() as i64)));
    }
    {
        let db = database.clone();
        process.register_service("db_seq", 1, move |_, args| {
            let i = args[0].as_int().ok_or("db_seq: index must be int")?;
            let i = usize::try_from(i).map_err(|_| "db_seq: negative index".to_string())?;
            db.get(i).map(|s| Value::Str(s.clone())).ok_or_else(|| "db_seq: out of range".into())
        });
    }

    // The researcher delegates the scorer once...
    process.delegate("homology", SCORER)?;
    let dpi = process.instantiate("homology")?;

    // ...then asks for matches to a query sequence.
    let query = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ";
    let result =
        process.invoke(dpi, "search", &[Value::from(query), Value::Int(8), Value::Int(10)])?;

    println!("database: {} sequences, {} bytes total", database.len(), db_bytes);
    println!("query   : {query}");
    println!("\nhomologous sequences found (index, shared 8-mers):");
    let mut result_bytes = 0usize;
    if let Some(matches) = result.as_list() {
        for m in matches {
            println!("  {m}");
            result_bytes += m.to_string().len();
        }
        println!(
            "\ndelegation shipped {} bytes of agent + {} bytes of results; \
             e-mailing the database would ship {} bytes ({}x more)",
            SCORER.len(),
            result_bytes,
            db_bytes,
            db_bytes / (SCORER.len() + result_bytes.max(1))
        );
        assert!(
            matches.len() >= 3,
            "the three planted homologs must be found, got {}",
            matches.len()
        );
    }
    Ok(())
}
