//! Intrusion monitoring by delegation.
//!
//! The thesis motivates delegation with "temporal problems, like the
//! detection of intrusion attempts": an intruder "may need only a brief
//! connection" (the tcpConnTable example of Leinwand & Fang), so a
//! remote poller walking the table every few minutes misses it. Here a
//! delegated watcher snapshots `tcpConnTable` locally on every sample,
//! remembers every remote endpoint it ever saw, counts connections per
//! remote, and raises a notification when a remote exceeds a connection
//! budget or touches a privileged port — Anderson's masquerader /
//! misfeasor patterns.
//!
//! Run with: `cargo run --example intrusion_watch`

use mbd::core::{ElasticConfig, ElasticProcess};
use mbd::snmp::mib2::{self, TcpConn};

const WATCHER: &str = r#"
var conn_seen = map_new();     // connection row oid -> true
var per_remote = map_new();    // remote addr -> distinct connection count
var alerted = map_new();       // remotes already reported

fn sample() {
    var conns = mib_snapshot("1.3.6.1.2.1.6.13.1.4");
    for (oid in conns) {
        if (has(conn_seen, oid)) { continue; }  // already counted this row
        conn_seen[oid] = true;
        var remote = str(conns[oid]);
        if (has(per_remote, remote)) {
            per_remote[remote] = per_remote[remote] + 1;
        } else {
            per_remote[remote] = 1;
        }
        // Privileged-port probe: the *local* port is index arc 5 of the
        // row: oid = <entry>.4 . l1.l2.l3.l4.lport . r1.r2.r3.r4.rport
        var parts = split(oid, ".");
        var lport = int(parts[14]);
        if (lport < 1024 && lport != 80 && !has(alerted, remote)) {
            alerted[remote] = true;
            notify(["privileged-port connection", remote, lport]);
        }
    }
    // Fan-out detection: many *distinct* connections from one remote.
    for (remote in per_remote) {
        if (per_remote[remote] > 5 && !has(alerted, remote)) {
            alerted[remote] = true;
            notify(["connection fan-out", remote, per_remote[remote]]);
        }
    }
    return len(keys(per_remote));
}

fn distinct_remotes() { return len(keys(per_remote)); }
"#;

fn conn(local_port: u16, remote: [u8; 4], remote_port: u16) -> TcpConn {
    TcpConn {
        state: mib2::tcp_state::ESTABLISHED,
        local: ([10, 0, 0, 1], local_port),
        remote: (remote, remote_port),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = ElasticProcess::new(ElasticConfig::default());
    process.delegate("watcher", WATCHER)?;
    let dpi = process.instantiate("watcher")?;
    let mib = process.mib().clone();

    // Innocent web traffic.
    for port in [40_001u16, 40_002, 40_003] {
        mib2::install_tcp_conn(&mib, conn(80, [192, 168, 7, 7], port))?;
    }
    process.invoke(dpi, "sample", &[])?;

    // A brief telnet probe: appears, is sampled once, disappears.
    let probe = conn(23, [172, 16, 9, 9], 50_000);
    mib2::install_tcp_conn(&mib, probe)?;
    process.invoke(dpi, "sample", &[])?;
    mib2::remove_tcp_conn(&mib, probe); // gone before any poller would look

    // A scanning host opening many short connections.
    for port in 50_001u16..50_010 {
        let c = conn(80, [203, 0, 113, 5], port);
        mib2::install_tcp_conn(&mib, c)?;
        process.invoke(dpi, "sample", &[])?;
        mib2::remove_tcp_conn(&mib, c);
    }

    let remotes = process.invoke(dpi, "distinct_remotes", &[])?;
    println!("distinct remotes observed by the delegated watcher: {remotes}");
    println!("\nalerts raised:");
    for note in process.drain_notifications() {
        println!("  {} -> {}", note.dpi, note.value);
    }
    println!(
        "\n(the telnet probe and the scanner were both short-lived: a
remote poller at any realistic interval would have seen an empty table)"
    );
    Ok(())
}
