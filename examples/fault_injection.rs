//! Chaos smoke: a seeded fault schedule against the fault-tolerant
//! session layer, end to end.
//!
//! A [`FaultTransport`] injects deterministic faults (dropped requests,
//! dropped responses, duplicates, delays, truncations, disconnects)
//! between a retrying [`RdsClient`] and an [`MbdServer`] whose
//! duplicate-suppression cache is on. The manager runs the canonical
//! workflow — delegate, instantiate, invoke x3, terminate — and the
//! program's own running total proves exactly-once execution: a
//! double-run `bump` would overshoot immediately.
//!
//! Run with: `cargo run --example fault_injection [seed]`
//!
//! The default seed is chosen so the schedule actually bites (at least
//! one retry and one dedup replay); the process exits non-zero if the
//! exactly-once guarantee or the observability trail is violated.

use mbd::core::{ElasticConfig, ElasticProcess, MbdServer};
use mbd::rds::{FaultConfig, FaultTransport, LoopbackTransport, RdsClient, RetryPolicy};
use std::sync::Arc;
use std::time::Duration;

const PROGRAM: &str = "var total = 0; fn bump(x) { total = total + x; return total; }";

/// A fixed seed whose schedule injects both delivery failures (forcing
/// retries) and executed-but-unanswered requests (forcing dedup
/// replays). Deterministic: the run is bit-for-bit reproducible.
const DEFAULT_SEED: u64 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = match std::env::args().nth(1) {
        Some(arg) => arg.parse::<u64>()?,
        None => DEFAULT_SEED,
    };

    let process = ElasticProcess::new(ElasticConfig::default());
    let server = Arc::new(MbdServer::open(process.clone()));
    let loopback = {
        let server = Arc::clone(&server);
        LoopbackTransport::new(move |bytes: &[u8]| server.process_request(bytes))
    };
    let faulty = FaultTransport::new(loopback, seed, FaultConfig::default());
    // Eight attempts vs a fault budget of six: convergence is a
    // theorem, not a hope.
    let client = RdsClient::new(faulty, "chaos-mgr")
        .with_retry(RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            deadline: Some(Duration::from_secs(10)),
            jitter_seed: seed,
        })
        .instrument(process.telemetry());

    client.delegate("chaos", PROGRAM)?;
    let dpi = client.instantiate("chaos")?;
    for round in 1..=3i64 {
        let total = client.invoke(dpi, "bump", &[mbd::ber::BerValue::Integer(1)])?;
        assert_eq!(
            total,
            mbd::ber::BerValue::Integer(round),
            "exactly-once violated: bump ran more than once"
        );
    }
    client.terminate(dpi)?;

    let transport = client.transport();
    println!("seed {seed}: workflow converged through the fault schedule");
    println!(
        "  faults injected : {} (drops {}, duplicates {}, delays {}, \
         truncations {}, disconnects {})",
        transport.injected(),
        transport.drops(),
        transport.duplicates(),
        transport.delays(),
        transport.truncations(),
        transport.disconnects(),
    );
    println!("  client retries  : {}", client.retries());
    println!("  dedup replays   : {}", server.dedup_hits());

    let stats = process.stats();
    let replays =
        process.journal().tail(0).into_iter().filter(|r| r.verb == "duplicate_replayed").count()
            as u64;
    let exactly_once = stats.delegations_accepted == 1
        && stats.instantiations == 1
        && stats.invocations_ok == 3
        && stats.invocations_failed == 0;
    println!(
        "  server effects  : {} delegation, {} instantiation, {} invocations \
         ({} journalled replays)",
        stats.delegations_accepted, stats.instantiations, stats.invocations_ok, replays,
    );

    if !exactly_once {
        println!("chaos FAILED: server-side effects are not exactly-once");
        std::process::exit(1);
    }
    if client.retries() == 0 || server.dedup_hits() == 0 {
        println!("chaos FAILED: schedule too tame (no retry or no dedup replay) — pick a seed");
        std::process::exit(1);
    }
    if replays != server.dedup_hits() {
        println!(
            "chaos FAILED: {replays} journalled replays vs {} dedup hits",
            server.dedup_hits()
        );
        std::process::exit(1);
    }
    println!("chaos ok: exactly-once held under {} injected faults", transport.injected());
    Ok(())
}
