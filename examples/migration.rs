//! Agent migration between two live elastic servers.
//!
//! The thesis argues that a delegated agent should be able to *move*:
//! a NOC drains one elastic process (for upgrade or decommissioning)
//! by checkpointing each suspended dpi and restoring the image on a
//! peer, where it resumes with its variables and resource accounting
//! intact. This example walks that drain end to end over real TCP:
//!
//! 1. delegate + instantiate a stateful counter agent on server A,
//! 2. invoke it a few times so it accumulates state,
//! 3. suspend it and capture a checkpoint blob,
//! 4. restore the blob on server B, resume, and invoke again — the
//!    running total continues where A left off,
//! 5. replay the same blob: refused while the copy lives (identity
//!    collision) *and* after it is gone (single-use nonce),
//! 6. terminate the stale source copy on A.
//!
//! Run with: `cargo run --example migration`

use ber::BerValue;
use mbd::core::{DpiAccountRow, ElasticConfig, ElasticProcess, MbdServer};
use mbd::rds::{DpiId, ErrorCode, RdsClient, RdsError, TcpServer, TcpTransport};
use std::sync::Arc;

const COUNTER: &str = r#"
var total = 0;
var watermark = 0;

fn bump(by) {
    total = total + by;
    if (total > watermark) { watermark = total; }
    return total;
}

fn peak() { return watermark; }
"#;

fn spawn_server(process: &ElasticProcess) -> Result<TcpServer, RdsError> {
    let server = Arc::new(MbdServer::open(process.clone()));
    TcpServer::spawn("127.0.0.1:0", move |bytes| server.process_request(bytes))
}

fn account_of(process: &ElasticProcess, dpi: DpiId) -> Option<DpiAccountRow> {
    process.account_rows().into_iter().find(|row| row.id == dpi)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process_a = ElasticProcess::new(ElasticConfig::default());
    // B frees terminated slots so the final replay below can only be
    // stopped by the checkpoint nonce, never by a lingering id.
    let process_b =
        ElasticProcess::new(ElasticConfig { keep_terminated: false, ..ElasticConfig::default() });
    let server_a = spawn_server(&process_a)?;
    let server_b = spawn_server(&process_b)?;
    let noc_a = RdsClient::new(TcpTransport::connect(server_a.local_addr())?, "noc");
    let noc_b = RdsClient::new(TcpTransport::connect(server_b.local_addr())?, "noc");
    println!("server A on {}, server B on {}", server_a.local_addr(), server_b.local_addr());

    // --- 1-2: a stateful agent accumulates on A -------------------------
    noc_a.delegate("counter", COUNTER)?;
    let dpi = noc_a.instantiate("counter")?;
    for by in [5, 7, 8] {
        let total = noc_a.invoke(dpi, "bump", &[BerValue::Integer(by)])?;
        println!("A: bump({by}) -> {total:?}");
    }
    let before = account_of(&process_a, dpi).expect("dpi exists on A");
    println!("A: dpi {dpi:?} has {} successful invocations", before.account.invocations_ok);

    // --- 3: suspend + checkpoint ----------------------------------------
    noc_a.suspend(dpi)?;
    let blob = noc_a.checkpoint(dpi)?;
    println!("A: checkpoint blob is {} bytes (program + globals + account + quota)", blob.len());

    // --- 4: restore on B; the agent resumes mid-count -------------------
    let moved = noc_b.restore(&blob)?;
    assert_eq!(moved, dpi, "the image keeps its dpi id");
    noc_b.resume(moved)?;
    let total = noc_b.invoke(moved, "bump", &[BerValue::Integer(10)])?;
    let peak = noc_b.invoke(moved, "peak", &[])?;
    println!("B: bump(10) -> {total:?}, peak() -> {peak:?}");
    assert_eq!(total, BerValue::Integer(30), "5+7+8 from A, +10 on B");
    assert_eq!(peak, BerValue::Integer(30), "watermark global migrated too");

    let after = account_of(&process_b, moved).expect("dpi exists on B");
    assert_eq!(
        after.account.invocations_ok,
        before.account.invocations_ok + 2,
        "resource accounting continues from A's totals"
    );
    println!(
        "B: dpi {moved:?} now has {} successful invocations ({} inherited from A)",
        after.account.invocations_ok, before.account.invocations_ok
    );

    // --- 5: the blob is single-use --------------------------------------
    // While the migrated copy lives, a replay is an identity collision.
    match noc_b.restore(&blob) {
        Err(RdsError::Remote { code: ErrorCode::BadState, message }) => {
            println!("B: replay while the copy lives is refused: {message}");
        }
        other => panic!("double install must be refused, got {other:?}"),
    }
    // Even once the copy is gone and its id is free again, the blob
    // stays dead: its nonce was consumed by the first install.
    noc_b.terminate(moved)?;
    match noc_b.restore(&blob) {
        Err(RdsError::Remote { code: ErrorCode::BadState, message }) => {
            println!("B: replay after retirement is refused too: {message}");
        }
        other => panic!("the nonce must refuse a second install, got {other:?}"),
    }

    // --- 6: retire the stale copy on A ----------------------------------
    noc_a.terminate(dpi)?;
    println!("A: stale source copy terminated; migration complete");
    Ok(())
}
